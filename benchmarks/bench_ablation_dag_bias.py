"""Ablation §IV-A — the DAG-specific biases of the Transformer.

Disables DAGRA (reachability-masked attention becomes full attention) and
DAGPE (depth positional encodings) independently, measuring each one's
contribution to prediction accuracy.
"""

from repro.experiments import scenario_grid, stage_corpus
from repro.predictors import LatencyPredictor, split_dataset


def test_ablation_dag_bias(benchmark, profile, save_result):
    sc = scenario_grid("platform2")[1]

    from repro.experiments.cache import global_cache

    cache = global_cache()
    key = f"ablation_dag_bias/{profile.name}"

    def run():
        hit = cache.get(key)
        if hit:
            return hit
        samples = stage_corpus("gpt", sc, profile)
        split = split_dataset(samples, max(profile.fractions), 0.1,
                              profile.seed)
        out = {}
        for label, overrides in (
                ("full (DAGRA+DAGPE)", {}),
                ("no DAGRA", {"use_dagra": False}),
                ("no DAGPE", {"use_dagpe": False}),
                ("neither", {"use_dagra": False, "use_dagpe": False})):
            from dataclasses import replace

            cfg = replace(profile.train_config(),
                          epochs=min(80, profile.epochs),
                          patience=min(80, profile.patience))
            lp = LatencyPredictor("dag_transformer", seed=profile.seed,
                                  model_overrides=overrides)
            lp.fit(split.train, split.val, cfg)
            out[label] = lp.evaluate_mre(split.test)
        cache.set(key, out)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — DAG biases of the Transformer (GPT, platform2 "
             "mesh2 conf1)",
             f"{'variant':>20s} {'test MRE %':>11s}"]
    for k, v in out.items():
        lines.append(f"{k:>20s} {v:11.2f}")
    save_result("ablation_dag_bias", "\n".join(lines))
    assert all(v > 0 for v in out.values())
