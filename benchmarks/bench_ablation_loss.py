"""Ablation §IV-B7/B8 — MAE vs MSE loss, and early stopping on/off.

The paper reports MAE consistently beating MSE, and early stopping both
speeding up training and improving accuracy.
"""

from dataclasses import replace

from repro.experiments import scenario_grid, stage_corpus
from repro.predictors import LatencyPredictor, split_dataset


def _cell(profile, loss, early_stopping):
    sc = scenario_grid("platform2")[1]
    samples = stage_corpus("gpt", sc, profile)
    split = split_dataset(samples, max(profile.fractions), 0.1, profile.seed)
    cfg = replace(profile.train_config(), loss=loss,
                  early_stopping=early_stopping,
                  epochs=min(80, profile.epochs),
                  patience=min(40, profile.patience))
    lp = LatencyPredictor("dag_transformer", seed=profile.seed)
    result = lp.fit(split.train, split.val, cfg)
    return lp.evaluate_mre(split.test), result.epochs_run, result.wall_seconds


def test_ablation_loss_and_early_stopping(benchmark, profile, save_result):
    from repro.experiments.cache import global_cache

    cache = global_cache()
    key = f"ablation_loss/{profile.name}"

    def run():
        hit = cache.get(key)
        if hit:
            return {k: tuple(v) for k, v in hit.items()}
        rows = {}
        for loss in ("mae", "mse"):
            rows[loss] = _cell(profile, loss, True)
        rows["mae/no-early-stop"] = _cell(profile, "mae", False)
        cache.set(key, rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — loss function & early stopping (DAG Transformer, "
             "GPT, platform2 mesh2 conf1)",
             f"{'variant':>20s} {'test MRE %':>11s} {'epochs':>7s} {'secs':>6s}"]
    for k, (mre, ep, secs) in rows.items():
        lines.append(f"{k:>20s} {mre:11.2f} {ep:7d} {secs:6.0f}")
    save_result("ablation_loss", "\n".join(lines))
    assert all(v[0] > 0 for v in rows.values())
