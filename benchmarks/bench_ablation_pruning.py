"""Ablation §IV-B4 — graph pruning on vs off.

Pruning removes redundant data-movement equations; the paper argues it
keeps graphs small enough to train efficiently without losing accuracy.
We measure both the graph-size reduction and the accuracy/time effect.
"""

from repro.experiments import scenario_grid
from repro.experiments.corpus import benchmark_setup
from repro.predictors import LatencyPredictor, StageSample, split_dataset
from repro.runtime import StageProfiler


def _corpus(profile, prune):
    setup = benchmark_setup("gpt", profile)
    profiler = StageProfiler(setup.model, prune=prune, fuse=prune,
                             aggressive_fusion=profile.aggressive_fusion)
    sc = scenario_grid("platform2")[1]
    mesh = sc.mesh()
    samples = []
    for mb in profile.corpus_microbatches:
        for (s, e) in setup.clustering.all_slices():
            p = setup.profiler.profile_stage(s, e, mesh, sc.dp, sc.mp,
                                             microbatch=mb)
            g = profiler.predictor_graph(s, e, microbatch=mb)
            samples.append(StageSample(g, p.latency, p.stage_id))
    return samples


def test_ablation_pruning(benchmark, profile, save_result):
    from repro.experiments.cache import global_cache

    cache = global_cache()
    key = f"ablation_pruning/{profile.name}"

    def run():
        hit = cache.get(key)
        if hit:
            return {k == "True": tuple(v) for k, v in hit.items()}
        out = {}
        for prune in (True, False):
            samples = _corpus(profile, prune)
            split = split_dataset(samples, max(profile.fractions), 0.1,
                                  profile.seed)
            from dataclasses import replace

            cfg = replace(profile.train_config(),
                          epochs=min(80, profile.epochs),
                          patience=min(80, profile.patience))
            lp = LatencyPredictor("dag_transformer", seed=profile.seed)
            res = lp.fit(split.train, split.val, cfg)
            out[prune] = (lp.evaluate_mre(split.test),
                          max(s.n_nodes for s in samples), res.wall_seconds)
        cache.set(key, {str(k): v for k, v in out.items()})
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — §IV-B4 graph pruning (DAG Transformer, GPT)",
             f"{'pruning':>9s} {'test MRE %':>11s} {'max nodes':>10s} {'train s':>8s}"]
    for prune, (mre, nodes, secs) in out.items():
        lines.append(f"{'on' if prune else 'off':>9s} {mre:11.2f} "
                     f"{nodes:10d} {secs:8.0f}")
    save_result("ablation_pruning", "\n".join(lines))
    # pruning must shrink graphs
    assert out[True][1] < out[False][1]
