"""Related-work baseline: calibrated analytical (white-box) prediction.

§IX argues pure white-box operator models (Paleo, Habitat's scaling mode)
cannot capture distributed-training latency.  This bench pits a
calibrated per-op roofline sum against the learned predictors on the same
test split.  Training cost is ~zero, so the question is how much accuracy
the learned models buy.
"""

from repro.cluster import get_platform
from repro.experiments import scenario_grid, stage_corpus
from repro.predictors import AnalyticalPredictor, LatencyPredictor, split_dataset


def test_baseline_analytical(benchmark, profile, save_result):
    scenarios = [scenario_grid("platform2")[i] for i in (0, 1, 2)]

    from repro.experiments.cache import global_cache

    cache = global_cache()
    key = f"baseline_analytical/{profile.name}"

    def run():
        hit = cache.get(key)
        if hit:
            return [tuple(r) for r in hit]
        rows = []
        for sc in scenarios:
            samples = stage_corpus("gpt", sc, profile)
            split = split_dataset(samples, max(profile.fractions), 0.1,
                                  profile.seed)
            ap = AnalyticalPredictor(gpu=get_platform("platform2").gpu)
            ap.fit(split.train, split.val)
            from dataclasses import replace

            cfg = replace(profile.train_config(),
                          epochs=min(80, profile.epochs),
                          patience=min(80, profile.patience))
            lp = LatencyPredictor("dag_transformer", seed=profile.seed)
            lp.fit(split.train, split.val, cfg)
            rows.append((sc.label, ap.evaluate_mre(split.test),
                         lp.evaluate_mre(split.test)))
        cache.set(key, rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Baseline — calibrated analytical roofline vs DAG Transformer "
             "(GPT, platform2)",
             f"{'scenario':>16s} {'analytical':>11s} {'Tran':>8s}"]
    for label, a, t in rows:
        lines.append(f"{label:>16s} {a:11.2f} {t:8.2f}")
    lines.append("\nNote: ground truth here is itself simulated, which "
                 "flatters the analytical baseline relative to real GPUs; "
                 "configurations with intra-op communication (conf 2+) are "
                 "where it degrades.")
    save_result("baseline_analytical", "\n".join(lines))
    assert all(a > 0 and t > 0 for _, a, t in rows)
