"""Micro-benchmark of the CFP collapse pass (memo on vs off, cold).

Statistical timing of cold intra-op corpus solves — every cache tier
cleared before each pass, so the collapse memo's cross-graph sharing is
what's measured, not the plan cache — under the default collapse gate
and under ``REPRO_DP_COLLAPSE=off``.  The representative numbers live in
the ``dp_collapse`` site of the repo-root ``BENCH_train.json``
(regenerated with ``repro bench train``); this file is for profiling
the pass interactively.
"""

import os

import pytest

from repro.parallel import intra_op
from repro.perf.microbench import grid_cases


@pytest.fixture(scope="module")
def quick_cases(profile):
    return grid_cases(profile, "gpt", quick=True)


def _solve_cold(cases):
    intra_op.clear_table_caches()
    return [intra_op.optimize_stage(c.graph, c.mesh) for c in cases]


def test_collapse_on(benchmark, quick_cases, monkeypatch):
    monkeypatch.delenv("REPRO_DP_COLLAPSE", raising=False)
    plans = benchmark(_solve_cold, quick_cases)
    assert all(p.estimated_time > 0 for p in plans)
    stats = intra_op.collapse_stats()
    assert stats.hits > 0  # the corpus must actually share structure


def test_collapse_off(benchmark, quick_cases, monkeypatch):
    monkeypatch.setenv("REPRO_DP_COLLAPSE", "off")
    plans = benchmark(_solve_cold, quick_cases)
    assert all(p.estimated_time > 0 for p in plans)


def test_collapse_differential(quick_cases, monkeypatch):
    """Gate-on and gate-off cold solves are bit-identical."""
    monkeypatch.delenv("REPRO_DP_COLLAPSE", raising=False)
    on = _solve_cold(quick_cases)
    monkeypatch.setenv("REPRO_DP_COLLAPSE", "off")
    off = _solve_cold(quick_cases)
    for a, b in zip(on, off):
        assert a.estimated_time == b.estimated_time
        assert [x.strategy.name for x in a.assignments] == \
            [x.strategy.name for x in b.assignments]
