"""Fig 10 — the plan-search use case.

(a) optimization cost of vanilla Alpa with full/partial profiling vs Alpa
integrated with PredTOP (DAG Transformer, GCN, GAT variants);
(b) iteration latency of each approach's optimized plan, scored by
ground-truth stage measurements on the pipeline simulator.

The paper reports PredTOP(Tran) cutting optimization cost 46.6 % (GPT) /
41.6 % (MoE) below partial profiling at ≤2.1 % plan-latency degradation.

Results are cached under ``usecase/<profile>/<family>`` (also fillable via
``scripts/populate_cache.py usecase <family>``).
"""

from repro.core.search import APPROACHES
from repro.experiments import n_jobs, run_use_case
from repro.experiments.cache import global_cache
from repro.experiments.export import export_use_case

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def _load_or_run(profile, family):
    """Return {approach: {cost, latency, stages, feasible}}."""
    key = f"usecase/{profile.name}/{family}"
    cache = global_cache()
    hit = cache.get(key)
    if hit and set(hit) >= set(APPROACHES):
        return hit
    result = run_use_case(family, profile, jobs=n_jobs())
    data = {a: {"cost": r.optimization_cost,
                "latency": r.true_iteration_latency,
                "stages": r.plan.n_stages,
                "feasible": r.plan.feasible}
            for a, r in result.results.items()}
    cache.set(key, data)
    return data


def _render(family, data):
    base = data["partial"]
    lines = [f"Fig 10 — use case, {family.upper()} (baseline: partial profiling)",
             f"{'approach':>26s} {'opt cost (s)':>13s} {'vs partial':>11s}"
             f" {'plan latency (ms)':>18s} {'vs partial':>11s} {'stages':>7s}"]
    for a in APPROACHES:
        r = data[a]
        lines.append(
            f"{a:>26s} {r['cost']:13.1f} {r['cost'] / base['cost']:10.2f}x"
            f" {r['latency'] * 1e3:18.1f}"
            f" {r['latency'] / base['latency']:10.3f}x {r['stages']:7d}")
    return "\n".join(lines)


def _check(data):
    full = data["full"]
    tran = data["predtop-dag_transformer"]
    assert full["stages"] >= 1
    assert tran["stages"] >= 1
    # PredTOP must be cheaper than exhaustive profiling...
    assert tran["cost"] < full["cost"]
    # ...without a catastrophic plan (within 50 % of the baseline latency
    # even at the cheapest profile)
    assert tran["latency"] <= 1.5 * full["latency"]


def test_fig10_gpt(benchmark, profile, save_result):
    data = benchmark.pedantic(lambda: _load_or_run(profile, "gpt"),
                              rounds=1, iterations=1)
    save_result("fig10_gpt", _render("gpt", data))
    export_use_case(data, RESULTS_DIR / profile.name / "fig10_gpt.csv")
    _check(data)


def test_fig10_moe(benchmark, profile, save_result):
    data = benchmark.pedantic(lambda: _load_or_run(profile, "moe"),
                              rounds=1, iterations=1)
    save_result("fig10_moe", _render("moe", data))
    export_use_case(data, RESULTS_DIR / profile.name / "fig10_moe.csv")
    _check(data)
