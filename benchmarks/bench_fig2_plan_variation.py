"""Fig 2 — latency variation across random parallelization plans.

The paper motivates parallelism-aware prediction by showing that 100
random execution plans of the same model on the same hardware span a wide
latency range.  This bench regenerates that series for both benchmarks on
Platform 2 and reports the spread statistics.
"""

import numpy as np

from repro.experiments import random_plan_latencies
from repro.experiments.export import export_series

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def _summarize(name, lats):
    lats_ms = np.sort(lats) * 1e3
    spread = lats_ms.max() / lats_ms.min()
    lines = [f"Fig 2 — {name}: iteration latency of {len(lats_ms)} random plans",
             f"  min {lats_ms.min():9.1f} ms   median {np.median(lats_ms):9.1f} ms"
             f"   max {lats_ms.max():9.1f} ms   max/min {spread:5.2f}x",
             "  series (ms): " + " ".join(f"{v:.0f}" for v in lats_ms)]
    return "\n".join(lines), spread


def test_fig2_gpt(benchmark, profile, save_result):
    lats = benchmark.pedantic(
        lambda: random_plan_latencies("gpt", profile, seed=profile.seed),
        rounds=1, iterations=1)
    text, spread = _summarize("GPT-3", lats)
    save_result("fig2_gpt", text)
    export_series(lats, RESULTS_DIR / profile.name / "fig2_gpt.csv",
                  "iteration_latency_s")
    # the paper's point: plan choice changes latency substantially
    assert spread > 1.3


def test_fig2_moe(benchmark, profile, save_result):
    lats = benchmark.pedantic(
        lambda: random_plan_latencies("moe", profile, seed=profile.seed),
        rounds=1, iterations=1)
    text, spread = _summarize("MoE", lats)
    save_result("fig2_moe", text)
    export_series(lats, RESULTS_DIR / profile.name / "fig2_moe.csv",
                  "iteration_latency_s")
    assert spread > 1.3
