"""Fig 3 — stage-latency prediction error: GCN vs DAG Transformer.

The motivation figure compares the two models per runtime configuration
on Platform 2 at a fixed training budget.  Reuses Table-VI cells from the
results cache when they exist.
"""

from repro.experiments import mre_grid, scenario_grid


def _compare(profile, family):
    fraction = max(profile.fractions)
    grid = mre_grid("platform2", family, profile,
                    kinds=("gcn", "dag_transformer"), fractions=(fraction,))
    lines = [f"Fig 3 — GCN vs DAG Transformer, {family.upper()} on platform2 "
             f"(train fraction {fraction:.0%})",
             f"{'scenario':>16s} {'GCN':>8s} {'Tran':>8s} {'winner':>8s}"]
    wins = 0
    for sc in scenario_grid("platform2"):
        g = grid[(sc.key, fraction, "gcn")]
        t = grid[(sc.key, fraction, "dag_transformer")]
        w = "Tran" if t <= g else "GCN"
        wins += (t <= g)
        lines.append(f"{sc.label:>16s} {g:8.2f} {t:8.2f} {w:>8s}")
    return "\n".join(lines), wins


def test_fig3_gpt(benchmark, profile, save_result):
    text, wins = benchmark.pedantic(lambda: _compare(profile, "gpt"),
                                    rounds=1, iterations=1)
    save_result("fig3_gpt", text)


def test_fig3_moe(benchmark, profile, save_result):
    text, wins = benchmark.pedantic(lambda: _compare(profile, "moe"),
                                    rounds=1, iterations=1)
    save_result("fig3_moe", text)
