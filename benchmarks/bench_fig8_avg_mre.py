"""Fig 8 — average of MREs per predictor over all (mesh, config) scenarios.

Aggregates the Table V/VI grids (cache hits if those benches ran first)
per (platform, benchmark).
"""

from repro.experiments import grid_statistics, mre_grid, render_stats


def _avg(profile):
    blocks = []
    for platform in ("platform1", "platform2"):
        for family in ("gpt", "moe"):
            grid = mre_grid(platform, family, profile)
            stats = grid_statistics(grid)
            blocks.append(render_stats(
                stats, f"Fig 8 — mean MRE, {family.upper()} on {platform}"))
    return "\n\n".join(blocks)


def test_fig8_average_mre(benchmark, profile, save_result):
    text = benchmark.pedantic(lambda: _avg(profile), rounds=1, iterations=1)
    save_result("fig8_avg_mre", text)
