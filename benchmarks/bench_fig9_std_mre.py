"""Fig 9 — standard deviation of MREs per predictor over scenarios.

The paper's stability claim: the DAG Transformer's MRE spread across
runtime configurations is far smaller than GCN's/GAT's.
"""

from repro.experiments import grid_statistics, mre_grid, render_stats


def _std(profile):
    blocks = []
    verdicts = []
    for platform in ("platform1", "platform2"):
        for family in ("gpt", "moe"):
            grid = mre_grid(platform, family, profile)
            stats = grid_statistics(grid)
            blocks.append(render_stats(
                stats, f"Fig 9 — MRE std-dev, {family.upper()} on {platform}"))
            if {"dag_transformer", "gcn"} <= stats.keys():
                verdicts.append(stats["dag_transformer"]["std"]
                                <= stats["gcn"]["std"])
    summary = (f"\nDAG Transformer std <= GCN std in "
               f"{sum(verdicts)}/{len(verdicts)} (platform, benchmark) pairs")
    return "\n\n".join(blocks) + summary


def test_fig9_std_mre(benchmark, profile, save_result):
    text = benchmark.pedantic(lambda: _std(profile), rounds=1, iterations=1)
    save_result("fig9_std_mre", text)
