"""Micro-benchmark of the intra-op DP hot path (vectorized vs reference).

Statistical timing of both solvers over a reduced slice of the active
profile's GPT grid, plus a one-shot run of the full harness that asserts
the differential identity and persists ``BENCH_intraop.json`` under
``results/<profile>/``.  The checked-in repo-root ``BENCH_intraop.json``
is regenerated with ``repro bench micro`` instead (full grid).
"""

import json
from pathlib import Path

import pytest

from repro.parallel.intra_op import optimize_stage, optimize_stage_reference
from repro.perf.microbench import grid_cases, run_intraop_microbench

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture(scope="module")
def quick_cases(profile):
    cases = grid_cases(profile, "gpt", quick=True)
    for case in cases:  # warm every cache tier, as in grid production use
        optimize_stage(case.graph, case.mesh)
        optimize_stage_reference(case.graph, case.mesh)
    return cases


def test_intraop_vectorized(benchmark, quick_cases):
    def run():
        return [optimize_stage(c.graph, c.mesh) for c in quick_cases]

    plans = benchmark(run)
    assert all(p.estimated_time > 0 for p in plans)


def test_intraop_reference(benchmark, quick_cases):
    def run():
        return [optimize_stage_reference(c.graph, c.mesh)
                for c in quick_cases]

    plans = benchmark(run)
    assert all(p.estimated_time > 0 for p in plans)


def test_intraop_harness(profile, save_result):
    result = run_intraop_microbench(profile, quick=True)
    assert result["differential"]["identical"]
    assert result["overall"]["speedup"] > 1.0
    out = RESULTS_DIR / profile.name / "BENCH_intraop.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"\nintra-op micro-bench speedup "
          f"{result['overall']['speedup']:.1f}x [saved to {out}]")
