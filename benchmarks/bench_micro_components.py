"""Micro-benchmarks of the framework's hot components.

These use pytest-benchmark's statistical timing (multiple rounds), unlike
the experiment benches which run once: stage tracing, pruning+fusion,
reachability closure, intra-op optimization, ground-truth simulation, and
one predictor inference batch.
"""

import numpy as np
import pytest

from repro.cluster import PLATFORM2
from repro.ir import build_training_graph, fuse_elementwise, prune_graph, reachability_mask
from repro.models import benchmark_config, build_model
from repro.parallel import optimize_stage
from repro.runtime import execute_plan


@pytest.fixture(scope="module")
def gpt4():
    return build_model(benchmark_config("gpt", n_layers=4))


@pytest.fixture(scope="module")
def stage(gpt4):
    return gpt4.stage_graph(1, 4)


@pytest.fixture(scope="module")
def training_graph(stage):
    g, _ = fuse_elementwise(prune_graph(stage), aggressive=True)
    return build_training_graph(g)


def test_trace_stage_graph(benchmark, gpt4):
    g = benchmark(gpt4.stage_graph, 1, 4)
    assert len(g) > 100


def test_prune_and_fuse(benchmark, stage):
    def run():
        g = prune_graph(stage)
        return fuse_elementwise(g, aggressive=True)[0]

    g = benchmark(run)
    assert len(g) < len(stage)


def test_training_graph_expansion(benchmark, stage):
    g = benchmark(build_training_graph, stage)
    assert len(g) > len(stage)


def test_reachability_closure(benchmark, training_graph):
    m = benchmark(reachability_mask, training_graph)
    assert m.shape[0] == len(training_graph)


def test_intra_op_optimization(benchmark, training_graph):
    lv = PLATFORM2.mesh(3).logical(2, 2)
    plan = benchmark(optimize_stage, training_graph, lv)
    assert len(plan.assignments) == len(training_graph)


def test_stage_execution_simulation(benchmark, training_graph):
    lv = PLATFORM2.mesh(2).logical(2, 1)
    plan = optimize_stage(training_graph, lv)
    prof = benchmark(execute_plan, plan)
    assert prof.latency > 0


def test_predictor_inference(benchmark, profile):
    from repro.experiments import scenario_grid, stage_corpus
    from repro.predictors import LatencyPredictor, TrainConfig, split_dataset

    sc = scenario_grid("platform2")[0]
    samples = stage_corpus("gpt", sc, profile)
    split = split_dataset(samples, 0.5, 0.1, profile.seed)
    lp = LatencyPredictor("dag_transformer", seed=profile.seed)
    lp.fit(split.train, split.val,
           TrainConfig(epochs=2, patience=2, batch_size=8))
    pred = benchmark(lp.predict_samples, split.test)
    assert np.isfinite(pred).all()
