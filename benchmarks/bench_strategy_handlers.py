"""Micro-benchmark of the per-op handler registry.

Times cold strategy enumeration over the benchmark model graphs through
the registry path versus the retained legacy monolith, and a full cold
intra-op solve with topology-aware pricing off and on.  The registry
must not regress enumeration throughput (it dispatches one dict lookup
per node), and the topo-on solve quantifies the cost of the wider
search space.  The differential test pins the two enumerators
bit-identical with the topology gate off, same as the tier-1 suite, so
a perf run doubles as a correctness sweep.
"""

import pytest

from repro.cluster import PLATFORM2
from repro.models import benchmark_config, build_model
from repro.parallel import intra_op, legacy_node_strategies, node_strategies

FAMILIES = ("gpt", "moe", "bert", "vit")


@pytest.fixture(scope="module")
def graphs():
    return {f: build_model(benchmark_config(f, n_layers=2)).full_graph()
            for f in FAMILIES}


@pytest.fixture(scope="module")
def mesh():
    return PLATFORM2.mesh(3).logical(2, 2)


def _enumerate(graphs, mesh, fn):
    total = 0
    for g in graphs.values():
        for node in g.nodes:
            ins = [g.nodes[i].out for i in node.inputs]
            total += len(fn(node, ins, mesh))
    return total


def test_registry_enumeration(benchmark, graphs, mesh):
    n = benchmark(_enumerate, graphs, mesh, node_strategies)
    assert n > 0


def test_legacy_enumeration(benchmark, graphs, mesh):
    n = benchmark(_enumerate, graphs, mesh, legacy_node_strategies)
    assert n > 0


def test_enumeration_differential(graphs, mesh):
    """Registry and legacy paths agree strategy-for-strategy (topo off)."""
    def key(s):
        return (s.name, s.out, s.ins, s.factor, s.comm_time)
    for fam, g in graphs.items():
        for node in g.nodes:
            ins = [g.nodes[i].out for i in node.inputs]
            assert [key(s) for s in node_strategies(node, ins, mesh)] == \
                [key(s) for s in legacy_node_strategies(node, ins, mesh)], \
                (fam, node.op)


def test_solve_topo_off(benchmark, graphs, monkeypatch):
    monkeypatch.delenv("REPRO_TOPO", raising=False)
    lm = PLATFORM2.mesh(3).logical(2, 2)

    def solve():
        intra_op.clear_table_caches()
        return intra_op.optimize_stage(graphs["moe"], lm)

    plan = benchmark(solve)
    assert plan.estimated_time > 0


def test_solve_topo_on(benchmark, graphs, monkeypatch):
    monkeypatch.setenv("REPRO_TOPO", "on")
    lm = PLATFORM2.mesh(3).logical(2, 2)

    def solve():
        intra_op.clear_table_caches()
        return intra_op.optimize_stage(graphs["moe"], lm)

    plan = benchmark(solve)
    assert plan.estimated_time > 0
