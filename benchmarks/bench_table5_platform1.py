"""Table V — MRE grid on Platform 1 (2×A40).

Scenarios: Mesh 1 Conf 1, Mesh 2 Conf 1 (2-way DP), Mesh 2 Conf 2 (2-way
MP); rows are train-sample fractions, columns GCN/GAT/DAG-Transformer,
for both benchmarks.

Cells run through the parallel experiment engine; set ``REPRO_JOBS`` to
fan them across worker processes (results are identical to a serial run).
"""

from repro.experiments import mre_grid, n_jobs, render_mre_table
from repro.experiments.export import export_mre_grid

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def _run(benchmark, profile, save_result, family):
    grid = benchmark.pedantic(
        lambda: mre_grid("platform1", family, profile, jobs=n_jobs()),
        rounds=1, iterations=1)
    save_result(f"table5_{family}",
                render_mre_table(grid, "platform1", family, profile.fractions))
    export_mre_grid(grid, RESULTS_DIR / profile.name / f"table5_{family}.csv")
    assert grid and all(v > 0 for v in grid.values())


def test_table5_gpt(benchmark, profile, save_result):
    _run(benchmark, profile, save_result, "gpt")


def test_table5_moe(benchmark, profile, save_result):
    _run(benchmark, profile, save_result, "moe")
