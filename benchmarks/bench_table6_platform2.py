"""Table VI — MRE grid on Platform 2 (2 nodes × 2×RTX A5500).

Six scenarios: meshes 1–3 with the Table-III configurations (up to 4-way
DP, 2-way DP × 2-way MP, and 4-way MP across nodes).

Cells run through the parallel experiment engine; set ``REPRO_JOBS`` to
fan them across worker processes (results are identical to a serial run).
"""

from repro.experiments import mre_grid, n_jobs, render_mre_table
from repro.experiments.export import export_mre_grid

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def _run(benchmark, profile, save_result, family):
    grid = benchmark.pedantic(
        lambda: mre_grid("platform2", family, profile, jobs=n_jobs()),
        rounds=1, iterations=1)
    save_result(f"table6_{family}",
                render_mre_table(grid, "platform2", family, profile.fractions))
    export_mre_grid(grid, RESULTS_DIR / profile.name / f"table6_{family}.csv")
    assert grid and all(v > 0 for v in grid.values())


def test_table6_gpt(benchmark, profile, save_result):
    _run(benchmark, profile, save_result, "gpt")


def test_table6_moe(benchmark, profile, save_result):
    _run(benchmark, profile, save_result, "moe")
