"""Micro-benchmark of the predictor hot path (fast vs seed baseline).

Statistical timing of one predictor fit under the fast configuration and
under the seed configuration (reference autograd engine, per-forward
masks, no encoding cache), plus a one-shot run of the full harness that
asserts the bit-identity differential and persists ``BENCH_train.json``
under ``results/<profile>/``.  The checked-in repo-root
``BENCH_train.json`` is regenerated with ``repro bench train`` instead.
"""

import json
from pathlib import Path

import pytest

from repro.perf.trainbench import (
    bench_corpus,
    run_train_microbench,
    seed_mode,
)
from repro.predictors import LatencyPredictor, StageSample, TrainConfig

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"

CFG = TrainConfig(epochs=3, patience=3, batch_size=8, lr=2e-3, seed=0)


@pytest.fixture(scope="module")
def corpus(profile):
    _, _, _, rows = bench_corpus(profile, quick=True)
    return rows


def _fit(rows):
    samples = [StageSample(g, lat, sid) for (g, lat, sid) in rows]
    pred = LatencyPredictor(seed=0)
    pred.fit(samples[3:], samples[:3], CFG)
    return pred


def test_train_fast(benchmark, corpus):
    pred = benchmark(_fit, corpus)
    assert pred.train_result is not None


def test_train_seed_baseline(benchmark, corpus):
    def run():
        with seed_mode():
            return _fit(corpus)

    pred = benchmark(run)
    assert pred.train_result is not None


def test_train_harness(profile):
    result = run_train_microbench(profile, quick=True)
    assert result["differential"]["identical"]
    # the composite pipeline has the most margin on noisy shared runners;
    # the representative numbers are pinned by the checked-in BENCH_train.json
    assert result["overall"]["pipeline_speedup"] > 1.0
    out = RESULTS_DIR / profile.name / "BENCH_train.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"\npredictor pipeline bench: headline (search_predtop) "
          f"{result['overall']['headline_search_speedup']:.2f}x "
          f"[saved to {out}]")
