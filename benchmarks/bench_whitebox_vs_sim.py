"""White-box Eqn 4 vs the discrete-event pipeline simulator.

Quantifies §V's approximations: (a) the combined-pass flow-shop identity,
(b) the error from ignoring inter-stage communication on NVLink vs
10 GbE, (c) the slack recovered by 1F1B fwd/bwd interleaving.
"""

import numpy as np

from repro.cluster import NVLINK, TEN_GBE
from repro.runtime import simulated_latency, whitebox_latency


def test_whitebox_vs_simulation(benchmark, profile, save_result):
    rng = np.random.default_rng(profile.seed)

    def run():
        rows = []
        for trial in range(200):
            S = int(rng.integers(2, 6))
            B = int(rng.integers(2, 17))
            stages = rng.uniform(0.05, 0.5, size=S)
            wb = whitebox_latency(stages, B)
            exact = simulated_latency(stages, B)
            nv = simulated_latency(stages, B, transfer_bytes=32e6, link=NVLINK)
            eth = simulated_latency(stages, B, transfer_bytes=32e6, link=TEN_GBE)
            ofb = simulated_latency(stages, B, split_backward=True)
            rows.append((abs(exact - wb) / wb, (nv - wb) / wb,
                         (eth - wb) / wb, (wb - ofb) / wb))
        return np.array(rows)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join([
        "White-box Eqn 4 vs discrete-event simulation (200 random pipelines)",
        f"  combined-pass identity error : max {rows[:, 0].max():.2e} (exact)",
        f"  NVLink transfer error        : mean {rows[:, 1].mean() * 100:6.2f}%"
        f"  (justifies ignoring comm, §V)",
        f"  10GbE transfer error         : mean {rows[:, 2].mean() * 100:6.2f}%",
        f"  1F1B interleaving slack      : mean {rows[:, 3].mean() * 100:6.2f}%",
    ])
    save_result("whitebox_vs_sim", text)
    assert rows[:, 0].max() < 1e-6
    assert rows[:, 1].mean() < rows[:, 2].mean()
