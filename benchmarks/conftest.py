"""Benchmark harness configuration.

Every bench regenerates one table or figure of the paper at the
resolution selected by ``REPRO_PROFILE`` (smoke | fast | paper; default
fast — see ``repro.experiments.profiles``).  Rendered tables are printed
and persisted under ``results/<profile>/`` so the figures that aggregate
them (Fig 3/8/9) and EXPERIMENTS.md can reference them; per-cell MREs are
memoized in ``.repro_cache`` so re-runs are cheap.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import active_profile

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def save_result(profile):
    """Persist a rendered experiment artifact and echo it to stdout."""

    def _save(name: str, text: str) -> Path:
        out_dir = RESULTS_DIR / profile.name
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
