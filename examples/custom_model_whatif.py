#!/usr/bin/env python
"""Custom models and what-if clusters.

PredTOP is not tied to the two paper benchmarks: any model expressed as a
layer sequence can be traced, sliced, and profiled, and any cluster can
be described.  This example

1. defines a custom "wide-FFN" transformer via the layer library;
2. sweeps a stage across the Table-III configurations on Platform 2;
3. asks what-if questions: does upgrading the 10 GbE fabric to 100 Gb
   InfiniBand — or to an NVLink-class switch spanning both nodes — make
   cross-node 4-way model parallelism worthwhile?
"""

from dataclasses import replace

from repro.cluster import IB100, NVLINK, DeviceMesh, RTX_A5500, PLATFORM2
from repro.models import ModelConfig, TransformerLayer, EmbeddingLayer, LMHeadLayer
from repro.models.model import Model
from repro.runtime import StageProfiler


def build_wide_ffn_model() -> Model:
    cfg = ModelConfig(
        name="wide-ffn-350m", family="gpt",
        seq_len=512, hidden=1024, n_layers=3, n_heads=16, vocab=32000,
        ffn_mult=8,  # twice the usual FFN expansion
        microbatch=4,
    )
    layers = [EmbeddingLayer(cfg, 0)]
    layers += [TransformerLayer(cfg, i + 1) for i in range(cfg.n_layers)]
    layers.append(LMHeadLayer(cfg, cfg.n_layers + 1))
    return Model(cfg, layers)


def main() -> None:
    model = build_wide_ffn_model()
    profiler = StageProfiler(model, aggressive_fusion=True)
    print(f"custom model: {model.name} "
          f"({model.param_count() / 1e6:.0f} M params)\n")

    print("stage = transformer blocks 1-3, per-microbatch training latency:")
    mesh2, mesh3 = PLATFORM2.mesh(2), PLATFORM2.mesh(3)
    for mesh, dp, mp, label in [
            (PLATFORM2.mesh(1), 1, 1, "1 GPU"),
            (mesh2, 2, 1, "2-way DP (NVLink)"),
            (mesh2, 1, 2, "2-way MP (NVLink)"),
            (mesh3, 4, 1, "4-way DP (10GbE)"),
            (mesh3, 1, 4, "4-way MP (10GbE)")]:
        p = profiler.profile_stage(1, 4, mesh, dp, mp)
        print(f"  {label:>20s}: {p.latency * 1e3:8.2f} ms "
              f"(comm {p.profile.comm_fraction:5.1%}, "
              f"mem {p.profile.memory_bytes / 1e9:4.1f} GB/GPU)")

    # what-if: swap the inter-node fabric
    base = profiler.profile_stage(1, 4, mesh3, 1, 4)
    print("\nwhat-if — 4-way MP across nodes under different fabrics:")
    for label, link in (("100Gb InfiniBand", IB100),
                        ("NVLink-class switch", NVLINK)):
        mesh = DeviceMesh(2, 2, RTX_A5500, NVLINK, link)
        p = profiler.profile_stage(1, 4, mesh, 1, 4)
        print(f"  10GbE {base.latency * 1e3:7.2f} ms -> {label} "
              f"{p.latency * 1e3:7.2f} ms ({base.latency / p.latency:.2f}x)")


if __name__ == "__main__":
    main()
