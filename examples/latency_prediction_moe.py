#!/usr/bin/env python
"""MoE stage-latency prediction: DAG Transformer vs GCN vs GAT.

Builds the GShard-MoE benchmark (scaled to 2 blocks), profiles every
candidate stage on three runtime configurations of Platform 2, and
compares the three predictor families' test MREs per configuration —
a miniature of the paper's Table VI (MoE half).
"""

from repro import PLATFORM2, LatencyPredictor, StageSample, TrainConfig, benchmark_config, build_model, cluster_layers
from repro.predictors import split_dataset
from repro.runtime import StageProfiler

CONFIGS = [  # (mesh index, dp, mp, label) — Table III
    (2, 2, 1, "mesh2 conf1 (2-way DP)"),
    (2, 1, 2, "mesh2 conf2 (2-way MP)"),
    (3, 2, 2, "mesh3 conf2 (2-way DP x 2-way MP)"),
]


def main() -> None:
    cfg = benchmark_config("moe", n_layers=2)
    model = build_model(cfg)
    clustering = cluster_layers(model, 4)
    profiler = StageProfiler(model, aggressive_fusion=True)
    train_cfg = TrainConfig(epochs=60, patience=60, batch_size=8)

    print(f"{model.name}: {model.param_count() / 1e6:.0f} M params, "
          f"{cfg.n_experts} experts, top-{cfg.router_topk} routing\n")
    header = f"{'configuration':>34s} " + "".join(
        f"{k:>10s}" for k in ("GCN", "GAT", "Tran"))
    print(header)

    for mesh_idx, dp, mp, label in CONFIGS:
        mesh = PLATFORM2.mesh(mesh_idx)
        samples = []
        for mb in (2, 4, 8):
            for (s, e) in clustering.all_slices():
                p = profiler.profile_stage(s, e, mesh, dp, mp, microbatch=mb)
                samples.append(StageSample(p.graph, p.latency, p.stage_id))
        split = split_dataset(samples, 0.6, 0.1, seed=0)
        row = f"{label:>34s} "
        for kind in ("gcn", "gat", "dag_transformer"):
            lp = LatencyPredictor(kind, seed=0)
            lp.fit(split.train, split.val, train_cfg)
            row += f"{lp.evaluate_mre(split.test):9.2f}%"
        print(row)


if __name__ == "__main__":
    main()
