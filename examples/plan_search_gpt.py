#!/usr/bin/env python
"""Use case: cut auto-parallelization cost with PredTOP (Fig 10).

Runs the Alpa-style plan search for a small GPT on the 2-node Platform-2
cluster five ways — exhaustive profiling, Alpa's partial-profiling
heuristic, and PredTOP with DAG Transformer / GCN / GAT — then compares
optimization cost and the quality (simulated iteration latency) of each
approach's chosen plan.
"""

from repro import PLATFORM2, PlanSearcher, TrainConfig, benchmark_config, build_model, cluster_layers
from repro.core.search import APPROACHES
from repro.runtime import StageProfiler


def main() -> None:
    cfg = benchmark_config("gpt", n_layers=2)
    model = build_model(cfg)
    clustering = cluster_layers(model, 4)
    cluster = PLATFORM2.cluster()

    searcher = PlanSearcher(
        model, clustering, cluster,
        n_microbatches=8,
        profiler=StageProfiler(model, aggressive_fusion=True),
        sample_fraction=0.5,
        train_config=TrainConfig(epochs=40, patience=40, batch_size=8),
        seed=0,
    )

    print(f"plan search over {clustering.n_units} units on {cluster} "
          f"({cluster.num_devices} GPUs)\n")
    rows = {}
    for approach in APPROACHES:
        rows[approach] = searcher.run(approach)
        r = rows[approach]
        print(f"== {approach}")
        print(r.plan.describe())
        print(f"   optimization cost {r.optimization_cost:9.1f} s "
              f"{r.cost_breakdown}")
        print(f"   true iteration latency {r.true_iteration_latency * 1e3:8.1f} ms\n")

    base = rows["partial"]
    tran = rows["predtop-dag_transformer"]
    saving = 1 - tran.optimization_cost / base.optimization_cost
    degr = tran.true_iteration_latency / base.true_iteration_latency - 1
    print(f"PredTOP(DAG Transformer) vs partial profiling: "
          f"{saving:+.1%} optimization-cost saving at "
          f"{degr:+.1%} plan-latency change")


if __name__ == "__main__":
    main()
