#!/usr/bin/env python
"""Quickstart: predict distributed training latency with PredTOP.

Walks the full gray-box pipeline on a small GPT variant:

1. build the model as an operator graph and cluster its layers;
2. "profile" a sample of pipeline stages on a 2-GPU mesh (the simulated
   testbed stands in for the paper's A5500 cluster);
3. train the DAG-Transformer stage-latency predictor;
4. predict every candidate stage and compose end-to-end iteration latency
   with the white-box pipeline model (Eqn 4).

Runs in a couple of minutes on one CPU core.
"""

import numpy as np

from repro import (
    PLATFORM2,
    PredTOP,
    PredTOPConfig,
    TrainConfig,
    benchmark_config,
    build_model,
    cluster_layers,
)
from repro.runtime import StageProfiler, whitebox_latency

SEED = 0


def main() -> None:
    # -- 1. model + stage space ------------------------------------------
    cfg = benchmark_config("gpt", n_layers=2)  # Table-IV widths, 2 blocks
    model = build_model(cfg)
    clustering = cluster_layers(model, 4)
    print(f"model: {model.name} ({model.param_count() / 1e6:.0f} M params, "
          f"{model.n_layers} layers -> {clustering.n_units} units, "
          f"{len(clustering.all_slices())} candidate stages)")

    # -- 2 & 3. profile a sample and train the predictor ------------------
    mesh = PLATFORM2.mesh(2)  # one node, 2x RTX A5500 over NVLink
    predtop = PredTOP(
        model, clustering, mesh,
        PredTOPConfig(
            sample_fraction=0.8,
            train=TrainConfig(epochs=150, patience=150, batch_size=4,
                              lr=2e-3),
            seed=SEED,
        ),
        profiler=StageProfiler(model, aggressive_fusion=True),
    )
    profiled = predtop.profiling_phase(dp=2, mp=1)  # 2-way data parallel
    print(f"profiled {len(profiled)} sampled stages "
          f"(simulated cost {predtop.costs.profiling_seconds:.0f}s)")
    predtop.training_phase()
    print(f"trained {predtop.config.predictor_kind} in "
          f"{predtop.costs.training_seconds:.0f}s wall")

    # -- 4. predict all stages + white-box composition --------------------
    predictions = predtop.prediction_phase()
    profiler = predtop.profiler
    print("\nper-stage prediction vs simulated ground truth:")
    errs = []
    for (s, e), pred in sorted(predictions.items()):
        true = profiler.profile_stage(s, e, mesh, 2, 1).latency
        errs.append(abs(pred - true) / true)
        print(f"  layers [{s:2d},{e:2d})  pred {pred * 1e3:8.2f} ms   "
              f"true {true * 1e3:8.2f} ms   err {errs[-1] * 100:6.2f}%")
    print(f"MRE over all stages: {np.mean(errs) * 100:.2f}%")

    # compose a 2-stage pipeline plan with Eqn 4
    half = clustering.slice_range(0, 2)
    rest = clustering.slice_range(2, clustering.n_units)
    stage_times = [predictions[half], predictions[rest]]
    T = whitebox_latency(stage_times, n_microbatches=8)
    print(f"\npredicted iteration latency of a 2-stage pipeline "
          f"(B=8): {T * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
