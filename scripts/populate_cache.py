#!/usr/bin/env python
"""Populate the experiment results cache chunk by chunk.

The benchmark suite memoizes every cell in ``.repro_cache``; this driver
lets long grids be filled in resumable pieces:

    python scripts/populate_cache.py table platform2 gpt 0.3
    python scripts/populate_cache.py table platform1 moe all
    python scripts/populate_cache.py usecase gpt
    python scripts/populate_cache.py status

Respects ``REPRO_PROFILE`` like the benches do.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import active_profile, scenario_grid
from repro.experiments.cache import global_cache
from repro.experiments.tables import run_cell
from repro.predictors.base import PREDICTOR_KINDS


def fill_table(platform: str, family: str, fraction_arg: str) -> None:
    profile = active_profile()
    fractions = (profile.fractions if fraction_arg == "all"
                 else (float(fraction_arg),))
    for sc in scenario_grid(platform):
        for fraction in fractions:
            for kind in PREDICTOR_KINDS:
                t0 = time.time()
                cell = run_cell(family, sc, fraction, kind, profile)
                print(f"{family}/{sc.key}/f{fraction}/{kind}: "
                      f"MRE {cell.mre:7.2f}%  ({time.time() - t0:5.1f}s)",
                      flush=True)


def fill_usecase(family: str) -> None:
    from repro.experiments import run_use_case

    profile = active_profile()
    result = run_use_case(family, profile)
    global_cache().set(
        f"usecase/{profile.name}/{family}",
        {a: {"cost": r.optimization_cost,
             "latency": r.true_iteration_latency,
             "stages": r.plan.n_stages}
         for a, r in result.results.items()})
    for a, r in result.results.items():
        print(f"{family}/{a}: cost {r.optimization_cost:9.1f}s "
              f"latency {r.true_iteration_latency * 1e3:9.1f}ms", flush=True)


def status() -> None:
    cache = global_cache()
    keys = cache.keys()
    print(f"{len(keys)} cached entries")
    for k in keys:
        print(" ", k)


def main() -> None:
    cmd = sys.argv[1] if len(sys.argv) > 1 else "status"
    if cmd == "table":
        fill_table(sys.argv[2], sys.argv[3], sys.argv[4])
    elif cmd == "usecase":
        fill_usecase(sys.argv[2])
    elif cmd == "status":
        status()
    else:
        raise SystemExit(f"unknown command {cmd!r}")


if __name__ == "__main__":
    main()


