#!/usr/bin/env python
"""Diff committed intra-op plans with topology-aware pricing off vs on.

Solves each benchmark family on the multi-node Table-II mesh (Platform 2,
mesh 3, logical 2x2) twice — ``REPRO_TOPO`` off and on — and writes a
JSON report of every node whose committed strategy changed, plus the
plan-level predicted times.  CI uploads the report as an artifact; the
script exits non-zero unless at least one family commits a different
plan under topology-aware pricing (the refactor's acceptance bar).

Usage: python scripts/topo_plan_diff.py [--output PATH] [--families gpt,moe,...]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import PLATFORM2  # noqa: E402
from repro.models import benchmark_config, build_model  # noqa: E402
from repro.parallel import intra_op  # noqa: E402


def solve(graph, mesh, topo: bool):
    if topo:
        os.environ["REPRO_TOPO"] = "on"
    else:
        os.environ.pop("REPRO_TOPO", None)
    try:
        intra_op.clear_table_caches()
        return intra_op.optimize_stage(graph, mesh.logical(2, 2))
    finally:
        os.environ.pop("REPRO_TOPO", None)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--output", default="topo_plan_diff.json")
    ap.add_argument("--families", default="gpt,moe,bert,vit")
    args = ap.parse_args()

    mesh = PLATFORM2.mesh(3)
    report = {"mesh": mesh.key(), "logical": "dp2mp2", "families": {}}
    any_diff = False
    for fam in args.families.split(","):
        graph = build_model(benchmark_config(fam, n_layers=2)).full_graph()
        off = solve(graph, mesh, topo=False)
        on = solve(graph, mesh, topo=True)
        changed = []
        for node, a, b in zip(graph.nodes, off.assignments, on.assignments):
            if a.strategy.name != b.strategy.name:
                changed.append({"node": node.name, "op": node.op,
                                "flat": a.strategy.name,
                                "topo": b.strategy.name})
        report["families"][fam] = {
            "nodes": len(graph.nodes),
            "changed": len(changed),
            "time_flat_s": off.estimated_time,
            "time_topo_s": on.estimated_time,
            "diff": changed,
        }
        any_diff |= bool(changed)
        print(f"{fam}: {len(changed)}/{len(graph.nodes)} node strategies "
              f"changed, predicted {off.estimated_time * 1e3:.2f} -> "
              f"{on.estimated_time * 1e3:.2f} ms")

    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2))
    print(f"wrote {out}")
    if not any_diff:
        print("ERROR: topology-aware pricing changed no committed plan",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
