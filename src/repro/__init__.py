"""PredTOP reproduction: gray-box latency prediction for distributed DL
training with operator parallelism (Acharya & Shu, IPPS 2025).

Top-level convenience imports cover the quickstart path:

>>> from repro import (benchmark_config, build_model, cluster_layers,
...                    PLATFORM2, StageProfiler, PredTOP, PredTOPConfig)
"""

from .cluster import PLATFORM1, PLATFORM2, DeviceMesh, Platform, get_platform
from .core import PredTOP, PredTOPConfig, PlanSearcher, SearchResult
from .models import (
    GPT3_1_3B,
    MOE_2_6B,
    ModelConfig,
    benchmark_config,
    build_model,
    cluster_layers,
)
from .predictors import LatencyPredictor, StageSample, TrainConfig
from .runtime import StageProfiler, simulated_latency, whitebox_latency

__version__ = "1.0.0"

__all__ = [
    "PLATFORM1", "PLATFORM2", "Platform", "get_platform", "DeviceMesh",
    "ModelConfig", "GPT3_1_3B", "MOE_2_6B", "benchmark_config",
    "build_model", "cluster_layers",
    "StageProfiler", "whitebox_latency", "simulated_latency",
    "LatencyPredictor", "StageSample", "TrainConfig",
    "PredTOP", "PredTOPConfig", "PlanSearcher", "SearchResult",
    "__version__",
]
