"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — platforms, meshes, benchmark specs, experiment profiles;
* ``profile``  — simulate one stage on one runtime configuration;
* ``predict``  — train a predictor on sampled stages and predict them all
  (optionally persisting the trained predictor);
* ``search``   — run the plan-search use case with a chosen approach;
* ``bench``    — regenerate Table V/VI or Fig-10 artifacts through the
  fault-tolerant experiment engine (``--jobs`` / ``REPRO_JOBS`` workers,
  ``--timeout`` / ``--retries`` supervision knobs); ``bench report``
  summarizes the run-manifest journal (attempts, retries, failures,
  quarantines, breaker transitions) of previous runs; ``bench serve``
  load-tests the serving daemon and writes ``BENCH_serve.json``;
* ``serve``    — the resilient serving daemon: load/fit a predictor once
  and answer JSON-lines requests (predict / predict_many / whatif /
  search / health) with deadlines, backpressure, and circuit-breaker
  degradation to the analytical estimator.

Exit codes are uniform across commands (:data:`EXIT_OK` …):

* ``0`` — completed fully;
* ``1`` — bad invocation, differential mismatch, or hard failure;
* ``2`` — partial results (failed grid cells after retries, or a serve
  bench with unanswered/unserved requests);
* ``3`` — degraded-only service (every answer came from the analytical
  fallback; the learned model path never served).
"""

from __future__ import annotations

import argparse
import sys

from .cluster.platforms import MESH_CONFIGS, PARALLEL_CONFIGS, PLATFORMS, get_platform
from .models.clustering import cluster_layers
from .models.configs import BENCHMARKS, benchmark_config
from .models.model import build_model
from .predictors.trainer import TrainConfig
from .runtime.schedules import schedule_names

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_PARTIAL = 2
EXIT_DEGRADED = 3


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--family", choices=sorted(BENCHMARKS), default="gpt",
                   help="benchmark model family")
    p.add_argument("--layers", type=int, default=2,
                   help="transformer block count (0 = full Table-IV depth)")
    p.add_argument("--platform", choices=sorted(PLATFORMS),
                   default="platform2")
    p.add_argument("--units", type=int, default=4,
                   help="layer-clustering units (stage boundaries)")
    p.add_argument("--seed", type=int, default=0)


def _build(args):
    from .runtime.profiler import StageProfiler

    cfg = benchmark_config(args.family, args.layers or None)
    model = build_model(cfg)
    clustering = cluster_layers(model, args.units)
    profiler = StageProfiler(model, aggressive_fusion=True)
    return model, clustering, profiler


def cmd_info(args) -> int:
    print("platforms:")
    for name, plat in sorted(PLATFORMS.items()):
        print(f"  {name}: {plat.n_nodes} node(s) x {plat.gpus_per_node}x "
              f"{plat.gpu.name}, intra={plat.intra_link.name}, "
              f"inter={plat.inter_link.name}")
    print("\nTable-II meshes:", MESH_CONFIGS)
    print("Table-III configs:", PARALLEL_CONFIGS)
    print("\nbenchmarks:")
    for name, cfg in sorted(BENCHMARKS.items()):
        model = build_model(cfg)
        print(f"  {name}: {cfg.name} — {model.param_count() / 1e9:.2f} B "
              f"params, seq {cfg.seq_len}, hidden {cfg.hidden}, "
              f"{cfg.n_layers} layers, {cfg.n_heads} heads")
    from .experiments.profiles import PROFILES

    print("\nexperiment profiles:")
    for name, prof in sorted(PROFILES.items()):
        print(f"  {name}: {prof.epochs} epochs, fractions {prof.fractions}, "
              f"gpt_layers={prof.gpt_layers}, units={prof.gpt_units}")
    from .runtime.schedules import get_schedule, schedule_names

    print("\npipeline schedules:")
    for name in schedule_names():
        doc = (get_schedule(name).__class__.__doc__ or "").strip()
        print(f"  {name}: {doc.splitlines()[0] if doc else ''}")
    from .cluster.mesh import topology_enabled
    from .parallel.handlers import describe_handlers

    gate = "on" if topology_enabled() else "off"
    print(f"\nstrategy handlers (topology-aware search REPRO_TOPO={gate}):")
    for name, keys, summary in describe_handlers():
        print(f"  {name} [{keys}]: {summary}")
    from .faults import SITE_SUMMARIES
    from .serving.protocol import OP_SUMMARIES

    print("\nserving endpoints (repro serve, JSON-lines over TCP):")
    for op, doc in OP_SUMMARIES.items():
        print(f"  {op}: {doc}")
    print("\nfault-injection sites (REPRO_FAULTS):")
    for site, doc in SITE_SUMMARIES.items():
        print(f"  {site}: {doc}")
    print("\nexit codes: 0 = ok, 1 = error/mismatch, 2 = partial results, "
          "3 = degraded-only service")
    return EXIT_OK


def cmd_profile(args) -> int:
    model, clustering, profiler = _build(args)
    platform = get_platform(args.platform)
    mesh = platform.mesh(args.mesh)
    start, end = clustering.slice_range(args.unit_start, args.unit_end)
    p = profiler.profile_stage(start, end, mesh, args.dp, args.mp,
                               microbatch=args.microbatch or None)
    prof = p.profile
    print(f"stage {p.stage_id} on {mesh} (dp={args.dp}, mp={args.mp})")
    print(f"  latency       {p.latency * 1e3:10.3f} ms")
    print(f"  compute       {prof.compute_time * 1e3:10.3f} ms")
    print(f"  collectives   {prof.comm_time * 1e3:10.3f} ms")
    print(f"  resharding    {prof.reshard_time * 1e3:10.3f} ms")
    print(f"  memory/GPU    {prof.memory_bytes / 1e9:10.2f} GB")
    print(f"  graph nodes   {prof.n_nodes:10d}")
    print(f"  profiling cost{p.profiling_cost:10.1f} s (simulated)")
    return 0


def cmd_predict(args) -> int:
    from .core.predtop import PredTOP, PredTOPConfig
    from .predictors.serialize import save_predictor

    model, clustering, profiler = _build(args)
    platform = get_platform(args.platform)
    mesh = platform.mesh(args.mesh)
    predtop = PredTOP(
        model, clustering, mesh,
        PredTOPConfig(
            predictor_kind=args.predictor,
            sample_fraction=args.sample_fraction,
            train=TrainConfig(epochs=args.epochs, patience=args.epochs,
                              batch_size=8, lr=2e-3, seed=args.seed),
            seed=args.seed,
            checkpoint_path=args.checkpoint or None,
            resume=args.resume,
        ),
        profiler=profiler,
    )
    preds = predtop.run_all_phases(dp=args.dp, mp=args.mp)
    print(f"{'stage':>12s} {'predicted':>12s} {'profiled':>12s} {'err':>8s}")
    errs = []
    for (s, e), pred in sorted(preds.items()):
        true = profiler.profile_stage(s, e, mesh, args.dp, args.mp).latency
        err = abs(pred - true) / true
        errs.append(err)
        print(f"  [{s:3d},{e:3d}) {pred * 1e3:10.2f}ms {true * 1e3:10.2f}ms "
              f"{err * 100:7.2f}%")
    print(f"\nMRE {100 * sum(errs) / len(errs):.2f}%  |  costs: "
          f"profiling {predtop.costs.profiling_seconds:.0f}s (simulated), "
          f"training {predtop.costs.training_seconds:.0f}s, "
          f"inference {predtop.costs.inference_seconds:.2f}s")
    if args.save:
        path = save_predictor(predtop.predictor, args.save)
        print(f"predictor saved to {path}")
    return 0


def cmd_search(args) -> int:
    import dataclasses
    import json

    from .core.search import APPROACHES, PlanSearcher
    from .predictors.trust import TrustConfig

    model, clustering, profiler = _build(args)
    platform = get_platform(args.platform)
    trust = TrustConfig.from_env()
    if args.trust:
        trust = dataclasses.replace(trust, enabled=True)
    if args.trust_budget >= 0:
        trust = dataclasses.replace(trust, budget=args.trust_budget)
    searcher = PlanSearcher(
        model, clustering, platform.cluster(),
        n_microbatches=args.microbatches,
        profiler=profiler,
        sample_fraction=args.sample_fraction,
        train_config=TrainConfig(epochs=args.epochs, patience=args.epochs,
                                 batch_size=8, lr=2e-3, seed=args.seed),
        seed=args.seed,
        trust=trust,
        schedule=args.schedule,
    )
    approaches = APPROACHES if args.approach == "all" else (args.approach,)
    out = {}
    for approach in approaches:
        r = searcher.run(approach)
        out[approach] = {
            "latency_ms": r.true_iteration_latency * 1e3,
            "cost_s": r.optimization_cost,
            "stages": r.plan.n_stages,
            "table_entries": r.n_table_entries,
            "degradations": r.degradations,
            "trust": r.trust.as_dict() if r.trust is not None else None,
        }
        if args.json:
            continue
        print(f"== {approach}")
        print(r.plan.describe())
        print(f"   optimization cost {r.optimization_cost:9.1f} s, "
              f"true latency {r.true_iteration_latency * 1e3:8.1f} ms")
        if r.trust is not None and (r.trust.total or r.trust.retrained
                                    or r.trust.degraded):
            print(f"   {r.trust.summary()}")
        for note in r.degradations:
            print(f"   degraded: {note}")
        print()
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    import dataclasses

    from .experiments.cache import global_cache
    from .predictors.trust import TrustConfig
    from .serving import (PredictorRuntime, ReproRouter, ReproServer,
                          RouterConfig, RuntimeConfig, ServerConfig,
                          TenancyConfig)

    if args.router:
        router = ReproRouter(
            [(args.host, port) for port in args.router],
            RouterConfig(host=args.host, port=args.port),
            journal_root=global_cache().root)
        router.start()
        host, port = router.address
        print(f"routing on {host}:{port} across "
              f"{len(args.router)} replica(s) "
              f"({', '.join(f'{args.host}:{p}' for p in args.router)}); "
              f"SIGTERM/SIGINT drains gracefully")
        return router.serve_forever()

    tenancy = TenancyConfig.load(args.tenants) if args.tenants else None
    trust = dataclasses.replace(TrustConfig.from_env(), enabled=True,
                                ensemble_size=max(1, args.ensemble))
    cfg = RuntimeConfig(
        family=args.family, layers=args.layers, platform=args.platform,
        mesh=args.mesh, units=args.units, seed=args.seed,
        predictor=args.predictor, sample_fraction=args.sample_fraction,
        epochs=args.epochs, checkpoints=tuple(args.checkpoint),
        trust=trust, schedule=args.schedule)
    source = (f"checkpoints {', '.join(cfg.checkpoints)}"
              if cfg.checkpoints else
              f"startup fit ({cfg.epochs} epochs, K={trust.ensemble_size})")
    print(f"loading predictor runtime: {cfg.family}/{cfg.layers} layers on "
          f"{cfg.platform} mesh{cfg.mesh}, {source} ...")
    runtime = PredictorRuntime.build(cfg)
    server = ReproServer(
        runtime,
        ServerConfig(host=args.host, port=args.port, workers=args.workers,
                     max_queue=args.max_queue,
                     default_deadline_ms=args.deadline_ms,
                     reload_poll_s=args.reload_poll,
                     tenancy=tenancy),
        journal_root=global_cache().root)
    server.start()
    host, port = server.address
    print(f"serving on {host}:{port} "
          f"({'model+analytical' if runtime.ensemble else 'ANALYTICAL ONLY'}"
          f"); SIGTERM/SIGINT drains gracefully")
    return server.serve_forever()


def cmd_bench(args) -> int:
    from pathlib import Path

    from .experiments import run_use_case
    from .experiments.engine import n_jobs, run_grid_report
    from .experiments.export import export_mre_grid, export_use_case
    from .experiments.manifest import read_events, summarize
    from .experiments.profiles import PROFILES, active_profile
    from .experiments.reporting import render_mre_table, render_use_case
    from .predictors.base import PREDICTOR_KINDS

    if args.target == "report":
        from .experiments.cache import global_cache

        cache = global_cache()
        if cache.root is None:
            print("manifest: cache disabled (REPRO_CACHE=off), no journal")
            return EXIT_ERROR
        print(summarize(read_events(cache.root)))
        quarantined = cache.quarantined()
        if quarantined:
            print("quarantined shards:")
            for path in quarantined:
                print(f"  {path}")
        return EXIT_OK

    if args.target == "serve":
        import json

        from .experiments.cache import global_cache
        from .perf import run_noisy_neighbor_bench, run_serve_bench

        journal_root = global_cache().root
        address = (args.host, args.port) if args.port else None
        result = run_serve_bench(quick=args.quick, address=address,
                                 clients=args.clients or None,
                                 requests_per_client=args.requests or None,
                                 router_replicas=args.replicas,
                                 journal_root=journal_root)
        if address is None and not args.replicas and not args.no_noisy:
            result["noisy_neighbor"] = run_noisy_neighbor_bench(
                quick=args.quick, journal_root=journal_root)
        out = Path(args.output or Path(__file__).resolve().parents[2]
                   ) / "BENCH_serve.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        t = result["totals"]
        print(f"serve bench: {result['answered']}/{result['requests_sent']} "
              f"answered at {result['throughput_rps']:.1f} rps "
              f"(ok {t['ok']}, model-served {t['ok_model']}, degraded "
              f"{t['degraded']}, shed-final {t['shed_final']}, unanswered "
              f"{t['unanswered']}; chaos: {t['conn_drops']} conn drops, "
              f"{t['slow_loris']} slow-loris, {t['garbage_sent']} garbage) "
              f"[saved to {out}]")
        for tr in result["breaker_transitions"]:
            print(f"  breaker {tr['route']}: {tr['from']} -> {tr['to']} "
                  f"({tr['reason']})")
        if "router" in result:
            r = result["router"]
            print(f"  router: {r['replicas']} replicas, "
                  f"{r['failovers']} failover(s), chaos events: "
                  f"{[e['event'] for e in r['chaos']]}")
        noisy_ok = True
        if "noisy_neighbor" in result:
            n = result["noisy_neighbor"]
            noisy_ok = bool(n["isolation_holds"])
            print(f"  noisy neighbor: victim p99 "
                  f"{n['solo']['victim_p99_ms']} ms solo, "
                  f"{n['isolated']['victim_p99_ms']} ms isolated "
                  f"(x{n['isolated_p99_ratio']}), "
                  f"{n['unisolated']['victim_p99_ms']} ms unisolated "
                  f"(x{n['unisolated_p99_ratio']}) — isolation "
                  f"{'holds' if noisy_ok else 'VIOLATED'}")
        if not result["zero_unanswered"] or t["ok"] == 0 or not noisy_ok:
            return EXIT_PARTIAL
        if t["ok_model"] == 0 and t["degraded"] > 0:
            return EXIT_DEGRADED
        return EXIT_OK

    profile = PROFILES[args.profile] if args.profile else active_profile()

    if args.target == "micro":
        import json

        from .perf import run_intraop_microbench

        result = run_intraop_microbench(profile, quick=args.quick)
        out = Path(args.output or Path(__file__).resolve().parents[2]
                   ) / "BENCH_intraop.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        ok = result["differential"]["identical"]
        print(f"intra-op DP micro-bench: {result['n_cases']} cases, "
              f"speedup {result['overall']['speedup']:.1f}x, "
              f"differential {'identical' if ok else 'MISMATCH'} "
              f"[saved to {out}]")
        return EXIT_OK if ok else EXIT_ERROR

    if args.target == "train":
        import json

        from .experiments.engine import n_jobs as _n_jobs
        from .perf import run_train_microbench

        out = Path(args.output or Path(__file__).resolve().parents[2]
                   ) / "BENCH_train.json"
        run_jobs = args.jobs or _n_jobs()
        if out.exists() and not args.force:
            try:
                prev_jobs = int(json.loads(out.read_text()).get("jobs", 1))
            except (ValueError, OSError):
                prev_jobs = 1
            if prev_jobs > run_jobs:
                print(f"refusing to overwrite {out}: it records a "
                      f"jobs={prev_jobs} run and this one is jobs={run_jobs} "
                      f"(the multi-core numbers would silently regress); "
                      f"pass --force to overwrite anyway")
                return EXIT_ERROR

        result = run_train_microbench(profile, quick=args.quick,
                                      jobs=run_jobs)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        ok = result["differential"]["identical"]
        per_site = "  ".join(
            f"{name} {site['speedup']:.2f}x"
            for name, site in result["sites"].items())
        print(f"predictor pipeline bench: {per_site}")
        print(f"headline (search_predtop) "
              f"{result['overall']['headline_search_speedup']:.2f}x, "
              f"differential {'identical' if ok else 'MISMATCH'} "
              f"[saved to {out}]")
        return EXIT_OK if ok else EXIT_ERROR

    jobs = args.jobs if args.jobs else n_jobs()
    if args.family == "both":
        families: tuple[str, ...] = ("gpt", "moe")
    elif args.family == "all":
        families = ("gpt", "moe", "bert", "vit")
    else:
        families = (args.family,)
    out_dir = Path(args.output or
                   Path(__file__).resolve().parents[2] / "results") / profile.name
    out_dir.mkdir(parents=True, exist_ok=True)

    if args.target == "schedules":
        from .experiments.export import export_schedule_grid
        from .experiments.reporting import render_schedule_grid
        from .experiments.schedule_grid import run_schedule_grid
        from .runtime.schedules import schedule_names

        if args.quick:
            families = families[:1]
        schedules = (schedule_names() if args.schedule == "all"
                     else (args.schedule,))
        report = run_schedule_grid(
            families, profile, schedules, jobs=jobs,
            timeout=args.timeout or None,
            retries=args.retries if args.retries >= 0 else None)
        for family in families:
            cells = [c for (fam, _), c in report.cells.items()
                     if fam == family]
            stem = f"schedule_grid_{family}"
            text = render_schedule_grid(cells, family, profile.name)
            export_schedule_grid(cells, out_dir / f"{stem}.csv")
            (out_dir / f"{stem}.txt").write_text(text + "\n")
            print(f"{text}\n[{stem}: profile={profile.name} jobs={jobs}, "
                  f"saved under {out_dir}]\n")
        if report.failures:
            print(f"!! {len(report.failures)}/{report.n_cells} schedule "
                  f"cells failed after retries ({report.attempts} attempts, "
                  f"mode={report.mode}); see `repro bench report`")
        return EXIT_PARTIAL if report.failures else EXIT_OK

    tables = {"table5": "platform1", "table6": "platform2"}
    targets = tables if args.target == "tables" else {args.target: tables.get(args.target)}
    failed_cells = 0

    for target, platform in targets.items():
        for family in families:
            if target == "usecase":
                result = run_use_case(family, profile, jobs=jobs)
                text = render_use_case(result)
                data = {a: {"cost": r.optimization_cost,
                            "latency": r.true_iteration_latency,
                            "stages": r.plan.n_stages}
                        for a, r in result.results.items()}
                stem = f"fig10_{family}"
                export_use_case(data, out_dir / f"{stem}.csv")
            else:
                report = run_grid_report(
                    platform, family, profile, PREDICTOR_KINDS,
                    profile.fractions, jobs=jobs,
                    timeout=args.timeout or None,
                    retries=args.retries if args.retries >= 0 else None)
                grid = report.results
                text = render_mre_table(grid, platform, family,
                                        profile.fractions)
                stem = f"{target}_{family}"
                export_mre_grid(grid, out_dir / f"{stem}.csv")
                if report.failures:
                    failed_cells += len(report.failures)
                    text += (f"\n!! {len(report.failures)}/{report.cells} "
                             f"cells failed after retries "
                             f"({report.attempts} attempts, mode="
                             f"{report.mode}); see `repro bench report`")
                if report.retrained or report.diverged:
                    text += (f"\n!! divergence guard: {report.retrained} "
                             f"cell(s) retrained with a fresh seed, "
                             f"{report.diverged} still diverged")
            (out_dir / f"{stem}.txt").write_text(text + "\n")
            print(f"{text}\n[{stem}: profile={profile.name} "
                  f"jobs={jobs}, saved under {out_dir}]\n")
    return EXIT_PARTIAL if failed_cells else EXIT_OK


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PredTOP reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list platforms, benchmarks, profiles")

    p = sub.add_parser("profile", help="simulate one stage measurement")
    _add_model_args(p)
    p.add_argument("--mesh", type=int, default=2, choices=sorted(MESH_CONFIGS))
    p.add_argument("--dp", type=int, default=2)
    p.add_argument("--mp", type=int, default=1)
    p.add_argument("--unit-start", type=int, default=0)
    p.add_argument("--unit-end", type=int, default=1)
    p.add_argument("--microbatch", type=int, default=0)

    p = sub.add_parser("predict", help="train a predictor, predict all stages")
    _add_model_args(p)
    p.add_argument("--mesh", type=int, default=2, choices=sorted(MESH_CONFIGS))
    p.add_argument("--dp", type=int, default=2)
    p.add_argument("--mp", type=int, default=1)
    p.add_argument("--predictor", default="dag_transformer",
                   choices=("dag_transformer", "gcn", "gat"))
    p.add_argument("--sample-fraction", type=float, default=0.6)
    p.add_argument("--epochs", type=int, default=60)
    p.add_argument("--save", default="", help="save trained predictor (.npz)")
    p.add_argument("--checkpoint", default="",
                   help="persist training state here every epoch (.npz)")
    p.add_argument("--resume", action="store_true",
                   help="resume training from --checkpoint if present")

    p = sub.add_parser("search", help="plan-search use case (Fig 10)")
    _add_model_args(p)
    p.add_argument("--approach", default="all",
                   choices=("all", "full", "partial",
                            "predtop-dag_transformer", "predtop-gcn",
                            "predtop-gat"))
    p.add_argument("--microbatches", type=int, default=8)
    p.add_argument("--sample-fraction", type=float, default=0.5)
    p.add_argument("--epochs", type=int, default=40)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable results instead of plan text")
    p.add_argument("--trust", action="store_true",
                   help="enable the gray-box trust layer (ensemble "
                        "uncertainty, OOD + physical-bounds guards) even "
                        "without REPRO_TRUST=1")
    p.add_argument("--trust-budget", type=float, default=-1.0,
                   help="simulated profiling seconds the escalation policy "
                        "may spend re-profiling suspect predictions "
                        "(-1 = REPRO_TRUST_BUDGET / 0)")
    p.add_argument("--schedule", default="1f1b",
                   choices=schedule_names(),
                   help="pipeline schedule for the DP objective and plan "
                        "scoring (closed form + event simulation)")

    p = sub.add_parser("serve", help="resilient serving daemon (JSON lines "
                                     "over TCP)")
    _add_model_args(p)
    p.add_argument("--mesh", type=int, default=2, choices=sorted(MESH_CONFIGS))
    p.add_argument("--predictor", default="dag_transformer",
                   choices=("dag_transformer", "gcn", "gat"))
    p.add_argument("--checkpoint", action="append", default=[],
                   help="saved predictor (.npz) to serve; repeat for an "
                        "ensemble (default: fit at startup)")
    p.add_argument("--ensemble", type=int, default=1,
                   help="members to fit at startup when no --checkpoint")
    p.add_argument("--sample-fraction", type=float, default=0.5)
    p.add_argument("--epochs", type=int, default=8,
                   help="startup-fit epochs (ignored with --checkpoint)")
    p.add_argument("--schedule", default="1f1b", choices=schedule_names())
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7713,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2,
                   help="executor threads for whatif/search")
    p.add_argument("--max-queue", type=int, default=32,
                   help="bounded executor queue (admission control)")
    p.add_argument("--deadline-ms", type=float, default=30_000.0,
                   help="default per-request deadline")
    p.add_argument("--reload-poll", type=float, default=0.0,
                   help="poll --checkpoint files every N seconds and "
                        "hot-reload in place (0 = off)")
    p.add_argument("--tenants", default="",
                   help="tenants.json with per-tenant budgets (rate, "
                        "burst, max_inflight, max_queued, weight, "
                        "op_costs); default: REPRO_TENANT_* env defaults, "
                        "unlimited when unset")
    p.add_argument("--router", type=int, nargs="+", default=[],
                   metavar="PORT",
                   help="run a consistent-hash failover router over the "
                        "daemon replicas at these ports on --host instead "
                        "of a daemon (no model is loaded)")

    p = sub.add_parser(
        "bench", help="regenerate experiment grids via the fault-tolerant "
                      "engine")
    p.add_argument("target",
                   choices=("table5", "table6", "tables", "usecase",
                            "schedules", "micro", "train", "serve",
                            "report"),
                   help="which artifact to (re)compute (schedules: the "
                        "validated simulator-vs-closed-form grid -> "
                        "schedule_grid_<family>.csv; micro: the intra-op "
                        "DP micro-benchmark -> BENCH_intraop.json; train: "
                        "the predictor-pipeline benchmark -> "
                        "BENCH_train.json; serve: the daemon load test -> "
                        "BENCH_serve.json; report: summarize the "
                        "run-manifest journal)")
    p.add_argument("--quick", action="store_true",
                   help="micro/train/serve: reduced case set / repeats / "
                        "fleet; schedules: first family only (CI smoke)")
    p.add_argument("--host", default="127.0.0.1",
                   help="serve target: daemon host (with --port)")
    p.add_argument("--port", type=int, default=0,
                   help="serve target: an already-running daemon to hit "
                        "(0 = boot one in-process)")
    p.add_argument("--clients", type=int, default=0,
                   help="serve target: synthetic client count "
                        "(0 = mode default)")
    p.add_argument("--requests", type=int, default=0,
                   help="serve target: requests per client "
                        "(0 = mode default)")
    p.add_argument("--replicas", type=int, default=0,
                   help="serve target: boot N replicas behind a router "
                        "and bench through it (0 = single daemon); a "
                        "replica_down fault rule arms the chaos "
                        "controller")
    p.add_argument("--no-noisy", action="store_true",
                   help="serve target: skip the noisy-neighbor isolation "
                        "scenario (runs by default for in-process single-"
                        "daemon benches)")
    p.add_argument("--family",
                   choices=("gpt", "moe", "bert", "vit", "both", "all"),
                   default="both",
                   help="benchmark families (both = gpt+moe, all adds "
                        "bert+vit)")
    p.add_argument("--schedule", default="all",
                   choices=("all",) + schedule_names(),
                   help="schedules target: which registered pipeline "
                        "schedule(s) to validate")
    p.add_argument("--jobs", type=int, default=0,
                   help="engine workers (0 = REPRO_JOBS / cpu count)")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-cell wall-clock budget in seconds "
                        "(0 = REPRO_CELL_TIMEOUT / unlimited)")
    p.add_argument("--retries", type=int, default=-1,
                   help="retries per failed cell "
                        "(-1 = REPRO_CELL_RETRIES / 2)")
    p.add_argument("--profile", choices=("smoke", "fast", "paper"),
                   default="", help="experiment profile (default: "
                   "REPRO_PROFILE or fast)")
    p.add_argument("--output", default="",
                   help="results directory (default: <repo>/results)")
    p.add_argument("--force", action="store_true",
                   help="overwrite BENCH_train.json even when the "
                        "existing file records a higher-jobs run")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return {"info": cmd_info, "profile": cmd_profile,
            "predict": cmd_predict, "search": cmd_search,
            "serve": cmd_serve, "bench": cmd_bench}[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
