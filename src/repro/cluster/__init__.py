"""Cluster substrate: GPUs, interconnects, meshes, collective cost models."""

from .collectives import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    broadcast_time,
    p2p_time,
    reducescatter_time,
)
from .gpu import A40, GPUS, RTX_A5500, GPUSpec
from .mesh import (DeviceMesh, LogicalMesh, enumerate_submeshes,
                   logical_views, topology_enabled)
from .network import (IB100, LINKS, NVLINK, PCIE4, TEN_GBE, LinkHop,
                      LinkPath, LinkSpec, single_link_path)
from .platforms import (
    MESH_CONFIGS,
    PARALLEL_CONFIGS,
    PLATFORM1,
    PLATFORM2,
    PLATFORMS,
    Platform,
    get_platform,
)

__all__ = [
    "GPUSpec", "A40", "RTX_A5500", "GPUS",
    "LinkSpec", "LinkHop", "LinkPath", "single_link_path",
    "NVLINK", "PCIE4", "TEN_GBE", "IB100", "LINKS",
    "DeviceMesh", "LogicalMesh", "enumerate_submeshes", "logical_views",
    "topology_enabled",
    "allreduce_time", "allgather_time", "reducescatter_time",
    "alltoall_time", "p2p_time", "broadcast_time",
    "Platform", "PLATFORM1", "PLATFORM2", "PLATFORMS", "get_platform",
    "MESH_CONFIGS", "PARALLEL_CONFIGS",
]
