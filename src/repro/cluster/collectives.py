"""α-β cost models for the collectives tensor parallelism emits.

All models assume ring algorithms (what NCCL uses at these scales) over
``p`` ranks connected by a given link class:

* all-reduce:      ``2·(p-1)/p · n/β  +  2·(p-1)·α``
* all-gather:      ``(p-1)/p · n/β  +  (p-1)·α``   (n = full result bytes)
* reduce-scatter:  same as all-gather
* all-to-all:      ``(p-1)/p · n/β  +  (p-1)·α``
* broadcast / p2p: ``α + n/β``

Costs are in seconds; ``p == 1`` is free.  These forms give the right
asymptotics (bandwidth-bound for large n, latency-bound for small n) and,
more importantly for the paper's experiments, the right *ordering* between
NVLink-only and cross-node configurations.

Every model accepts either a flat :class:`~.network.LinkSpec` or a
multi-hop :class:`~.network.LinkPath` (topology-aware pricing,
``REPRO_TOPO=on``): a path exposes the same ``alpha`` / ``beta`` /
``transfer_time`` surface, with α summed over its segments and β taken
from the bottleneck segment after dividing out contention.
"""

from __future__ import annotations

import math
from typing import Union

from .network import LinkPath, LinkSpec

Link = Union[LinkSpec, LinkPath]


def _check(nbytes: float, p: int) -> None:
    if nbytes < 0:
        raise ValueError(f"negative transfer size {nbytes}")
    if p < 1:
        raise ValueError(f"bad group size {p}")


def allreduce_time(link: Link, nbytes: float, p: int) -> float:
    """Ring all-reduce of an ``nbytes`` tensor across ``p`` ranks."""
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    steps = 2 * (p - 1)
    return steps * link.alpha + steps / p * (nbytes / link.beta)


def allgather_time(link: Link, nbytes: float, p: int) -> float:
    """Ring all-gather; ``nbytes`` is the size of the *gathered* result."""
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    steps = p - 1
    return steps * link.alpha + steps / p * (nbytes / link.beta)


def reducescatter_time(link: Link, nbytes: float, p: int) -> float:
    """Ring reduce-scatter; ``nbytes`` is the size of the *input* tensor."""
    return allgather_time(link, nbytes, p)


def alltoall_time(link: Link, nbytes: float, p: int) -> float:
    """All-to-all of ``nbytes`` total payload per rank (MoE dispatch)."""
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    steps = p - 1
    return steps * link.alpha + steps / p * (nbytes / link.beta)


def p2p_time(link: Link, nbytes: float) -> float:
    """Point-to-point send of ``nbytes`` (pipeline stage boundary)."""
    if nbytes <= 0:
        return 0.0
    return link.transfer_time(nbytes)


def broadcast_time(link: Link, nbytes: float, p: int) -> float:
    """Tree broadcast to ``p`` ranks."""
    _check(nbytes, p)
    if p == 1 or nbytes == 0:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (link.alpha + nbytes / link.beta)
