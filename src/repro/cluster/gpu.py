"""GPU device model.

Analytical stand-in for the two GPU SKUs in §VII-A.  Peak numbers follow
the vendor datasheets; the effective-throughput knobs (efficiency curves,
launch overhead) are calibrated so simulated stage latencies exhibit the
same qualitative regimes as profiled kernels: small ops are launch-bound,
skinny matmuls lose tile efficiency, elementwise ops are bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static per-device capabilities."""

    name: str
    #: peak dense FP32 throughput via the tensor-core TF32 path, FLOP/s
    peak_flops: float
    #: HBM/GDDR bandwidth, bytes/s
    mem_bandwidth: float
    #: device memory, bytes
    mem_capacity: float
    #: fixed cost per kernel launch, seconds
    launch_overhead: float
    #: matmul tile edge used for quantization-efficiency modeling
    tile: int = 128

    def matmul_efficiency(self, m: int, n: int, k: int) -> float:
        """Fraction of peak achieved by an (m, k) x (k, n) GEMM.

        Two effects dominate profiled GEMM behaviour and are modeled here:

        * **tile quantization** — each output dimension is processed in
          ``tile``-wide blocks; partial blocks waste lanes;
        * **low occupancy** — small products cannot fill the SMs, scaling
          roughly with the ratio of the work to a saturation threshold.
        """
        quant = 1.0
        for d in (m, n):
            blocks = -(-d // self.tile)
            quant *= d / (blocks * self.tile)
        # K-dim pipeline efficiency: short accumulations pay setup cost.
        quant *= k / (k + 64.0)
        work = 2.0 * m * n * k
        saturation = work / (work + 2.0e9)  # ~half peak at 2 GFLOP of work
        return max(0.02, 0.92 * quant * (0.25 + 0.75 * saturation))

    def elementwise_bandwidth(self, nbytes: float) -> float:
        """Achieved bytes/s for a streaming kernel touching ``nbytes``."""
        frac = nbytes / (nbytes + 8.0e6)  # small kernels underutilize DRAM
        return self.mem_bandwidth * max(0.08, 0.9 * frac)


#: Nvidia A40 (Platform 1): 48 GB GDDR6, 696 GB/s, ~37.4 TFLOP/s TF32.
A40 = GPUSpec(
    name="A40",
    peak_flops=37.4e12,
    mem_bandwidth=696e9,
    mem_capacity=48 * 1024**3,
    launch_overhead=6.0e-6,
)

#: Nvidia RTX A5500 (Platform 2): 24 GB GDDR6, 768 GB/s, ~34.1 TFLOP/s.
RTX_A5500 = GPUSpec(
    name="RTX_A5500",
    peak_flops=34.1e12,
    mem_bandwidth=768e9,
    mem_capacity=24 * 1024**3,
    launch_overhead=6.5e-6,
)

GPUS = {g.name: g for g in (A40, RTX_A5500)}
