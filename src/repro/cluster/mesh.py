"""Device meshes and logical views.

A :class:`DeviceMesh` is a homogeneous ``nodes × gpus_per_node`` slice of
the cluster (Table II).  Intra-stage parallelism sees it through a
:class:`LogicalMesh` — a 2-D ``(dp, mp)`` arrangement of the same devices
(Table III) whose axes carry the physical link class they stride across.
Following the paper we only consider homogeneous meshes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gpu import GPUSpec
from .network import LinkSpec


@dataclass(frozen=True)
class DeviceMesh:
    """A physical mesh: ``n_nodes`` hosts with ``gpus_per_node`` GPUs each."""

    n_nodes: int
    gpus_per_node: int
    gpu: GPUSpec
    intra_link: LinkSpec
    inter_link: LinkSpec

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("mesh must contain at least one device")

    @property
    def num_devices(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_nodes, self.gpus_per_node)

    def key(self) -> str:
        """Stable identifier used to key per-mesh predictors and noise."""
        return (f"{self.n_nodes}x{self.gpus_per_node}-{self.gpu.name}"
                f"-{self.intra_link.name}-{self.inter_link.name}")

    def logical(self, dp: int, mp: int) -> "LogicalMesh":
        """View the mesh as a ``(dp, mp)`` logical arrangement.

        The MP axis is packed onto the fastest links first (devices within a
        node), matching how Alpa maps tensor parallelism; the DP axis takes
        whatever stride remains.  An axis that stays inside one node uses
        ``intra_link``; an axis crossing node boundaries uses ``inter_link``.
        """
        if dp * mp != self.num_devices:
            raise ValueError(
                f"logical shape {dp}x{mp} != {self.num_devices} devices")
        mp_crosses_nodes = mp > self.gpus_per_node
        if mp_crosses_nodes:
            dp_link = self.inter_link  # dp (if any) also strides nodes
            mp_link = self.inter_link
        else:
            mp_link = self.intra_link
            dp_within = (mp * dp) <= self.gpus_per_node
            dp_link = self.intra_link if dp_within else self.inter_link
        return LogicalMesh(self, dp, mp, dp_link, mp_link)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Mesh({self.n_nodes}x{self.gpus_per_node} {self.gpu.name})"


@dataclass(frozen=True)
class LogicalMesh:
    """A 2-D logical arrangement ``(dp, mp)`` of a physical mesh's devices."""

    mesh: DeviceMesh
    dp: int
    mp: int
    dp_link: LinkSpec
    mp_link: LinkSpec

    @property
    def num_devices(self) -> int:
        return self.dp * self.mp

    @property
    def gpu(self) -> GPUSpec:
        return self.mesh.gpu

    def axis_size(self, axis: str) -> int:
        return self.dp if axis == "dp" else self.mp

    def axis_link(self, axis: str) -> LinkSpec:
        return self.dp_link if axis == "dp" else self.mp_link

    def key(self) -> str:
        return f"{self.mesh.key()}-dp{self.dp}mp{self.mp}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"LogicalMesh(dp={self.dp}, mp={self.mp} on {self.mesh})"


def enumerate_submeshes(cluster: DeviceMesh) -> list[DeviceMesh]:
    """All homogeneous submeshes Alpa's inter-op pass may assign to a stage.

    Following Alpa, a submesh either occupies a fraction ``2^-k`` of one
    node's GPUs or a whole number of nodes.  Results are sorted by device
    count so DP tables index them deterministically.
    """
    subs: list[DeviceMesh] = []
    g = 1
    while g <= cluster.gpus_per_node:
        subs.append(DeviceMesh(1, g, cluster.gpu, cluster.intra_link,
                               cluster.inter_link))
        g *= 2
    n = 2
    while n <= cluster.n_nodes:
        subs.append(DeviceMesh(n, cluster.gpus_per_node, cluster.gpu,
                               cluster.intra_link, cluster.inter_link))
        n *= 2
    return sorted(subs, key=lambda m: (m.num_devices, m.n_nodes))


def logical_views(mesh: DeviceMesh) -> list[LogicalMesh]:
    """All power-of-two ``(dp, mp)`` factorizations of a mesh (Table III)."""
    views = []
    d = 1
    while d <= mesh.num_devices:
        if mesh.num_devices % d == 0:
            views.append(mesh.logical(mesh.num_devices // d, d))
        d *= 2
    return views
