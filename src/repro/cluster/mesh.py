"""Device meshes and logical views.

A :class:`DeviceMesh` is a homogeneous ``nodes × gpus_per_node`` slice of
the cluster (Table II).  Intra-stage parallelism sees it through a
:class:`LogicalMesh` — a 2-D ``(dp, mp)`` arrangement of the same devices
(Table III) whose axes carry the physical link class they stride across.
Following the paper we only consider homogeneous meshes.

With topology-aware pricing enabled (``REPRO_TOPO=on``), each logical
axis additionally carries a :class:`~.network.LinkPath` describing the
per-hop route its collectives traverse — NVLink inside a node, the PCIe
host bridge out to the NIC, and the cluster fabric between nodes, with
the NIC segment divided among the parallel rings that share it.  The
collectives then price against the bottleneck segment instead of one
flat α-β link, so multi-node platforms produce genuinely different
plans.  With the gate off (the default) the paths are absent and every
cost is bit-identical to the flat model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .gpu import GPUSpec
from .network import PCIE4, LinkHop, LinkPath, LinkSpec


def topology_enabled() -> bool:
    """True when ``REPRO_TOPO`` opts into topology-aware pricing."""
    return os.environ.get("REPRO_TOPO", "off").lower() in ("on", "1", "true")


@dataclass(frozen=True)
class DeviceMesh:
    """A physical mesh: ``n_nodes`` hosts with ``gpus_per_node`` GPUs each."""

    n_nodes: int
    gpus_per_node: int
    gpu: GPUSpec
    intra_link: LinkSpec
    inter_link: LinkSpec
    #: host bridge between a GPU and the NIC (traversed by every
    #: cross-node hop under topology-aware pricing)
    host_link: LinkSpec = PCIE4

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("mesh must contain at least one device")

    @property
    def num_devices(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_nodes, self.gpus_per_node)

    def key(self) -> str:
        """Stable identifier used to key per-mesh predictors and noise."""
        base = (f"{self.n_nodes}x{self.gpus_per_node}-{self.gpu.name}"
                f"-{self.intra_link.name}-{self.inter_link.name}")
        if self.host_link is not PCIE4:  # non-default host bridge
            base += f"-host:{self.host_link.name}"
        return base

    # ---------------------------------------------------------- logical views
    def _axis_members_per_node(self, size: int, inner: int) -> int:
        """Group members co-located on one node, for an axis of ``size``
        devices striding ``inner`` (the product of faster axes).

        Axes are packed fastest-first: the MP axis strides 1, the DP axis
        strides ``mp``.  An axis whose stride already exceeds the node
        width places one member per node.
        """
        if inner >= self.gpus_per_node:
            return 1
        return max(1, min(size, self.gpus_per_node // inner))

    def _axis_path(self, size: int, inner: int,
                   within_node: bool) -> LinkPath:
        """Per-hop route of one logical axis (topology-aware pricing)."""
        if within_node or size <= 1:
            return LinkPath(self.intra_link.name,
                            (LinkHop(self.intra_link),))
        members = self._axis_members_per_node(size, inner)
        hops = []
        if members > 1:  # intra-node legs of the ring ride NVLink/PCIe
            hops.append(LinkHop(self.intra_link))
        hops.append(LinkHop(self.host_link))
        # every parallel ring of this axis with members on a node funnels
        # through that node's single NIC; divide its bandwidth among them
        sharing = max(1, self.gpus_per_node // members)
        hops.append(LinkHop(self.inter_link, sharing))
        return LinkPath(f"x-node[{size}]", tuple(hops))

    def logical(self, dp: int, mp: int) -> "LogicalMesh":
        """View the mesh as a ``(dp, mp)`` logical arrangement.

        The MP axis is packed onto the fastest links first (devices within
        a node), matching how Alpa maps tensor parallelism; the DP axis
        takes whatever stride remains.  An axis is classified by the
        strides of its groups, not by a device-count comparison: the MP
        axis stays inside a node only when ``mp`` devices fit *and*
        divide the node width (a non-dividing group straddles a node
        boundary and must be priced on the slower fabric); the DP axis —
        packed after MP, i.e. striding ``mp`` — stays inside only when a
        whole ``dp × mp`` tile fits and divides the node.  The seed
        expression ``(mp * dp) <= gpus_per_node`` happened to agree on
        power-of-two meshes only because ``dp·mp == num_devices``; stated
        as stride logic it also classifies dp groups that stride whole
        nodes (the ``mp == gpus_per_node`` multi-node case) and
        non-dividing factorizations correctly.
        """
        if dp * mp != self.num_devices:
            raise ValueError(
                f"logical shape {dp}x{mp} != {self.num_devices} devices")
        gpn = self.gpus_per_node
        mp_within = mp <= gpn and gpn % mp == 0
        dp_within = mp_within and dp * mp <= gpn and gpn % (dp * mp) == 0
        mp_link = self.intra_link if mp_within else self.inter_link
        dp_link = self.intra_link if dp_within else self.inter_link
        dp_path = mp_path = None
        if topology_enabled():
            mp_path = self._axis_path(mp, 1, mp_within)
            dp_path = self._axis_path(dp, mp, dp_within)
        return LogicalMesh(self, dp, mp, dp_link, mp_link, dp_path, mp_path)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Mesh({self.n_nodes}x{self.gpus_per_node} {self.gpu.name})"


@dataclass(frozen=True)
class LogicalMesh:
    """A 2-D logical arrangement ``(dp, mp)`` of a physical mesh's devices."""

    mesh: DeviceMesh
    dp: int
    mp: int
    dp_link: LinkSpec
    mp_link: LinkSpec
    #: per-hop routes (only set under ``REPRO_TOPO=on``); when present,
    #: :meth:`axis_link` returns the path and collectives price against
    #: its bottleneck segment
    dp_path: LinkPath | None = None
    mp_path: LinkPath | None = None

    @property
    def num_devices(self) -> int:
        return self.dp * self.mp

    @property
    def gpu(self) -> GPUSpec:
        return self.mesh.gpu

    @property
    def topo_aware(self) -> bool:
        """True when this view carries per-hop link paths."""
        return self.dp_path is not None or self.mp_path is not None

    def axis_size(self, axis: str) -> int:
        return self.dp if axis == "dp" else self.mp

    def axis_link(self, axis: str) -> LinkSpec | LinkPath:
        """The pricing surface of one axis: its flat link, or — under
        topology-aware search — its multi-hop path."""
        if axis == "dp":
            return self.dp_path if self.dp_path is not None else self.dp_link
        return self.mp_path if self.mp_path is not None else self.mp_link

    def axis_path(self, axis: str) -> LinkPath | None:
        return self.dp_path if axis == "dp" else self.mp_path

    def key(self) -> str:
        base = f"{self.mesh.key()}-dp{self.dp}mp{self.mp}"
        return base + "-topo" if self.topo_aware else base

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"LogicalMesh(dp={self.dp}, mp={self.mp} on {self.mesh})"


def enumerate_submeshes(cluster: DeviceMesh) -> list[DeviceMesh]:
    """All homogeneous submeshes Alpa's inter-op pass may assign to a stage.

    Following Alpa, a submesh either occupies a fraction ``2^-k`` of one
    node's GPUs or a whole number of nodes.  Results are sorted by device
    count so DP tables index them deterministically.
    """
    subs: list[DeviceMesh] = []
    g = 1
    while g <= cluster.gpus_per_node:
        subs.append(DeviceMesh(1, g, cluster.gpu, cluster.intra_link,
                               cluster.inter_link, cluster.host_link))
        g *= 2
    n = 2
    while n <= cluster.n_nodes:
        subs.append(DeviceMesh(n, cluster.gpus_per_node, cluster.gpu,
                               cluster.intra_link, cluster.inter_link,
                               cluster.host_link))
        n *= 2
    return sorted(subs, key=lambda m: (m.num_devices, m.n_nodes))


def logical_views(mesh: DeviceMesh) -> list[LogicalMesh]:
    """All power-of-two ``(dp, mp)`` factorizations of a mesh (Table III)."""
    views = []
    d = 1
    while d <= mesh.num_devices:
        if mesh.num_devices % d == 0:
            views.append(mesh.logical(mesh.num_devices // d, d))
        d *= 2
    return views
