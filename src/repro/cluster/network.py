"""Interconnect model.

Links are modeled with the classic α-β form: transferring ``n`` bytes
costs ``α + n / β`` seconds (latency plus serialization).  Intra-node GPU
pairs communicate over NVLink bridges (or PCIe where no bridge exists);
nodes communicate over the cluster fabric (10 GbE on Platform 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One point-to-point link class."""

    name: str
    #: per-message latency, seconds
    alpha: float
    #: achievable bandwidth per direction, bytes/s
    beta: float

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if nbytes <= 0:
            return 0.0
        return self.alpha + nbytes / self.beta


@dataclass(frozen=True)
class LinkHop:
    """One segment of a multi-hop route, with a contention divisor.

    ``sharing`` counts the parallel communication groups squeezing
    through this segment concurrently (e.g. the ``mp`` rings of a
    cross-node ``dp`` axis all share each node's single NIC); the
    segment's effective per-group bandwidth is ``beta / sharing``.
    """

    link: LinkSpec
    sharing: int = 1

    def __post_init__(self) -> None:
        if self.sharing < 1:
            raise ValueError(f"sharing must be >= 1, got {self.sharing}")

    @property
    def effective_beta(self) -> float:
        return self.link.beta / self.sharing


@dataclass(frozen=True)
class LinkPath:
    """A route through heterogeneous segments (TAPS-style pricing).

    A logical mesh axis that strides node boundaries does not see one
    uniform α-β link: a ring step traverses NVLink inside the node, the
    PCIe host bridge to the NIC, and the cluster fabric between nodes.
    The path prices a transfer like a :class:`LinkSpec` whose latency is
    the *sum* of the per-hop latencies and whose bandwidth is the
    *bottleneck* segment's effective (contention-divided) bandwidth — so
    the collectives in :mod:`.collectives` accept either interchangeably.
    """

    name: str
    hops: tuple[LinkHop, ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a LinkPath needs at least one hop")

    @property
    def alpha(self) -> float:
        """Per-message latency: every segment is traversed in series."""
        return sum(h.link.alpha for h in self.hops)

    @property
    def beta(self) -> float:
        """Bottleneck effective bandwidth across the segments."""
        return min(h.effective_beta for h in self.hops)

    @property
    def bottleneck(self) -> LinkHop:
        """The segment that bounds the path's bandwidth."""
        return min(self.hops, key=lambda h: h.effective_beta)

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` end-to-end across this path."""
        if nbytes <= 0:
            return 0.0
        return self.alpha + nbytes / self.beta

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "+".join(
            f"{h.link.name}" + (f"/{h.sharing}" if h.sharing > 1 else "")
            for h in self.hops)


def single_link_path(link: LinkSpec) -> LinkPath:
    """Degenerate one-hop path pricing identically to ``link``."""
    return LinkPath(link.name, (LinkHop(link),))


#: NVLink bridge on both platforms: 112.5 GB/s bidirectional => ~56 GB/s
#: usable per direction, microsecond-scale latency.
NVLINK = LinkSpec("nvlink", alpha=4.0e-6, beta=56.25e9)

#: PCIe 4.0 x16 fallback for GPUs in a node without a bridge.
PCIE4 = LinkSpec("pcie4", alpha=8.0e-6, beta=22.0e9)

#: 10 GbE between Platform-2 nodes (~1.1 GB/s effective after TCP overhead).
TEN_GBE = LinkSpec("10gbe", alpha=40.0e-6, beta=1.1e9)

#: 100 Gb InfiniBand — not on either paper platform, available for what-if
#: sweeps in the examples.
IB100 = LinkSpec("ib100", alpha=6.0e-6, beta=11.0e9)

LINKS = {l.name: l for l in (NVLINK, PCIE4, TEN_GBE, IB100)}
