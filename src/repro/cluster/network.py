"""Interconnect model.

Links are modeled with the classic α-β form: transferring ``n`` bytes
costs ``α + n / β`` seconds (latency plus serialization).  Intra-node GPU
pairs communicate over NVLink bridges (or PCIe where no bridge exists);
nodes communicate over the cluster fabric (10 GbE on Platform 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One point-to-point link class."""

    name: str
    #: per-message latency, seconds
    alpha: float
    #: achievable bandwidth per direction, bytes/s
    beta: float

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if nbytes <= 0:
            return 0.0
        return self.alpha + nbytes / self.beta


#: NVLink bridge on both platforms: 112.5 GB/s bidirectional => ~56 GB/s
#: usable per direction, microsecond-scale latency.
NVLINK = LinkSpec("nvlink", alpha=4.0e-6, beta=56.25e9)

#: PCIe 4.0 x16 fallback for GPUs in a node without a bridge.
PCIE4 = LinkSpec("pcie4", alpha=8.0e-6, beta=22.0e9)

#: 10 GbE between Platform-2 nodes (~1.1 GB/s effective after TCP overhead).
TEN_GBE = LinkSpec("10gbe", alpha=40.0e-6, beta=1.1e9)

#: 100 Gb InfiniBand — not on either paper platform, available for what-if
#: sweeps in the examples.
IB100 = LinkSpec("ib100", alpha=6.0e-6, beta=11.0e9)

LINKS = {l.name: l for l in (NVLINK, PCIE4, TEN_GBE, IB100)}
