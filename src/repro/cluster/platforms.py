"""The two experimental platforms of §VII-A and the Table-II meshes.

* **Platform 1** — Dell R750XA server, 2× Nvidia A40 joined by an NVLink
  bridge (112.5 GB/s bidirectional).  Supports meshes 1 (1×1) and 2 (1×2).
* **Platform 2** — 2 Dell Precision 5820 nodes, each with 2× RTX A5500
  (NVLink within a node), nodes connected by 10 GbE.  Supports meshes
  1 (1×1), 2 (1×2) and 3 (2×2).

Experiments are identified ``(m, p)``: mesh index ``m`` from Table II and
parallelism-configuration index ``p`` from Table III, resolved by
:func:`repro.experiments.scenarios.scenario_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gpu import A40, RTX_A5500, GPUSpec
from .mesh import DeviceMesh
from .network import NVLINK, PCIE4, TEN_GBE, LinkSpec


@dataclass(frozen=True)
class Platform:
    """One experimental testbed."""

    name: str
    gpu: GPUSpec
    n_nodes: int
    gpus_per_node: int
    intra_link: LinkSpec
    inter_link: LinkSpec

    def cluster(self) -> DeviceMesh:
        """The whole platform as one mesh."""
        return DeviceMesh(self.n_nodes, self.gpus_per_node, self.gpu,
                          self.intra_link, self.inter_link)

    def mesh(self, index: int) -> DeviceMesh:
        """Table-II mesh by 1-based index (1: 1×1, 2: 1×2, 3: 2×2)."""
        try:
            n_nodes, gpn = MESH_CONFIGS[index]
        except KeyError:
            raise ValueError(f"unknown mesh index {index}") from None
        if n_nodes > self.n_nodes or gpn > self.gpus_per_node:
            raise ValueError(f"mesh {index} does not fit on {self.name}")
        return DeviceMesh(n_nodes, gpn, self.gpu, self.intra_link,
                          self.inter_link)

    def mesh_indices(self) -> list[int]:
        """Table-II meshes that fit this platform."""
        return [i for i, (n, g) in MESH_CONFIGS.items()
                if n <= self.n_nodes and g <= self.gpus_per_node]


#: Table II: mesh index -> (No. of nodes, No. of GPUs per node)
MESH_CONFIGS: dict[int, tuple[int, int]] = {1: (1, 1), 2: (1, 2), 3: (2, 2)}

#: Table III: mesh index -> {conf index -> (dp, mp) logical shape}
PARALLEL_CONFIGS: dict[int, dict[int, tuple[int, int]]] = {
    1: {1: (1, 1)},                       # single GPU, no parallelism
    2: {1: (2, 1),                        # 2-way data parallel
        2: (1, 2)},                       # 2-way model parallel
    3: {1: (4, 1),                        # 4-way data parallel
        2: (2, 2),                        # 2-way data x 2-way model
        3: (1, 4)},                       # 4-way model parallel
}

PLATFORM1 = Platform("platform1", A40, n_nodes=1, gpus_per_node=2,
                     intra_link=NVLINK, inter_link=TEN_GBE)
PLATFORM2 = Platform("platform2", RTX_A5500, n_nodes=2, gpus_per_node=2,
                     intra_link=NVLINK, inter_link=TEN_GBE)

PLATFORMS = {p.name: p for p in (PLATFORM1, PLATFORM2)}


def get_platform(name: str) -> Platform:
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ValueError(f"unknown platform {name!r}; known: {sorted(PLATFORMS)}") from None
