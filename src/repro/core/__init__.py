"""PredTOP core: gray-box latency prediction + plan-search integration."""

from .predtop import PhaseCosts, PredTOP, PredTOPConfig
from .sampling import stratified_sample
from .search import APPROACHES, PlanSearcher, SearchResult

__all__ = [
    "PredTOP", "PredTOPConfig", "PhaseCosts",
    "stratified_sample",
    "PlanSearcher", "SearchResult", "APPROACHES",
]
