"""PredTOP: the gray-box latency prediction framework (§III & §VI).

Three phases, per the system workflow (Fig 7):

1. **Profiling** — sample stages of different sizes, run the intra-op
   optimizer on each, and profile them on each mesh
   (:meth:`PredTOP.profiling_phase`);
2. **Training** — build stage DAGs, train one DAG Transformer per
   (mesh, configuration) on the profiled latencies
   (:meth:`PredTOP.training_phase`);
3. **Prediction** — predict the optimal intra-stage latency of *all*
   candidate stages on the mesh (:meth:`PredTOP.prediction_phase`), then
   combine with the white-box pipeline model (Eqn 4) for end-to-end
   iteration latency (:meth:`PredTOP.predict_iteration_latency`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster.mesh import DeviceMesh, logical_views
from ..models.clustering import Clustering
from ..models.model import Model
from ..predictors.analytical import AnalyticalPredictor
from ..predictors.base import LatencyPredictor
from ..predictors.dataset import StageSample
from ..predictors.trainer import TrainConfig
from ..predictors.trust import EnsemblePredictor, TrustConfig, TrustStats, assess
from ..runtime.pipeline import whitebox_latency
from ..runtime.profiler import ProfiledStage, StageProfiler
from .sampling import stratified_sample


@dataclass
class PredTOPConfig:
    """Framework knobs (§VI defaults)."""

    predictor_kind: str = "dag_transformer"
    #: fraction of candidate stages profiled for training
    sample_fraction: float = 0.3
    val_fraction: float = 0.1
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0
    #: persist training state here after every epoch (atomic ``.npz``);
    #: with ``resume`` set, an interrupted training phase picks up from
    #: the checkpoint and reproduces the uninterrupted run bit-for-bit
    checkpoint_path: str | None = None
    resume: bool = False
    #: gray-box trust layer knobs (defaults read ``REPRO_TRUST_*``;
    #: disabled unless ``REPRO_TRUST`` is set)
    trust: TrustConfig = field(default_factory=TrustConfig.from_env)


@dataclass
class PhaseCosts:
    """Cost bookkeeping across the three phases.

    Profiling cost is in *simulated* seconds (the substituted testbed's
    compile + measure time); training and inference costs are real wall
    seconds of the predictor stack, which is the same machine class the
    paper trains on.
    """

    profiling_seconds: float = 0.0
    training_seconds: float = 0.0
    inference_seconds: float = 0.0

    @property
    def total(self) -> float:
        return self.profiling_seconds + self.training_seconds + self.inference_seconds


class PredTOP:
    """Latency predictor for one model on one mesh."""

    def __init__(
        self,
        model: Model,
        clustering: Clustering,
        mesh: DeviceMesh,
        config: PredTOPConfig | None = None,
        profiler: StageProfiler | None = None,
    ) -> None:
        self.model = model
        self.clustering = clustering
        self.mesh = mesh
        self.config = config or PredTOPConfig()
        self.profiler = profiler or StageProfiler(model)
        self.costs = PhaseCosts()
        self.predictor: LatencyPredictor | None = None
        self.ensemble: EnsemblePredictor | None = None
        #: guard/escalation accounting across the prediction phase
        self.trust_stats = TrustStats()
        #: calibrated analytical predictor; the fallback when the whole
        #: learned predictor degrades, the bounds oracle otherwise
        self._analytical: AnalyticalPredictor | None = None
        self._profiled: list[ProfiledStage] = []

    # ------------------------------------------------------------- phase 1
    def profiling_phase(
        self,
        dp: int | None = None,
        mp: int | None = None,
    ) -> list[ProfiledStage]:
        """Profile a stratified sample of stages on the mesh.

        With explicit ``(dp, mp)`` the measurement fixes that Table-III
        configuration; otherwise each stage is profiled across all logical
        views and the *optimal* latency is kept (what Alpa's intra-op
        compiler would emit, §III).
        """
        from ..experiments.engine import parallel_map

        slices = stratified_sample(self.clustering.all_slices(),
                                   self.config.sample_fraction,
                                   self.config.seed)
        # independent measurements fan out across the engine's workers
        # (serial when REPRO_JOBS=1); priming the profiler's memo keeps
        # later in-process lookups of the same stages free
        self._profiled = parallel_map(
            lambda se: self._measure(se[0], se[1], dp, mp), slices)
        for p in self._profiled:
            self.profiler.prime(p)
        self.costs.profiling_seconds += sum(p.profiling_cost
                                            for p in self._profiled)
        return self._profiled

    def _measure(self, s: int, e: int, dp: int | None,
                 mp: int | None) -> ProfiledStage:
        if dp is not None and mp is not None:
            return self.profiler.profile_stage(s, e, self.mesh, dp, mp)
        best: ProfiledStage | None = None
        for lv in logical_views(self.mesh):
            p = self.profiler.profile_stage(s, e, self.mesh, lv.dp, lv.mp)
            if best is None or p.latency < best.latency:
                best = p
        assert best is not None
        return best

    # ------------------------------------------------------------- phase 2
    def training_phase(self) -> LatencyPredictor | None:
        """Train the predictor (ensemble) on the profiled sample.

        With trust enabled this fits a deep ensemble of
        ``config.trust.ensemble_size`` members (member 0 bit-identical
        to the plain single fit); a fit that diverges is retrained once
        with a fresh seed.  If *every* member diverges the framework
        degrades: ``predictor`` stays ``None`` and the prediction phase
        serves calibrated analytical estimates instead of crashing.
        """
        if not self._profiled:
            raise RuntimeError("run profiling_phase first")
        samples = [StageSample(p.graph, p.latency, p.stage_id)
                   for p in self._profiled]
        if len(samples) < 3:
            raise RuntimeError("need at least 3 profiled stages to train")
        # hold out a small validation slice for early stopping; every other
        # profiled stage trains (there is no test split inside the
        # framework — accuracy evaluation lives in the experiments layer)
        rng = np.random.default_rng(self.config.seed)
        order = rng.permutation(len(samples))
        n_val = max(1, int(round(self.config.val_fraction * len(samples))))
        val = [samples[i] for i in order[:n_val]]
        train = [samples[i] for i in order[n_val:]]
        tcfg = self.config.trust
        self.ensemble = EnsemblePredictor(
            self.config.predictor_kind, seed=self.config.seed,
            size=tcfg.ensemble_size if tcfg.enabled else 1)
        fit = self.ensemble.fit(
            train, val, self.config.train,
            checkpoint_path=self.config.checkpoint_path,
            resume=self.config.resume)
        self.costs.training_seconds += fit.wall_seconds
        self.trust_stats.retrained += fit.retrained
        self._analytical = AnalyticalPredictor(self.mesh.gpu)
        self._analytical.fit(samples, [])
        if fit.degraded:
            self.trust_stats.degraded += 1
            self.predictor = None
        else:
            self.predictor = self.ensemble.members[0]
        return self.predictor

    # ------------------------------------------------------------- phase 3
    def prediction_phase(
        self,
        slices: list[tuple[int, int]] | None = None,
        microbatch: int | None = None,
    ) -> dict[tuple[int, int], float]:
        """Predict optimal stage latency for all (or given) slices.

        With trust enabled each prediction passes the uncertainty /
        OOD / physical-bounds guards; suspect entries escalate to
        re-profiling while ``trust.budget`` lasts, then to the
        calibrated analytical estimate.  A fully degraded predictor
        (every ensemble member diverged) serves analytical estimates
        outright.
        """
        if self.predictor is None and self._analytical is None:
            raise RuntimeError("run training_phase first")
        slices = slices or [self.clustering.slice_range(i, j)
                            for i in range(self.clustering.n_units)
                            for j in range(i + 1, self.clustering.n_units + 1)]
        t0 = time.perf_counter()
        graphs = [self.profiler.predictor_graph(s, e, microbatch)
                  for (s, e) in slices]
        tcfg = self.config.trust
        if self.predictor is None:
            # degraded: the learned predictor is gone, serve the fallback
            preds = self._analytical.predict_graphs(graphs)
            self.trust_stats.escalated_analytical += len(slices)
        elif not tcfg.enabled:
            preds = self.predictor.predict_graphs(graphs)
        else:
            mean, std, ood = self.ensemble.predict_many(graphs)
            ana = self._analytical.predict_graphs(graphs)
            preds = []
            for k, g in enumerate(graphs):
                guarded = assess(float(mean[k]), float(std[k]),
                                 float(ood[k]),
                                 float(ana[k]), tcfg)
                self.trust_stats.record(guarded)
                if guarded.trusted:
                    preds.append(guarded.value)
                elif self.trust_stats.budget_spent < tcfg.budget:
                    p = self._measure(*slices[k], None, None)
                    self.costs.profiling_seconds += p.profiling_cost
                    self.trust_stats.budget_spent += p.profiling_cost
                    self.trust_stats.escalated_profiled += 1
                    preds.append(p.latency)
                else:
                    self.trust_stats.escalated_analytical += 1
                    preds.append(float(ana[k]))
        self.costs.inference_seconds += time.perf_counter() - t0
        return {sl: float(p) for sl, p in zip(slices, preds)}

    # ------------------------------------------------------------ white box
    @staticmethod
    def predict_iteration_latency(stage_latencies: list[float],
                                  n_microbatches: int,
                                  schedule: str = "1f1b") -> float:
        """Gray-box composition: the schedule's closed form over predicted
        stage latencies (Eqn 4 for the default 1F1B)."""
        if schedule == "1f1b":
            return whitebox_latency(stage_latencies, n_microbatches)
        from ..runtime.schedules import get_schedule

        return get_schedule(schedule).closed_form(stage_latencies,
                                                  n_microbatches)

    # ---------------------------------------------------------- convenience
    def run_all_phases(self, dp: int | None = None, mp: int | None = None,
                       ) -> dict[tuple[int, int], float]:
        """Profile, train, and predict every candidate stage."""
        self.profiling_phase(dp, mp)
        self.training_phase()
        return self.prediction_phase()
