"""Stage sampling for the profiling phase (§VI-1).

PredTOP profiles only a subset of candidate stages; the paper samples
"stages of different sizes to make the model more general".  We implement
that as stratified sampling over slice length (in clustering units): every
length bucket contributes proportionally, so the training set spans the
smallest single-unit stages through the full model.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


def stratified_sample(
    slices: list[tuple[int, int]],
    fraction: float,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Sample ``fraction`` of ``slices``, stratified by slice length.

    Always returns at least one slice per non-empty length bucket when the
    overall budget allows, and at least two slices overall (a predictor
    cannot be fit on fewer).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if not slices:
        return []
    rng = np.random.default_rng(seed)
    buckets: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for s in slices:
        buckets[s[1] - s[0]].append(s)

    budget = max(2, int(round(fraction * len(slices))))
    lengths = sorted(buckets)
    chosen: list[tuple[int, int]] = []
    # proportional allocation with a one-per-bucket floor, largest first so
    # the rare long slices are never starved
    remaining = budget
    for i, ln in enumerate(reversed(lengths)):
        blist = buckets[ln]
        left = len(lengths) - i - 1
        want = max(1, int(round(fraction * len(blist))))
        want = min(want, max(0, remaining - left), len(blist))
        if want > 0:
            idx = rng.choice(len(blist), size=want, replace=False)
            chosen.extend(blist[k] for k in sorted(idx))
            remaining -= want
    # top up from anywhere if rounding under-filled the budget
    if remaining > 0:
        pool = [s for s in slices if s not in set(chosen)]
        if pool:
            idx = rng.choice(len(pool), size=min(remaining, len(pool)),
                             replace=False)
            chosen.extend(pool[k] for k in sorted(idx))
    return sorted(set(chosen))
