"""Parallelization-plan search: the Fig-10 use case.

Five ways to fill the inter-op DP's stage-latency table, as compared in
§VIII-B:

* ``full``    — vanilla Alpa, exhaustive profiling of every
  (slice, submesh);
* ``partial`` — vanilla Alpa's heuristic: only profile slices whose
  model-fraction roughly matches the submesh's device-fraction
  (stage–device balance);
* ``predtop-dag_transformer`` / ``predtop-gcn`` / ``predtop-gat`` — PredTOP:
  profile a sampled subset per submesh, train the predictor, predict the
  rest.

Every approach then runs the same Alpa inter-op DP and its plan is scored
by *ground-truth* stage latencies on the 1F1B pipeline simulator, so
Fig 10a (optimization cost) and Fig 10b (plan iteration latency) fall out
of the same structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..cluster.mesh import DeviceMesh, enumerate_submeshes
from ..models.clustering import Clustering
from ..models.model import Model
from ..parallel.inter_op import INFEASIBLE, LatencyTable, slice_stages
from ..parallel.plans import ParallelPlan
from ..predictors.analytical import AnalyticalPredictor
from ..predictors.dataset import StageSample
from ..predictors.trainer import TrainConfig
from ..predictors.trust import EnsemblePredictor, TrustConfig, TrustStats, assess
from ..runtime.pipeline import PipelineSimulator
from ..runtime.profiler import StageProfiler
from .sampling import stratified_sample

APPROACHES = ("full", "partial", "predtop-dag_transformer",
              "predtop-gcn", "predtop-gat")


@dataclass
class SearchResult:
    """Outcome of one plan search."""

    approach: str
    plan: ParallelPlan
    #: simulated profiling seconds + real training/inference seconds
    optimization_cost: float
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    #: plan latency under ground-truth stage measurements (1F1B simulation)
    true_iteration_latency: float = float("inf")
    #: per-(slice, submesh) predicted/measured table used by the DP
    n_table_entries: int = 0
    #: guard/escalation accounting of the trust layer (PredTOP approaches)
    trust: TrustStats | None = None
    #: human-readable notes on components that failed and fell back to
    #: re-profiling or the analytical predictor
    degradations: list[str] = field(default_factory=list)


class PlanSearcher:
    """Runs the five search variants on one (model, cluster) pair."""

    def __init__(
        self,
        model: Model,
        clustering: Clustering,
        cluster: DeviceMesh,
        n_microbatches: int = 8,
        profiler: StageProfiler | None = None,
        sample_fraction: float = 0.3,
        train_config: TrainConfig | None = None,
        balance_tolerance: float = 0.34,
        enforce_memory: bool = True,
        seed: int = 0,
        jobs: int | None = None,
        trust: TrustConfig | None = None,
        schedule: str = "1f1b",
    ) -> None:
        from ..runtime.schedules import get_schedule

        self.model = model
        self.clustering = clustering
        self.cluster = cluster
        self.submeshes = enumerate_submeshes(cluster)
        self.n_microbatches = n_microbatches
        #: pipeline schedule for the DP objective and plan scoring; the
        #: default keeps both bit-identical to the pre-registry code
        self.schedule = get_schedule(schedule)
        self.profiler = profiler or StageProfiler(model)
        self.sample_fraction = sample_fraction
        self.train_config = train_config or TrainConfig()
        self.balance_tolerance = balance_tolerance
        #: reject (stage, submesh) placements whose per-device training
        #: state + activations exceed GPU memory (Alpa does the same)
        self.enforce_memory = enforce_memory
        self.seed = seed
        #: engine worker count for the profiling sweeps (None = REPRO_JOBS)
        self.jobs = jobs
        #: trust-layer knobs (None = read ``REPRO_TRUST_*``; disabled by
        #: default, keeping predictions bit-identical to the unguarded path)
        self.trust = trust or TrustConfig.from_env()
        #: stable task callable for the engine's persistent pool — a fresh
        #: lambda per sweep would change the fn identity and force a pool
        #: restart on every ``_measure_many`` call
        self._measure_task = lambda pair: self._measure(*pair)
        self._slices = clustering.all_slices()
        self._unit_slices = [
            (i, j) for i in range(clustering.n_units)
            for j in range(i + 1, clustering.n_units + 1)]
        #: (layer slice, submesh key) -> (latency, profiling cost); fills
        #: from the parallel sweeps so plan scoring never re-profiles
        self._measured: dict[tuple[tuple[int, int], str], tuple[float, float]] = {}

    # ------------------------------------------------------------- plumbing
    def _measure(self, layer_slice: tuple[int, int],
                 submesh: DeviceMesh) -> tuple[float, float]:
        """(optimal latency, profiling cost) for one slice on one submesh."""
        from ..cluster.mesh import logical_views

        memo_key = (layer_slice, submesh.key())
        hit = self._measured.get(memo_key)
        if hit is not None:
            return hit
        best_lat, best_cost = INFEASIBLE, 0.0
        for lv in logical_views(submesh):
            p = self.profiler.profile_stage(layer_slice[0], layer_slice[1],
                                            submesh, lv.dp, lv.mp)
            if (self.enforce_memory
                    and p.profile.memory_bytes > submesh.gpu.mem_capacity):
                continue
            if p.latency < best_lat:
                best_lat, best_cost = p.latency, p.profiling_cost
        self._measured[memo_key] = (best_lat, best_cost)
        return best_lat, best_cost

    def _measure_many(
        self, pairs: list[tuple[tuple[int, int], DeviceMesh]],
    ) -> list[tuple[float, float]]:
        """Measure (slice, submesh) pairs through the engine's pool.

        Results land in ``self._measured`` in submission order, so the
        parallel sweep is interchangeable with the serial loop; workers
        inherit the profiler via fork and return plain floats.
        """
        from ..experiments.engine import parallel_map

        todo = [p for p in pairs
                if (p[0], p[1].key()) not in self._measured]
        results = parallel_map(self._measure_task, todo, self.jobs)
        for (layer_slice, submesh), r in zip(todo, results):
            self._measured[(layer_slice, submesh.key())] = r
        return [self._measured[(ls, sm.key())] for (ls, sm) in pairs]

    def _balanced(self, unit_slice: tuple[int, int],
                  submesh: DeviceMesh) -> bool:
        """Vanilla Alpa's partial-profiling heuristic (§VII-D)."""
        frac_model = (unit_slice[1] - unit_slice[0]) / self.clustering.n_units
        frac_devices = submesh.num_devices / self.cluster.num_devices
        return abs(frac_model - frac_devices) <= self.balance_tolerance

    def _score_plan(self, plan: ParallelPlan) -> float:
        """Ground-truth iteration latency of a plan under the schedule."""
        if not plan.feasible:
            return float("inf")
        true_times = [lat for (lat, _) in self._measure_many(
            [(st.layer_range, st.submesh) for st in plan.stages])]
        if self.schedule.name == "1f1b":
            # the seed path, kept verbatim so 1F1B scores stay bit-identical
            sim = PipelineSimulator(
                true_times, self.n_microbatches,
                transfer_bytes=self.model.activation_bytes(),
                link=self.cluster.inter_link)
            return sim.run().makespan
        transfer = self.cluster.inter_link.transfer_time(
            self.model.activation_bytes())
        return self.schedule.simulated_latency(
            true_times, self.n_microbatches, transfer_time=transfer)

    def _run_dp(self, table: LatencyTable) -> ParallelPlan:
        # schedule=None routes 1F1B through the original Eqn-4 arithmetic
        spec = None if self.schedule.name == "1f1b" else self.schedule
        return slice_stages(self.clustering, self.submeshes, table,
                            self.n_microbatches,
                            total_devices=self.cluster.num_devices,
                            schedule=spec, jobs=self.jobs)

    # ------------------------------------------------------------ approaches
    def search_full(self) -> SearchResult:
        work = [((ui, uj), mi) for (ui, uj) in self._unit_slices
                for mi in range(len(self.submeshes))]
        return self._profiled_search("full", work)

    def search_partial(self) -> SearchResult:
        work = [((ui, uj), mi) for (ui, uj) in self._unit_slices
                for mi in range(len(self.submeshes))
                if self._balanced((ui, uj), self.submeshes[mi])]
        return self._profiled_search("partial", work)

    def _profiled_search(self, approach: str,
                         work: list[tuple[tuple[int, int], int]]) -> SearchResult:
        """Profile every (slice, submesh) work item, then run the DP."""
        table = LatencyTable()
        pairs = [(self.clustering.slice_range(ui, uj), self.submeshes[mi])
                 for ((ui, uj), mi) in work]
        measured = self._measure_many(pairs)
        cost = 0.0
        for ((ui, uj), mi), (lat, c) in zip(work, measured):
            table.set(ui, uj, mi, lat)
            cost += c
        plan = self._run_dp(table)
        return SearchResult(approach, plan, cost,
                            {"profiling": cost},
                            self._score_plan(plan), len(table.values))

    def search_predtop(self, kind: str = "dag_transformer") -> SearchResult:
        """PredTOP: sample + profile, train per submesh, predict the rest.

        Predictions flow through the gray-box trust layer
        (:mod:`repro.predictors.trust`).  With trust disabled — the
        default — the happy path is bit-identical to the unguarded
        search, but even then the search survives a failing predictor:
        a fit whose training diverges is retrained once with a fresh
        seed, and a submesh whose predictor throws or diverges twice
        degrades to re-profiling (within ``trust.budget``) or to the
        per-submesh-calibrated analytical predictor.  With trust
        enabled every predicted entry additionally passes the ensemble
        uncertainty, OOD, and physical-bounds guards; suspect entries
        escalate through the same budget policy.
        """
        from ..experiments.engine import parallel_map

        tcfg = self.trust
        table = LatencyTable()
        sampled = stratified_sample(self._unit_slices, self.sample_fraction,
                                    self.seed)
        sampled_set = set(sampled)
        rest = [us for us in self._unit_slices if us not in sampled_set]

        # profile the sampled (slice, submesh) grid — fanned across workers
        pairs = [(self.clustering.slice_range(ui, uj), sm)
                 for sm in self.submeshes for (ui, uj) in sampled]
        measured = self._measure_many(pairs)
        prof_cost = sum(c for (_, c) in measured)
        it = iter(measured)
        per_submesh: list[list[StageSample]] = []
        for mi, sm in enumerate(self.submeshes):
            samples: list[StageSample] = []
            for (ui, uj) in sampled:
                ls = self.clustering.slice_range(ui, uj)
                lat, _ = next(it)
                table.set(ui, uj, mi, lat)  # measured entries are exact
                g = self.profiler.predictor_graph(*ls)
                samples.append(StageSample(g, lat, f"{ls}@{sm.key()}"))
            per_submesh.append(samples)

        rest_graphs = [self.profiler.predictor_graph(
            *self.clustering.slice_range(ui, uj)) for (ui, uj) in rest]
        ensemble_size = tcfg.ensemble_size if tcfg.enabled else 1

        def fit_and_predict(item: tuple[int, list[StageSample]]):
            """Train one per-submesh ensemble, predict the unprofiled rest.

            Returns ``(status, mean, std, ood, train_s, infer_s,
            retrained, detail)``; any exception — including an injected
            ``predictor_error`` — degrades the submesh instead of
            aborting the search.
            """
            mi, samples = item
            wall = 0.0
            try:
                rng = np.random.default_rng(self.seed)
                order = rng.permutation(len(samples))
                n_val = max(1, len(samples) // 6)
                val = [samples[i] for i in order[:n_val]]
                train = [samples[i] for i in order[n_val:]]
                ensemble = EnsemblePredictor(kind, seed=self.seed,
                                             size=ensemble_size)
                fit = ensemble.fit(train, val, self.train_config)
                wall = fit.wall_seconds
                if fit.degraded:
                    return ("degraded", None, None, None, wall, 0.0,
                            fit.retrained, "every ensemble member diverged")
                t0 = time.perf_counter()
                faults.fire("predictor_error", mi)
                if rest_graphs:
                    # one batched pass over every unprofiled stage
                    mean, std, ood = ensemble.predict_many(rest_graphs)
                else:
                    mean = std = ood = np.empty(0)
                return ("ok", mean, std, ood, wall,
                        time.perf_counter() - t0, fit.retrained, "")
            except Exception as exc:  # noqa: BLE001 — degrade, don't abort
                return ("error", None, None, None, wall, 0.0, 0,
                        f"{type(exc).__name__}: {exc}")

        # one independent training per submesh — also engine-parallel
        trained = parallel_map(fit_and_predict,
                               list(enumerate(per_submesh)), self.jobs)
        train_cost = sum(t[4] for t in trained)
        infer_cost = sum(t[5] for t in trained)

        stats = TrustStats()
        degradations: list[str] = []
        extra_prof = 0.0
        ana_cache: dict[int, np.ndarray] = {}

        def analytical_rest(mi: int) -> np.ndarray:
            """Per-submesh-calibrated analytical estimates for ``rest``."""
            hit = ana_cache.get(mi)
            if hit is None:
                ana = AnalyticalPredictor(self.submeshes[mi].gpu)
                ana.fit(per_submesh[mi], [])
                hit = ana_cache[mi] = ana.predict_graphs(rest_graphs)
            return hit

        def escalate(mi: int, k: int, fallback: float) -> float:
            """Re-profile a suspect entry within budget, else fall back."""
            nonlocal extra_prof
            if stats.budget_spent < tcfg.budget:
                ls = self.clustering.slice_range(*rest[k])
                lat, c = self._measure(ls, self.submeshes[mi])
                extra_prof += c
                stats.budget_spent += c
                stats.escalated_profiled += 1
                return lat
            stats.escalated_analytical += 1
            return fallback

        for mi, (status, mean, std, ood, _, _, retrained, detail) \
                in enumerate(trained):
            stats.retrained += retrained
            if status != "ok":
                # predictor threw or diverged past retraining: fill the
                # whole submesh through the escalation policy
                stats.degraded += 1
                degradations.append(f"submesh {self.submeshes[mi].key()} "
                                    f"predictor {status}: {detail}")
                ana = analytical_rest(mi)
                for k, (ui, uj) in enumerate(rest):
                    table.set(ui, uj, mi,
                              max(escalate(mi, k, float(ana[k])), 1e-6))
                continue
            rule = faults.check("predict_garbage", mi)
            if rule is not None and len(mean):
                mean = faults.garbage_predictions(mean, mi, rule)
            if not tcfg.enabled:
                for (ui, uj), p in zip(rest, mean):
                    table.set(ui, uj, mi, max(float(p), 1e-6))
                continue
            ana = analytical_rest(mi)
            for k, (ui, uj) in enumerate(rest):
                guarded = assess(float(mean[k]), float(std[k]),
                                 float(ood[k]), float(ana[k]), tcfg)
                stats.record(guarded)
                value = (guarded.value if guarded.trusted
                         else escalate(mi, k, float(ana[k])))
                table.set(ui, uj, mi, max(value, 1e-6))

        plan = self._run_dp(table)
        total = prof_cost + train_cost + infer_cost + extra_prof
        breakdown = {"profiling": prof_cost, "training": train_cost,
                     "inference": infer_cost}
        if extra_prof:
            breakdown["escalation"] = extra_prof
        return SearchResult(
            f"predtop-{kind}", plan, total, breakdown,
            self._score_plan(plan), len(table.values),
            trust=stats, degradations=degradations)

    # -------------------------------------------------------------- frontend
    def run(self, approach: str) -> SearchResult:
        if approach == "full":
            return self.search_full()
        if approach == "partial":
            return self.search_partial()
        if approach.startswith("predtop-"):
            return self.search_predtop(approach.removeprefix("predtop-"))
        raise ValueError(f"unknown approach {approach!r}; "
                         f"known: {APPROACHES}")

    def run_all(self) -> dict[str, SearchResult]:
        return {a: self.run(a) for a in APPROACHES}
