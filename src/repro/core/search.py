"""Parallelization-plan search: the Fig-10 use case.

Five ways to fill the inter-op DP's stage-latency table, as compared in
§VIII-B:

* ``full``    — vanilla Alpa, exhaustive profiling of every
  (slice, submesh);
* ``partial`` — vanilla Alpa's heuristic: only profile slices whose
  model-fraction roughly matches the submesh's device-fraction
  (stage–device balance);
* ``predtop-dag_transformer`` / ``predtop-gcn`` / ``predtop-gat`` — PredTOP:
  profile a sampled subset per submesh, train the predictor, predict the
  rest.

Every approach then runs the same Alpa inter-op DP and its plan is scored
by *ground-truth* stage latencies on the 1F1B pipeline simulator, so
Fig 10a (optimization cost) and Fig 10b (plan iteration latency) fall out
of the same structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster.mesh import DeviceMesh, enumerate_submeshes
from ..models.clustering import Clustering
from ..models.model import Model
from ..parallel.inter_op import INFEASIBLE, LatencyTable, slice_stages
from ..parallel.plans import ParallelPlan
from ..predictors.base import LatencyPredictor
from ..predictors.dataset import StageSample
from ..predictors.trainer import TrainConfig
from ..runtime.pipeline import PipelineSimulator
from ..runtime.profiler import StageProfiler
from .sampling import stratified_sample

APPROACHES = ("full", "partial", "predtop-dag_transformer",
              "predtop-gcn", "predtop-gat")


@dataclass
class SearchResult:
    """Outcome of one plan search."""

    approach: str
    plan: ParallelPlan
    #: simulated profiling seconds + real training/inference seconds
    optimization_cost: float
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    #: plan latency under ground-truth stage measurements (1F1B simulation)
    true_iteration_latency: float = float("inf")
    #: per-(slice, submesh) predicted/measured table used by the DP
    n_table_entries: int = 0


class PlanSearcher:
    """Runs the five search variants on one (model, cluster) pair."""

    def __init__(
        self,
        model: Model,
        clustering: Clustering,
        cluster: DeviceMesh,
        n_microbatches: int = 8,
        profiler: StageProfiler | None = None,
        sample_fraction: float = 0.3,
        train_config: TrainConfig | None = None,
        balance_tolerance: float = 0.34,
        enforce_memory: bool = True,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.clustering = clustering
        self.cluster = cluster
        self.submeshes = enumerate_submeshes(cluster)
        self.n_microbatches = n_microbatches
        self.profiler = profiler or StageProfiler(model)
        self.sample_fraction = sample_fraction
        self.train_config = train_config or TrainConfig()
        self.balance_tolerance = balance_tolerance
        #: reject (stage, submesh) placements whose per-device training
        #: state + activations exceed GPU memory (Alpa does the same)
        self.enforce_memory = enforce_memory
        self.seed = seed
        self._slices = clustering.all_slices()
        self._unit_slices = [
            (i, j) for i in range(clustering.n_units)
            for j in range(i + 1, clustering.n_units + 1)]

    # ------------------------------------------------------------- plumbing
    def _measure(self, layer_slice: tuple[int, int],
                 submesh: DeviceMesh) -> tuple[float, float]:
        """(optimal latency, profiling cost) for one slice on one submesh."""
        from ..cluster.mesh import logical_views

        best_lat, best_cost = INFEASIBLE, 0.0
        for lv in logical_views(submesh):
            p = self.profiler.profile_stage(layer_slice[0], layer_slice[1],
                                            submesh, lv.dp, lv.mp)
            if (self.enforce_memory
                    and p.profile.memory_bytes > submesh.gpu.mem_capacity):
                continue
            if p.latency < best_lat:
                best_lat, best_cost = p.latency, p.profiling_cost
        return best_lat, best_cost

    def _balanced(self, unit_slice: tuple[int, int],
                  submesh: DeviceMesh) -> bool:
        """Vanilla Alpa's partial-profiling heuristic (§VII-D)."""
        frac_model = (unit_slice[1] - unit_slice[0]) / self.clustering.n_units
        frac_devices = submesh.num_devices / self.cluster.num_devices
        return abs(frac_model - frac_devices) <= self.balance_tolerance

    def _score_plan(self, plan: ParallelPlan) -> float:
        """Ground-truth iteration latency of a plan (1F1B simulation)."""
        if not plan.feasible:
            return float("inf")
        true_times = []
        for st in plan.stages:
            lat, _ = self._measure(st.layer_range, st.submesh)
            true_times.append(lat)
        sim = PipelineSimulator(
            true_times, self.n_microbatches,
            transfer_bytes=self.model.activation_bytes(),
            link=self.cluster.inter_link)
        return sim.run().makespan

    def _run_dp(self, table: LatencyTable) -> ParallelPlan:
        return slice_stages(self.clustering, self.submeshes, table,
                            self.n_microbatches,
                            total_devices=self.cluster.num_devices)

    # ------------------------------------------------------------ approaches
    def search_full(self) -> SearchResult:
        table = LatencyTable()
        cost = 0.0
        for (ui, uj) in self._unit_slices:
            ls = self.clustering.slice_range(ui, uj)
            for mi, sm in enumerate(self.submeshes):
                lat, c = self._measure(ls, sm)
                table.set(ui, uj, mi, lat)
                cost += c
        plan = self._run_dp(table)
        return SearchResult("full", plan, cost,
                            {"profiling": cost},
                            self._score_plan(plan), len(table.values))

    def search_partial(self) -> SearchResult:
        table = LatencyTable()
        cost = 0.0
        for (ui, uj) in self._unit_slices:
            ls = self.clustering.slice_range(ui, uj)
            for mi, sm in enumerate(self.submeshes):
                if not self._balanced((ui, uj), sm):
                    continue
                lat, c = self._measure(ls, sm)
                table.set(ui, uj, mi, lat)
                cost += c
        plan = self._run_dp(table)
        return SearchResult("partial", plan, cost,
                            {"profiling": cost},
                            self._score_plan(plan), len(table.values))

    def search_predtop(self, kind: str = "dag_transformer") -> SearchResult:
        """PredTOP: sample + profile, train per submesh, predict the rest."""
        table = LatencyTable()
        prof_cost = 0.0
        train_cost = 0.0
        infer_cost = 0.0
        sampled = stratified_sample(self._unit_slices, self.sample_fraction,
                                    self.seed)
        sampled_set = set(sampled)
        for mi, sm in enumerate(self.submeshes):
            samples: list[StageSample] = []
            for (ui, uj) in sampled:
                ls = self.clustering.slice_range(ui, uj)
                lat, c = self._measure(ls, sm)
                prof_cost += c
                table.set(ui, uj, mi, lat)  # measured entries are exact
                g = self.profiler.predictor_graph(*ls)
                samples.append(StageSample(g, lat, f"{ls}@{sm.key()}"))
            predictor = LatencyPredictor(kind, seed=self.seed)
            rng = np.random.default_rng(self.seed)
            order = rng.permutation(len(samples))
            n_val = max(1, len(samples) // 6)
            val = [samples[i] for i in order[:n_val]]
            train = [samples[i] for i in order[n_val:]]
            result = predictor.fit(train, val, self.train_config)
            train_cost += result.wall_seconds

            t0 = time.perf_counter()
            rest = [us for us in self._unit_slices if us not in sampled_set]
            graphs = [self.profiler.predictor_graph(
                *self.clustering.slice_range(ui, uj)) for (ui, uj) in rest]
            if graphs:
                preds = predictor.predict_graphs(graphs)
                for (ui, uj), lat in zip(rest, preds):
                    table.set(ui, uj, mi, max(float(lat), 1e-6))
            infer_cost += time.perf_counter() - t0

        plan = self._run_dp(table)
        total = prof_cost + train_cost + infer_cost
        return SearchResult(
            f"predtop-{kind}", plan, total,
            {"profiling": prof_cost, "training": train_cost,
             "inference": infer_cost},
            self._score_plan(plan), len(table.values))

    # -------------------------------------------------------------- frontend
    def run(self, approach: str) -> SearchResult:
        if approach == "full":
            return self.search_full()
        if approach == "partial":
            return self.search_partial()
        if approach.startswith("predtop-"):
            return self.search_predtop(approach.removeprefix("predtop-"))
        raise ValueError(f"unknown approach {approach!r}; "
                         f"known: {APPROACHES}")

    def run_all(self) -> dict[str, SearchResult]:
        return {a: self.run(a) for a in APPROACHES}
