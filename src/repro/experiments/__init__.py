"""Experiment harness: scenarios, profiles, corpora, tables, figures."""

from .cache import ResultsCache, global_cache
from .corpus import BenchmarkSetup, benchmark_setup, corpus_summary, stage_corpus
from .engine import (
    CellFailure,
    GridRunReport,
    MapOutcome,
    n_jobs,
    parallel_map,
    run_grid,
    run_grid_report,
    supervised_map,
)
from .figures import UseCaseResult, random_plan_latencies, run_use_case
from .manifest import append_event, manifest_path, read_events, summarize
from .profiles import FAST, PAPER, PROFILES, SMOKE, ExperimentProfile, active_profile
from .reporting import (
    render_mre_table,
    render_schedule_grid,
    render_stats,
    render_use_case,
)
from .scenarios import Scenario, all_scenarios, scenario_grid
from .schedule_grid import (
    ScheduleCell,
    ScheduleGridReport,
    run_schedule_cell,
    run_schedule_grid,
    stage_time_vector,
)
from .tables import (
    CellResult,
    best_kind_share,
    grid_statistics,
    mre_grid,
    run_cell,
)

__all__ = [
    "ExperimentProfile", "SMOKE", "FAST", "PAPER", "PROFILES", "active_profile",
    "Scenario", "scenario_grid", "all_scenarios",
    "BenchmarkSetup", "benchmark_setup", "stage_corpus", "corpus_summary",
    "CellResult", "run_cell", "mre_grid", "grid_statistics", "best_kind_share",
    "random_plan_latencies", "run_use_case", "UseCaseResult",
    "render_mre_table", "render_stats", "render_use_case",
    "render_schedule_grid",
    "ScheduleCell", "ScheduleGridReport", "run_schedule_cell",
    "run_schedule_grid", "stage_time_vector",
    "ResultsCache", "global_cache",
    "n_jobs", "parallel_map", "run_grid", "run_grid_report",
    "supervised_map", "MapOutcome", "GridRunReport", "CellFailure",
    "append_event", "manifest_path", "read_events", "summarize",
]
