"""On-disk results cache for the benchmark harness.

Predictor training dominates experiment wall time, so every (profile,
experiment, cell) result is memoized in a JSON file.  Figures 8/9 are pure
aggregations of the Table V/VI grids and read the same cache, so running
the table benches once makes the figure benches free.

Set ``REPRO_CACHE=off`` to disable, or point ``REPRO_CACHE`` at an
alternate path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

_DEFAULT = Path(__file__).resolve().parents[3] / ".repro_cache" / "results.json"


class ResultsCache:
    """A flat string-keyed JSON store with atomic-ish writes."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        env = os.environ.get("REPRO_CACHE", "")
        if env.lower() == "off":
            self.path: Path | None = None
            self._data: dict[str, Any] = {}
            return
        self.path = Path(env) if env else _DEFAULT
        self._data = {}
        if self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                self._data = {}

    def get(self, key: str) -> Any | None:
        return self._data.get(key)

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._data, indent=1, sort_keys=True))
        tmp.replace(self.path)

    def __contains__(self, key: str) -> bool:
        return key in self._data


_GLOBAL: ResultsCache | None = None


def global_cache() -> ResultsCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ResultsCache()
    return _GLOBAL
