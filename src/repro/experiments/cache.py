"""On-disk results cache for the benchmark harness.

Predictor training dominates experiment wall time, so every (profile,
experiment, cell) result is memoized on disk.  Figures 8/9 are pure
aggregations of the Table V/VI grids and read the same cache, so running
the table benches once makes the figure benches free.

The store is *sharded and concurrency-safe* so the parallel experiment
engine (``repro.experiments.engine``) can hammer it from many worker
processes:

* each key lives in one of 256 shard files ``shards/<hh>.json`` under the
  cache root, chosen by the first hex byte of the key's SHA-256;
* writers take an ``fcntl`` advisory lock on the shard's ``.lock`` file,
  re-read the shard, merge their entry, and publish via atomic
  tmp-file + ``os.replace`` — concurrent writers to one shard serialize,
  writers to different shards don't contend at all, and readers (which
  never lock) only ever see complete files;
* a legacy single-file ``results.json`` store, if present at the cache
  root, is read through transparently; new writes always go to shards,
  so old caches migrate lazily and stay readable.

Set ``REPRO_CACHE=off`` to disable, or point ``REPRO_CACHE`` at an
alternate cache directory (or at a legacy ``*.json`` store, whose parent
directory then becomes the root).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:  # POSIX only; on other platforms writes fall back to atomic rename
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

_DEFAULT_ROOT = Path(__file__).resolve().parents[3] / ".repro_cache"
_LEGACY_NAME = "results.json"
N_SHARDS = 256


def _shard_of(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:2]


@contextmanager
def _locked(lock_path: Path) -> Iterator[None]:
    """Advisory exclusive lock held for the duration of the block."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    with lock_path.open("a") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _read_json(path: Path) -> dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return {}


def _write_atomic(path: Path, data: dict[str, Any]) -> None:
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
    tmp.replace(path)


class ResultsCache:
    """A flat string-keyed JSON store, sharded for concurrent writers."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        if path is None:
            env = os.environ.get("REPRO_CACHE", "")
            if env.lower() == "off":
                self.root: Path | None = None
                self._memory: dict[str, Any] = {}
                self._legacy: dict[str, Any] = {}
                return
            path = Path(env) if env else _DEFAULT_ROOT
        path = Path(path)
        # a *.json path selects legacy-store compatibility mode: the file
        # is the read-through tier and its directory holds the shards
        if path.suffix == ".json":
            self.root = path.parent
            legacy_path = path
        else:
            self.root = path
            legacy_path = path / _LEGACY_NAME
        self._memory = {}
        self._legacy = _read_json(legacy_path)

    # ----------------------------------------------------------------- paths
    @property
    def shards_dir(self) -> Path:
        assert self.root is not None
        return self.root / "shards"

    def _shard_path(self, key: str) -> Path:
        return self.shards_dir / f"{_shard_of(key)}.json"

    # ------------------------------------------------------------------- API
    def get(self, key: str) -> Any | None:
        if key in self._memory:
            return self._memory[key]
        if self.root is not None:
            shard = _read_json(self._shard_path(key))
            if key in shard:
                self._memory[key] = shard[key]
                return shard[key]
        if key in self._legacy:
            return self._legacy[key]
        return None

    def set(self, key: str, value: Any) -> None:
        self._memory[key] = value
        if self.root is None:
            return
        path = self._shard_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _locked(path.with_suffix(".lock")):
            shard = _read_json(path)
            shard[key] = value
            _write_atomic(path, shard)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """All keys visible to this process (memory ∪ shards ∪ legacy)."""
        out = set(self._memory) | set(self._legacy)
        if self.root is not None and self.shards_dir.is_dir():
            for shard_file in sorted(self.shards_dir.glob("*.json")):
                out.update(_read_json(shard_file))
        return sorted(out)

    def migrate_legacy(self) -> int:
        """Copy every legacy entry into its shard; returns the count.

        The legacy file itself is left untouched so older checkouts can
        still read it.
        """
        n = 0
        for key, value in self._legacy.items():
            if self.root is not None and key not in _read_json(self._shard_path(key)):
                self.set(key, value)
                n += 1
        return n

    # ------------------------------------------------------- compat property
    @property
    def path(self) -> Path | None:
        """Cache root (``None`` when disabled); kept for callers that only
        check enabled-ness."""
        return self.root


_GLOBAL: ResultsCache | None = None


def global_cache() -> ResultsCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ResultsCache()
    return _GLOBAL
