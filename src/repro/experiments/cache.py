"""On-disk results cache for the benchmark harness.

Predictor training dominates experiment wall time, so every (profile,
experiment, cell) result is memoized on disk.  Figures 8/9 are pure
aggregations of the Table V/VI grids and read the same cache, so running
the table benches once makes the figure benches free.

The store is *sharded, concurrency-safe, and crash-safe* so the
fault-tolerant experiment engine (``repro.experiments.engine``) can
hammer it from many worker processes and survive killed writers:

* each key lives in one of 256 shard files ``shards/<hh>.json`` under the
  cache root, chosen by the first hex byte of the key's SHA-256;
* writers take an ``fcntl`` advisory lock on the shard's ``.lock`` file,
  re-read the shard, merge their entry, and publish via tmp-file +
  ``fsync`` + atomic ``os.replace`` — concurrent writers to one shard
  serialize, writers to different shards don't contend at all, readers
  (which never lock) only ever see complete files, and a crash mid-write
  can never publish a truncated shard;
* every shard carries a SHA-256 checksum over its entries; a shard that
  fails validation (bitrot, torn write from a pre-fsync era, injected
  corruption) is *quarantined* — renamed to ``<shard>.corrupt`` with a
  warning and a manifest event — and treated as missing, so the engine
  simply recomputes its cells instead of silently trusting garbage;
* ``reap_stale()`` clears orphaned ``*.tmp<pid>`` files left by killed
  writers and ancient uncontended ``.lock`` files;
* transient ``OSError`` on a shard write is retried a bounded number of
  times before surfacing;
* a legacy single-file ``results.json`` store, if present at the cache
  root, is read through transparently; plain-dict (pre-checksum) shard
  files remain readable; new writes always use the checksummed format.

Set ``REPRO_CACHE=off`` to disable, or point ``REPRO_CACHE`` at an
alternate cache directory (or at a legacy ``*.json`` store, whose parent
directory then becomes the root).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .. import faults
from .manifest import append_event

try:  # POSIX only; on other platforms writes fall back to atomic rename
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

_DEFAULT_ROOT = Path(__file__).resolve().parents[3] / ".repro_cache"
_LEGACY_NAME = "results.json"
N_SHARDS = 256
SHARD_VERSION = 2
#: bounded retries for transient IO errors on a shard write
WRITE_RETRIES = 3
#: reap_stale(): tmp/lock files older than this are fair game (seconds)
STALE_AGE = 3600.0


def _shard_of(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:2]


def _shard_index(key: str) -> int:
    return int(_shard_of(key), 16)


@contextmanager
def _locked(lock_path: Path) -> Iterator[None]:
    """Advisory exclusive lock held for the duration of the block."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    with lock_path.open("a") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _read_json(path: Path) -> dict[str, Any]:
    """Lenient reader for the *legacy* single-file store only."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return {}
    except (json.JSONDecodeError, OSError) as exc:
        warnings.warn(f"unreadable legacy results store {path}: {exc}",
                      stacklevel=2)
        return {}


def _entries_checksum(entries: dict[str, Any]) -> str:
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _quarantine(path: Path, reason: str) -> None:
    """Move a failed-validation shard aside as ``<name>.corrupt``."""
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return  # lost a race with another reader's quarantine — fine
    warnings.warn(f"quarantined corrupt cache shard {path.name} -> "
                  f"{target.name}: {reason}", stacklevel=3)
    append_event(path.parent.parent, "shard_quarantined",
                 shard=path.name, reason=reason)


def _read_shard(path: Path) -> dict[str, Any]:
    """Shard entries, validating the checksum; corrupt shards quarantine.

    Accepts both the checksummed v2 envelope and bare v1 dicts (which
    predate checksums and get no validation beyond JSON framing).
    """
    try:
        raw = path.read_text()
    except FileNotFoundError:
        return {}
    except OSError as exc:  # pragma: no cover - exotic IO failure
        warnings.warn(f"unreadable cache shard {path}: {exc}", stacklevel=2)
        return {}
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        _quarantine(path, f"invalid JSON: {exc}")
        return {}
    if not isinstance(doc, dict):
        _quarantine(path, f"unexpected top-level {type(doc).__name__}")
        return {}
    if "__shard_version__" not in doc:
        return doc  # v1: a bare entries dict
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        _quarantine(path, "missing entries")
        return {}
    if _entries_checksum(entries) != doc.get("checksum"):
        _quarantine(path, "checksum mismatch")
        return {}
    return entries


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _write_atomic(path: Path, entries: dict[str, Any]) -> None:
    """Publish ``entries`` as a checksummed shard: tmp + fsync + rename.

    The fsync *before* ``os.replace`` is load-bearing: without it a
    crash between the rename and the data reaching disk can publish a
    truncated shard under the final name.
    """
    doc = {"__shard_version__": SHARD_VERSION,
           "checksum": _entries_checksum(entries),
           "entries": entries}
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    with tmp.open("w") as fh:
        fh.write(json.dumps(doc, indent=1, sort_keys=True))
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    _fsync_dir(path.parent)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


class ResultsCache:
    """A flat string-keyed JSON store, sharded for concurrent writers."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        if path is None:
            env = os.environ.get("REPRO_CACHE", "")
            if env.lower() == "off":
                self.root: Path | None = None
                self._memory: dict[str, Any] = {}
                self._legacy: dict[str, Any] = {}
                return
            path = Path(env) if env else _DEFAULT_ROOT
        path = Path(path)
        # a *.json path selects legacy-store compatibility mode: the file
        # is the read-through tier and its directory holds the shards
        if path.suffix == ".json":
            self.root = path.parent
            legacy_path = path
        else:
            self.root = path
            legacy_path = path / _LEGACY_NAME
        self._memory = {}
        self._legacy = _read_json(legacy_path)

    # ----------------------------------------------------------------- paths
    @property
    def shards_dir(self) -> Path:
        assert self.root is not None
        return self.root / "shards"

    def _shard_path(self, key: str) -> Path:
        return self.shards_dir / f"{_shard_of(key)}.json"

    # ------------------------------------------------------------------- API
    def get(self, key: str) -> Any | None:
        if key in self._memory:
            return self._memory[key]
        if self.root is not None:
            shard = _read_shard(self._shard_path(key))
            if key in shard:
                self._memory[key] = shard[key]
                return shard[key]
        if key in self._legacy:
            return self._legacy[key]
        return None

    def set(self, key: str, value: Any) -> None:
        self._memory[key] = value
        if self.root is None:
            return
        path = self._shard_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        shard_no = _shard_index(key)
        last_error: OSError | None = None
        for attempt in range(WRITE_RETRIES + 1):
            try:
                faults.fire("io_error", shard_no, attempt)
                with _locked(path.with_suffix(".lock")):
                    shard = _read_shard(path)
                    shard[key] = value
                    _write_atomic(path, shard)
                break
            except OSError as exc:
                last_error = exc
                if attempt >= WRITE_RETRIES:
                    raise
                time.sleep(0.01 * (2 ** attempt))
        if last_error is not None:
            append_event(self.root, "write_retried", shard=path.name,
                         detail=str(last_error))
        if faults.check("shard_corrupt", shard_no) is not None:
            faults.corrupt_file(path)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """All keys visible to this process (memory ∪ shards ∪ legacy)."""
        out = set(self._memory) | set(self._legacy)
        if self.root is not None and self.shards_dir.is_dir():
            for shard_file in sorted(self.shards_dir.glob("*.json")):
                out.update(_read_shard(shard_file))
        return sorted(out)

    def migrate_legacy(self) -> int:
        """Copy every legacy entry into its shard; returns the count.

        The legacy file itself is left untouched so older checkouts can
        still read it.
        """
        n = 0
        for key, value in self._legacy.items():
            if self.root is not None and key not in _read_shard(self._shard_path(key)):
                self.set(key, value)
                n += 1
        return n

    # ------------------------------------------------------------ janitorial
    def reap_stale(self, max_age: float = STALE_AGE) -> int:
        """Remove debris left by killed writers; returns files removed.

        * ``*.tmp<pid>`` files whose writer pid is dead (or that are
          older than ``max_age``) are unpublished partial writes — the
          atomic-rename protocol means deleting them loses nothing;
        * ``.lock`` files older than ``max_age`` are unlinked, but only
          while holding their lock, so an active writer is never raced.
        """
        if self.root is None or not self.shards_dir.is_dir():
            return 0
        removed = 0
        now = time.time()
        for tmp in self.shards_dir.glob("*.tmp*"):
            suffix = tmp.suffix[len(".tmp"):]
            pid = int(suffix) if suffix.isdigit() else None
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if (pid is not None and not _pid_alive(pid)) or age > max_age:
                try:
                    tmp.unlink()
                    removed += 1
                except OSError:
                    pass
        if fcntl is not None:
            for lock in self.shards_dir.glob("*.lock"):
                try:
                    if now - lock.stat().st_mtime <= max_age:
                        continue
                    with lock.open("a") as fh:
                        fcntl.flock(fh.fileno(),
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                        lock.unlink()
                        removed += 1
                        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                except OSError:
                    continue  # held, vanished, or unreadable — leave it
        if removed:
            append_event(self.root, "stale_reaped", count=removed)
        return removed

    def quarantined(self) -> list[Path]:
        """The ``*.corrupt`` files currently parked next to the shards."""
        if self.root is None or not self.shards_dir.is_dir():
            return []
        return sorted(self.shards_dir.glob("*.corrupt"))

    # ------------------------------------------------------- compat property
    @property
    def path(self) -> Path | None:
        """Cache root (``None`` when disabled); kept for callers that only
        check enabled-ness."""
        return self.root


_GLOBAL: ResultsCache | None = None


def global_cache() -> ResultsCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ResultsCache()
    return _GLOBAL
