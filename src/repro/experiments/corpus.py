"""Stage-corpus construction for the prediction-accuracy experiments.

§VIII collects 409 GPT-3 stages and 205 MoE stages by enumerating slices
over the layer clustering and profiles each on every runtime
configuration.  This module builds the per-profile equivalent: all
contiguous unit slices of the (possibly depth-scaled) benchmark, profiled
on one scenario, as encoded :class:`StageSample` lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.clustering import Clustering, cluster_layers
from ..models.configs import benchmark_config
from ..models.model import Model, build_model
from ..predictors.dataset import StageSample
from ..runtime.profiler import StageProfiler
from .profiles import ExperimentProfile
from .scenarios import Scenario


@dataclass
class BenchmarkSetup:
    """Model + clustering + profiler for one (benchmark, profile)."""

    family: str
    model: Model
    clustering: Clustering
    profiler: StageProfiler


_SETUPS: dict[tuple[str, str], BenchmarkSetup] = {}
_CORPora: dict[tuple[str, str, str], list[StageSample]] = {}


def benchmark_setup(family: str, profile: ExperimentProfile) -> BenchmarkSetup:
    """Build (and memoize) the model/profiler pair for one benchmark."""
    key = (family, profile.name)
    if key in _SETUPS:
        return _SETUPS[key]
    layers = profile.layers_for(family)
    units = profile.units_for(family)
    cfg = benchmark_config(family, layers)
    model = build_model(cfg)
    clustering = cluster_layers(model, units)
    profiler = StageProfiler(model,
                             aggressive_fusion=profile.aggressive_fusion)
    setup = BenchmarkSetup(family, model, clustering, profiler)
    _SETUPS[key] = setup
    return setup


def stage_corpus(family: str, scenario: Scenario,
                 profile: ExperimentProfile) -> list[StageSample]:
    """All stage samples of one benchmark on one runtime configuration."""
    key = (family, scenario.key, profile.name)
    if key in _CORPora:
        return _CORPora[key]
    setup = benchmark_setup(family, profile)
    mesh = scenario.mesh()
    samples = []
    for mb in profile.corpus_microbatches:
        for (s, e) in setup.clustering.all_slices():
            p = setup.profiler.profile_stage(s, e, mesh, scenario.dp,
                                             scenario.mp, microbatch=mb)
            samples.append(StageSample(p.graph, p.latency,
                                       f"{p.stage_id}@mb{mb}"))
    _CORPora[key] = samples
    return samples


def corpus_summary(samples: list[StageSample]) -> dict:
    """Size/latency statistics of a corpus (diagnostics)."""
    import numpy as np

    nodes = np.array([s.n_nodes for s in samples])
    lats = np.array([s.latency for s in samples])
    return {
        "n_stages": len(samples),
        "nodes_min": int(nodes.min()),
        "nodes_max": int(nodes.max()),
        "latency_ms_min": float(lats.min() * 1e3),
        "latency_ms_max": float(lats.max() * 1e3),
    }
