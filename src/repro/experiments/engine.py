"""Parallel experiment engine: fan the evaluation grid across processes.

The Table V/VI grids — (scenario × fraction × predictor) cells, each one
an independent numpy predictor-training run — dominate benchmark wall
time and are embarrassingly parallel, the same structure Alpa exploits
when it profiles stages across the device grid.  This module provides:

* :func:`n_jobs` — the worker count, from ``REPRO_JOBS`` (default
  ``os.cpu_count()``); ``REPRO_JOBS=1`` preserves the serial path
  exactly;
* :func:`parallel_map` — ordered map over a fork-based process pool,
  falling back to a plain loop when one worker (or one item) makes a
  pool pointless;
* :func:`run_grid` — the Table V/VI cell grid through the pool.

Determinism: every cell derives its seed from the experiment profile
alone (never from worker identity or completion order), each worker
process computes cells independently, and ``parallel_map`` returns
results in submission order — so a parallel run is bit-identical to the
serial one for everything except wall-clock bookkeeping.  Workers share
results through the sharded on-disk cache
(:mod:`repro.experiments.cache`), which tolerates concurrent writers.

Nested parallelism is suppressed: code running inside an engine worker
sees ``n_jobs() == 1``, so a parallel grid never forks a second tier of
pools.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .profiles import ExperimentProfile
from .scenarios import Scenario, scenario_grid

T = TypeVar("T")
R = TypeVar("R")

#: set in pool workers so nested calls degrade to the serial path
_IN_WORKER = False

#: the mapped callable, installed in the parent immediately before the
#: fork so children inherit it by memory copy rather than by pickling
#: (lets parallel_map accept closures and bound methods)
_WORKER_FN: Callable[[Any], Any] | None = None


def n_jobs(default: int | None = None) -> int:
    """Worker count from ``REPRO_JOBS`` (default ``os.cpu_count()``)."""
    if _IN_WORKER:
        return 1
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS={env!r} is not an integer") from None
    if default is not None:
        return max(1, default)
    return os.cpu_count() or 1


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(item: Any) -> Any:
    assert _WORKER_FN is not None
    return _WORKER_FN(item)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` over a process pool, order preserved.

    Serial (and pool-free) when ``jobs`` resolves to 1, when there are
    fewer than two items, or when the platform cannot fork.  Items and
    results cross the process boundary by pickling; ``fn`` itself does
    not — it is inherited through the fork — so closures over live
    objects (profilers, searchers) are fine.
    """
    global _WORKER_FN
    items = list(items)
    jobs = n_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(items))
    if jobs <= 1 or len(items) < 2:
        return [fn(x) for x in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return [fn(x) for x in items]
    prev = _WORKER_FN
    _WORKER_FN = fn
    try:
        with ctx.Pool(jobs, initializer=_init_worker) as pool:
            return pool.map(_invoke, items)
    finally:
        _WORKER_FN = prev


# --------------------------------------------------------------- grid engine
def grid_cells(
    platform_name: str,
    kinds: Sequence[str],
    fractions: Sequence[float],
) -> list[tuple[Scenario, float, str]]:
    """The (scenario, fraction, kind) cell list in canonical table order."""
    return [(scenario, float(fraction), kind)
            for scenario in scenario_grid(platform_name)
            for fraction in fractions
            for kind in kinds]


def _run_one_cell(task: tuple) -> tuple:
    """Pool worker: one grid cell → its scalar results (picklable)."""
    from .tables import run_cell

    family, scenario, fraction, kind, profile = task
    cell = run_cell(family, scenario, fraction, kind, profile)
    return (cell.scenario_key, cell.fraction, cell.kind, cell.mre,
            cell.epochs_run, cell.train_seconds)


def run_grid(
    platform_name: str,
    family: str,
    profile: ExperimentProfile,
    kinds: Sequence[str],
    fractions: Sequence[float],
    jobs: int | None = None,
) -> dict[tuple[str, float, str], float]:
    """One full Table V/VI half: ``{(scenario, fraction, kind): MRE%}``.

    With ``jobs == 1`` this is exactly the legacy serial loop; with more
    workers the cells fan out across processes and land in the shared
    sharded cache, so a subsequent serial pass (or figure aggregation)
    sees the identical numbers.
    """
    import numpy as np

    cells = grid_cells(platform_name, kinds, fractions)
    tasks = [(family, scenario, fraction, kind, profile)
             for (scenario, fraction, kind) in cells]
    jobs = n_jobs() if jobs is None else max(1, jobs)
    if jobs > 1:
        # profile the stage corpora once in the parent (cheap relative to
        # training) so every forked worker inherits them copy-on-write
        # instead of redundantly re-profiling per process
        from .corpus import stage_corpus

        for scenario in {scenario for (scenario, _, _) in cells}:
            stage_corpus(family, scenario, profile)
    results = parallel_map(_run_one_cell, tasks, jobs)
    out: dict[tuple[str, float, str], float] = {}
    for (scenario_key, fraction, kind, mre, _epochs, _secs) in results:
        if not np.isnan(mre):
            out[(scenario_key, fraction, kind)] = mre
    return out
