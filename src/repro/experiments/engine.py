"""Fault-tolerant parallel experiment engine.

The Table V/VI grids — (scenario × fraction × predictor) cells, each one
an independent numpy predictor-training run — dominate benchmark wall
time and are embarrassingly parallel, the same structure Alpa exploits
when it profiles stages across the device grid.  Alpa-style measurement
campaigns also *fail* routinely (OOM kills, hangs, infeasible configs),
so the engine is built to absorb cell failures rather than die on them.
This module provides:

* :func:`n_jobs` — the worker count, from ``REPRO_JOBS`` (default
  ``os.cpu_count()``); ``REPRO_JOBS=1`` preserves the serial path
  exactly;
* :func:`parallel_map` — ordered map over a fork-based process pool,
  degrading to the plain serial loop (with a warning) when a pool
  cannot be created;
* :func:`supervised_map` — the fault-tolerant map: one forked worker
  process per item, per-cell timeouts (``REPRO_CELL_TIMEOUT``), bounded
  retries with exponential backoff (``REPRO_CELL_RETRIES`` /
  ``REPRO_RETRY_BACKOFF``), dead-worker detection with resubmission,
  and partial-failure accounting — the map returns completed results
  plus structured :class:`CellFailure` records instead of raising;
* :func:`run_grid` / :func:`run_grid_report` — the Table V/VI cell grid
  through the supervisor, journaled to the run manifest
  (``.repro_cache/manifest.jsonl``).

Determinism: every cell derives its seed from the experiment profile
alone (never from worker identity, completion order, or — critically —
the *attempt number*), so a cell that crashed, hung, or errored and was
retried produces bit-identical results to a clean first-try run, and a
faulted parallel run is bit-identical to a fault-free serial one.
Workers share results through the sharded on-disk cache
(:mod:`repro.experiments.cache`), which tolerates concurrent writers,
checksums its shards, and quarantines corruption.

Nested parallelism is suppressed: code running inside an engine worker
sees ``n_jobs() == 1``, so a parallel grid never forks a second tier of
pools.  Deterministic chaos testing hooks into the worker bootstrap and
the serial loop via :mod:`repro.faults` (``REPRO_FAULTS``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .. import faults
from . import pool as pool_mod
from .manifest import append_event
from .profiles import ExperimentProfile
from .scenarios import Scenario, scenario_grid

T = TypeVar("T")
R = TypeVar("R")

#: set in pool workers so nested calls degrade to the serial path
_IN_WORKER = False

#: the mapped callable, installed in the parent immediately before the
#: fork so children inherit it by memory copy rather than by pickling
#: (lets parallel_map accept closures and bound methods)
_WORKER_FN: Callable[[Any], Any] | None = None

#: consecutive process-spawn failures before the supervisor declares the
#: pool unhealthy and degrades to the serial path
_MAX_SPAWN_FAILURES = 3


def n_jobs(default: int | None = None) -> int:
    """Worker count from ``REPRO_JOBS`` (default ``os.cpu_count()``)."""
    if _IN_WORKER:
        return 1
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS={env!r} is not an integer") from None
    if default is not None:
        return max(1, default)
    return os.cpu_count() or 1


def _env_float(name: str, default: float) -> float:
    env = os.environ.get(name, "")
    if not env:
        return default
    try:
        return float(env)
    except ValueError:
        raise ValueError(f"{name}={env!r} is not a number") from None


def cell_timeout() -> float:
    """Per-cell wall-clock budget from ``REPRO_CELL_TIMEOUT`` (seconds;
    0 = unlimited, the default)."""
    return max(0.0, _env_float("REPRO_CELL_TIMEOUT", 0.0))


def cell_retries() -> int:
    """Retries per failed cell from ``REPRO_CELL_RETRIES`` (default 2)."""
    return max(0, int(_env_float("REPRO_CELL_RETRIES", 2)))


def retry_backoff() -> float:
    """Base retry delay from ``REPRO_RETRY_BACKOFF`` (seconds, default
    0.05); attempt ``k`` waits ``backoff * 2**(k-1)``."""
    return max(0.0, _env_float("REPRO_RETRY_BACKOFF", 0.05))


def _init_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True
    faults.mark_worker()


def _invoke(item: Any) -> Any:
    assert _WORKER_FN is not None
    return _WORKER_FN(item)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` over a process pool, order preserved.

    Serial (and pool-free) when ``jobs`` resolves to 1, when there are
    fewer than two items, or when the platform cannot fork; if creating
    the pool itself fails (fd exhaustion, fork limits), the map degrades
    to the serial loop with a warning instead of raising.  Items and
    results cross the process boundary by pickling (large numpy results
    by shared memory); ``fn`` itself does not — it is inherited through
    the fork — so closures over live objects (profilers, searchers) are
    fine.

    By default the map runs over the :mod:`~repro.experiments.pool`
    persistent workers, which survive across calls (caches stay warm,
    no per-call fork/teardown); the pool restarts itself whenever ``fn``
    or the ``REPRO_*`` environment changes, so repeated maps over one
    stable callable are the fast path.  ``REPRO_POOL=off`` restores the
    legacy one-pool-per-call behavior; both are bit-identical to the
    serial loop.
    """
    items = list(items)
    jobs = n_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(items))
    if jobs <= 1 or len(items) < 2:
        return [fn(x) for x in items]
    if not pool_mod.pool_enabled():
        return _legacy_parallel_map(fn, items, jobs)
    try:
        workers = pool_mod.get_pool(fn, jobs)
    except ValueError:  # pragma: no cover - non-POSIX, no fork context
        return [fn(x) for x in items]
    except (OSError, AttributeError) as exc:
        warnings.warn(f"process pool unavailable ({exc}); "
                      f"running {len(items)} items serially", stacklevel=2)
        return [fn(x) for x in items]
    return pool_mod.map_ordered(workers, items, jobs)


def _legacy_parallel_map(
    fn: Callable[[T], R],
    items: list[T],
    jobs: int,
) -> list[R]:
    """The pre-persistent-pool path: one fork pool per call."""
    global _WORKER_FN
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return [fn(x) for x in items]
    prev = _WORKER_FN
    _WORKER_FN = fn
    try:
        try:
            pool = ctx.Pool(jobs, initializer=_init_worker)
        except OSError as exc:
            warnings.warn(f"process pool unavailable ({exc}); "
                          f"running {len(items)} items serially", stacklevel=2)
            return [fn(x) for x in items]
        with pool:
            return pool.map(_invoke, items)
    finally:
        _WORKER_FN = prev


# --------------------------------------------------------- fault supervision
@dataclass(frozen=True)
class CellFailure:
    """One item that exhausted its retries (or one failed attempt)."""

    index: int
    label: str
    attempts: int
    #: ``crash`` (worker died), ``timeout`` (killed past deadline), or
    #: ``exception`` (the cell raised)
    failure_class: str
    detail: str


@dataclass
class MapOutcome:
    """What :func:`supervised_map` observed: results + failure accounting."""

    #: in submission order; ``None`` where the item exhausted retries
    results: list[Any]
    failures: list[CellFailure] = field(default_factory=list)
    attempts: int = 0
    #: ``parallel``, ``serial``, or ``degraded`` (parallel → serial mid-run)
    mode: str = "parallel"


class _Task:
    """Supervisor bookkeeping for one in-flight attempt."""

    __slots__ = ("index", "attempt", "proc", "conn", "deadline")

    def __init__(self, index, attempt, proc, conn, deadline):
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _supervised_child(conn, index: int, attempt: int, item: Any) -> None:
    """Worker body: one forked process per attempt.

    Exits via ``os._exit`` so a child never runs the parent's cleanup
    handlers; an abrupt death (real or injected) reaches the supervisor
    as pipe-EOF + nonzero exit status, exactly like an OOM kill.
    """
    global _IN_WORKER
    _IN_WORKER = True
    faults.mark_worker()
    try:
        faults.fire("worker_crash", index, attempt)
        faults.fire("cell_hang", index, attempt)
        result = _invoke(item)
        conn.send(("ok", result))
        conn.close()
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


def _serial_supervised(
    fn: Callable[[T], Any],
    items: list[T],
    outcome: MapOutcome,
    todo: list[int],
    retries: int,
    backoff: float,
    labels: Sequence[str],
    manifest_root,
    run_id: str,
) -> MapOutcome:
    """The in-process fallback: same retry/accounting contract, no forks.

    Timeouts are unenforceable without a subprocess to kill, so a
    ``cell_hang`` fault here simply sleeps its ``secs`` — keep them
    short in serial chaos runs.
    """
    for index in todo:
        for attempt in range(retries + 1):
            outcome.attempts += 1
            append_event(manifest_root, "cell_attempt", run=run_id,
                         index=index, label=labels[index], attempt=attempt,
                         mode="serial")
            try:
                faults.fire("worker_crash", index, attempt)
                faults.fire("cell_hang", index, attempt)
                outcome.results[index] = fn(items[index])
            except Exception as exc:  # noqa: BLE001 - absorbed per contract
                detail = f"{type(exc).__name__}: {exc}"
                if attempt < retries:
                    append_event(manifest_root, "cell_retry", run=run_id,
                                 index=index, label=labels[index],
                                 attempt=attempt, detail=detail)
                    time.sleep(backoff * (2 ** attempt))
                    continue
                outcome.failures.append(CellFailure(
                    index, labels[index], attempt + 1, "exception", detail))
                append_event(manifest_root, "cell_failed", run=run_id,
                             index=index, label=labels[index],
                             attempts=attempt + 1, **{"class": "exception"},
                             detail=detail)
            else:
                append_event(manifest_root, "cell_done", run=run_id,
                             index=index, label=labels[index],
                             attempt=attempt)
            break
    return outcome


def _pool_supervised(
    fn: Callable[[T], Any],
    items: list[T],
    outcome: MapOutcome,
    jobs: int,
    timeout: float,
    retries: int,
    backoff: float,
    labels: Sequence[str],
    manifest_root,
    run_id: str,
) -> MapOutcome:
    """:func:`supervised_map` over the persistent worker pool.

    Same retry/timeout/accounting contract as the legacy per-attempt
    fork loop, but attempts lease long-lived workers instead of paying a
    fork each: a worker that crashes (pipe EOF) or blows its deadline
    (killed) is replaced and the attempt is resubmitted with backoff;
    fault sites fire inside the worker per (index, attempt), so chaos
    plans reproduce exactly as before.  If the pool cannot be (re)built
    the remaining cells finish serially (``mode="degraded"``).
    """
    n = len(items)

    def _unhealthy(exc) -> None:
        warnings.warn(f"worker pool unhealthy ({exc}); degrading to "
                      f"the serial path for the remaining cells",
                      stacklevel=3)

    try:
        workers = pool_mod.get_pool(fn, jobs)
    except ValueError:  # pragma: no cover - non-POSIX, no fork context
        outcome.mode = "serial"
        return _serial_supervised(fn, items, outcome, list(range(n)),
                                  retries, backoff, labels, manifest_root,
                                  run_id)
    except (OSError, AttributeError) as exc:
        _unhealthy(exc)
        outcome.mode = "degraded"
        return _serial_supervised(fn, items, outcome, list(range(n)),
                                  retries, backoff, labels, manifest_root,
                                  run_id)

    pending: list[tuple[int, int]] = [(i, 0) for i in range(n)]
    eligible_at: dict[int, float] = {}
    #: task id -> (index, attempt, deadline, worker)
    inflight: dict[int, tuple[int, int, float, Any]] = {}
    spawn_failures = 0
    degraded = False

    def _finish_attempt(index: int, attempt: int, failure_class: str,
                        detail: str) -> None:
        if attempt < retries:
            eligible_at[index] = time.monotonic() + backoff * (2 ** attempt)
            pending.append((index, attempt + 1))
            append_event(manifest_root, "cell_retry", run=run_id,
                         index=index, label=labels[index], attempt=attempt,
                         **{"class": failure_class}, detail=detail)
        else:
            outcome.failures.append(CellFailure(
                index, labels[index], attempt + 1, failure_class, detail))
            append_event(manifest_root, "cell_failed", run=run_id,
                         index=index, label=labels[index],
                         attempts=attempt + 1, **{"class": failure_class},
                         detail=detail)

    def _heal() -> None:
        """Bring the pool back to strength, tracking consecutive spawn
        failures; past the limit the run degrades to serial."""
        nonlocal spawn_failures, degraded
        try:
            workers.ensure_size()
        except OSError as exc:
            spawn_failures += 1
            if spawn_failures >= _MAX_SPAWN_FAILURES:
                _unhealthy(exc)
                degraded = True
            else:
                time.sleep(0.05 * spawn_failures)
        else:
            spawn_failures = 0

    try:
        while pending or inflight:
            now = time.monotonic()
            launchable = [pa for pa in pending
                          if eligible_at.get(pa[0], 0.0) <= now]
            for index, attempt in launchable:
                if len(inflight) >= jobs or degraded:
                    break
                worker = workers.idle_worker()
                if worker is None:
                    _heal()
                    worker = workers.idle_worker()
                    if worker is None:
                        break
                try:
                    tid = workers.submit(worker, index, attempt,
                                         items[index], fire_faults=True)
                except BrokenPipeError:
                    _heal()
                    continue
                pending.remove((index, attempt))
                outcome.attempts += 1
                append_event(manifest_root, "cell_attempt", run=run_id,
                             index=index, label=labels[index],
                             attempt=attempt, worker=worker.proc.pid)
                deadline = now + timeout if timeout > 0 else float("inf")
                inflight[tid] = (index, attempt, deadline, worker)
            if degraded:
                break
            if not inflight:
                if not pending:
                    break
                # every pending attempt is in its backoff window
                next_at = min(eligible_at.get(i, 0.0) for i, _ in pending)
                time.sleep(max(0.0, min(next_at - time.monotonic(), 0.5)))
                continue

            # wait for results, worker deaths (pipe EOF), or a deadline
            next_deadline = min(d for _, _, d, _ in inflight.values())
            wait_for = min(max(0.0, next_deadline - time.monotonic()), 0.5)
            for ev in workers.wait(wait_for):
                if ev.kind == "crash":
                    _heal()
                    lease = (inflight.pop(ev.task_id, None)
                             if ev.task_id is not None else None)
                    if lease is not None:
                        index, attempt, _, _ = lease
                        _finish_attempt(index, attempt, "crash",
                                        f"worker died with exit code "
                                        f"{ev.exitcode}")
                    continue
                lease = inflight.pop(ev.task_id, None)
                if lease is None:  # pragma: no cover - stale result
                    continue
                index, attempt, _, _ = lease
                if ev.status == "ok":
                    outcome.results[index] = ev.payload
                    append_event(manifest_root, "cell_done", run=run_id,
                                 index=index, label=labels[index],
                                 attempt=attempt)
                else:
                    payload = ev.payload
                    detail = (f"{type(payload).__name__}: {payload}"
                              if isinstance(payload, BaseException)
                              else str(payload))
                    _finish_attempt(index, attempt, "exception", detail)
            # enforce deadlines on whatever is still leased
            now = time.monotonic()
            for tid, (index, attempt, deadline,
                      worker) in list(inflight.items()):
                if deadline <= now:
                    del inflight[tid]
                    workers.kill(worker)
                    _heal()
                    _finish_attempt(
                        index, attempt, "timeout",
                        f"cell exceeded {timeout:.1f}s; worker killed")
    except BaseException:  # pragma: no cover - abnormal exit
        workers.abandon_inflight()
        raise

    if degraded:
        outcome.mode = "degraded"
        todo = sorted({index for index, _ in pending}
                      | {lease[0] for lease in inflight.values()})
        workers.abandon_inflight()
        return _serial_supervised(fn, items, outcome, todo, retries,
                                  backoff, labels, manifest_root, run_id)
    return outcome


def supervised_map(
    fn: Callable[[T], Any],
    items: Iterable[T],
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    labels: Sequence[str] | None = None,
    manifest_root=None,
    run_id: str = "",
) -> MapOutcome:
    """Ordered map with supervision: crashes, hangs, and exceptions in
    ``fn`` cost retries, not the run.

    Each attempt runs in its own forked process (``fn`` crosses by
    memory inheritance, the result by pickling).  A worker that dies
    (``crash``), exceeds ``timeout`` seconds (``timeout``; killed), or
    raises (``exception``) is resubmitted up to ``retries`` times with
    exponential backoff; an item that exhausts its retries yields
    ``None`` in ``results`` plus a :class:`CellFailure`, and every
    attempt is journaled to the manifest under ``manifest_root``.  If
    process spawning itself keeps failing the supervisor declares the
    pool unhealthy and finishes the remaining items serially
    (``mode="degraded"``).
    """
    global _WORKER_FN
    items = list(items)
    n = len(items)
    jobs = n_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, max(1, n))
    timeout = cell_timeout() if timeout is None else max(0.0, timeout)
    retries = cell_retries() if retries is None else max(0, retries)
    backoff = retry_backoff() if backoff is None else max(0.0, backoff)
    labels = list(labels) if labels is not None else [f"item{i}" for i in range(n)]
    outcome = MapOutcome(results=[None] * n)

    try:
        ctx = multiprocessing.get_context("fork") if jobs > 1 else None
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = None
    if ctx is None or n < 2:
        outcome.mode = "serial"
        return _serial_supervised(fn, items, outcome, list(range(n)),
                                  retries, backoff, labels, manifest_root,
                                  run_id)
    if pool_mod.pool_enabled():
        return _pool_supervised(fn, items, outcome, jobs, timeout, retries,
                                backoff, labels, manifest_root, run_id)

    prev = _WORKER_FN
    _WORKER_FN = fn
    pending: list[tuple[int, int]] = [(i, 0) for i in range(n)]
    eligible_at: dict[int, float] = {}
    running: dict[int, _Task] = {}
    spawn_failures = 0
    degraded = False

    def _finish_attempt(task: _Task, failure_class: str, detail: str) -> None:
        """Failed attempt: schedule a retry or record the final failure."""
        if task.attempt < retries:
            delay = backoff * (2 ** task.attempt)
            eligible_at[task.index] = time.monotonic() + delay
            pending.append((task.index, task.attempt + 1))
            append_event(manifest_root, "cell_retry", run=run_id,
                         index=task.index, label=labels[task.index],
                         attempt=task.attempt, **{"class": failure_class},
                         detail=detail)
        else:
            outcome.failures.append(CellFailure(
                task.index, labels[task.index], task.attempt + 1,
                failure_class, detail))
            append_event(manifest_root, "cell_failed", run=run_id,
                         index=task.index, label=labels[task.index],
                         attempts=task.attempt + 1,
                         **{"class": failure_class}, detail=detail)

    def _reap(task: _Task) -> None:
        task.conn.close()
        task.proc.join(timeout=5.0)
        if task.proc.is_alive():  # pragma: no cover - stuck in kernel
            task.proc.kill()
            task.proc.join()

    try:
        while pending or running:
            now = time.monotonic()
            # launch every eligible pending attempt into a free slot
            launchable = [pa for pa in pending
                          if eligible_at.get(pa[0], 0.0) <= now]
            for index, attempt in launchable:
                if len(running) >= jobs:
                    break
                pending.remove((index, attempt))
                try:
                    recv_conn, send_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_supervised_child,
                        args=(send_conn, index, attempt, items[index]))
                    proc.start()
                    send_conn.close()
                except OSError as exc:
                    spawn_failures += 1
                    pending.append((index, attempt))
                    if spawn_failures >= _MAX_SPAWN_FAILURES:
                        warnings.warn(
                            f"worker pool unhealthy ({exc}); degrading to "
                            f"the serial path for the remaining cells",
                            stacklevel=2)
                        degraded = True
                        break
                    time.sleep(0.05 * spawn_failures)
                    continue
                spawn_failures = 0
                outcome.attempts += 1
                append_event(manifest_root, "cell_attempt", run=run_id,
                             index=index, label=labels[index],
                             attempt=attempt, worker=proc.pid)
                deadline = now + timeout if timeout > 0 else float("inf")
                running[index] = _Task(index, attempt, proc, recv_conn,
                                       deadline)
            if degraded:
                break
            if not running:
                # every pending attempt is in its backoff window
                next_at = min(eligible_at.get(i, 0.0) for i, _ in pending)
                time.sleep(max(0.0, min(next_at - time.monotonic(), 0.5)))
                continue

            # wait for results, worker deaths (pipe EOF), or a deadline
            next_deadline = min(t.deadline for t in running.values())
            wait_for = min(max(0.0, next_deadline - time.monotonic()), 0.5)
            ready = _conn_wait([t.conn for t in running.values()],
                               timeout=wait_for)
            ready_set = set(ready)
            for task in [t for t in running.values() if t.conn in ready_set]:
                del running[task.index]
                try:
                    status, payload = task.conn.recv()
                except (EOFError, OSError):
                    # pipe closed with no message: the worker died abruptly
                    _reap(task)
                    code = task.proc.exitcode
                    _finish_attempt(task, "crash",
                                    f"worker died with exit code {code}")
                    continue
                _reap(task)
                if status == "ok":
                    outcome.results[task.index] = payload
                    append_event(manifest_root, "cell_done", run=run_id,
                                 index=task.index, label=labels[task.index],
                                 attempt=task.attempt)
                else:
                    _finish_attempt(task, "exception", str(payload))
            # enforce deadlines on whatever is still running
            now = time.monotonic()
            for task in [t for t in running.values() if t.deadline <= now]:
                del running[task.index]
                task.proc.terminate()
                _reap(task)
                _finish_attempt(
                    task, "timeout",
                    f"cell exceeded {timeout:.1f}s; worker killed")
    finally:
        _WORKER_FN = prev
        for task in running.values():  # pragma: no cover - abnormal exit
            task.proc.terminate()
            task.conn.close()
            task.proc.join(timeout=5.0)

    if degraded:
        outcome.mode = "degraded"
        todo = sorted({index for index, _ in pending})
        return _serial_supervised(fn, items, outcome, todo, retries,
                                  backoff, labels, manifest_root, run_id)
    return outcome


# --------------------------------------------------------------- grid engine
def grid_cells(
    platform_name: str,
    kinds: Sequence[str],
    fractions: Sequence[float],
) -> list[tuple[Scenario, float, str]]:
    """The (scenario, fraction, kind) cell list in canonical table order."""
    return [(scenario, float(fraction), kind)
            for scenario in scenario_grid(platform_name)
            for fraction in fractions
            for kind in kinds]


def _run_one_cell(task: tuple) -> tuple:
    """Pool worker: one grid cell → its scalar results (picklable)."""
    from .tables import run_cell

    family, scenario, fraction, kind, profile = task
    cell = run_cell(family, scenario, fraction, kind, profile)
    return (cell.scenario_key, cell.fraction, cell.kind, cell.mre,
            cell.epochs_run, cell.train_seconds, cell.diverged,
            cell.retrained)


@dataclass
class GridRunReport:
    """Completed cells plus the structured failure report of one grid run."""

    results: dict[tuple[str, float, str], float]
    failures: list[CellFailure]
    cells: int
    attempts: int
    wall_seconds: float
    mode: str
    #: cells whose first fit diverged and were retrained with a fresh seed
    retrained: int = 0
    #: cells still diverged after the retraining pass
    diverged: int = 0

    @property
    def completed(self) -> int:
        return self.cells - len(self.failures)


def run_grid_report(
    platform_name: str,
    family: str,
    profile: ExperimentProfile,
    kinds: Sequence[str],
    fractions: Sequence[float],
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
) -> GridRunReport:
    """One full Table V/VI half under supervision.

    Never raises on cell failures: completed cells land in ``results``
    (``{(scenario, fraction, kind): MRE%}``), cells that exhausted their
    retries are listed in ``failures``, and every attempt is journaled
    to the cache root's ``manifest.jsonl``.
    """
    import numpy as np

    from .cache import global_cache

    cells = grid_cells(platform_name, kinds, fractions)
    tasks = [(family, scenario, fraction, kind, profile)
             for (scenario, fraction, kind) in cells]
    labels = [f"{platform_name}/{family}/{scenario.key}/f{fraction:.2f}/{kind}"
              for (scenario, fraction, kind) in cells]
    jobs = n_jobs() if jobs is None else max(1, jobs)
    cache = global_cache()
    if cache.root is not None:
        cache.reap_stale()
    run_id = f"{platform_name}-{family}-{profile.name}-{os.getpid()}"
    append_event(cache.root, "grid_start", run=run_id, cells=len(cells),
                 jobs=jobs)
    if jobs > 1:
        # profile the stage corpora once in the parent (cheap relative to
        # training) so every forked worker inherits them copy-on-write
        # instead of redundantly re-profiling per process
        from .corpus import stage_corpus

        for scenario in {scenario for (scenario, _, _) in cells}:
            stage_corpus(family, scenario, profile)
    start = time.perf_counter()
    outcome = supervised_map(_run_one_cell, tasks, jobs, timeout=timeout,
                             retries=retries, labels=labels,
                             manifest_root=cache.root, run_id=run_id)
    out: dict[tuple[str, float, str], float] = {}
    n_retrained = n_diverged = 0
    for row in outcome.results:
        if row is None:
            continue
        (scenario_key, fraction, kind, mre, _epochs, _secs,
         diverged, retrained) = row
        n_retrained += bool(retrained)
        n_diverged += bool(diverged)
        if not np.isnan(mre):
            out[(scenario_key, fraction, kind)] = mre
    report = GridRunReport(out, outcome.failures, len(cells),
                           outcome.attempts,
                           time.perf_counter() - start, outcome.mode,
                           retrained=n_retrained, diverged=n_diverged)
    append_event(cache.root, "grid_done", run=run_id,
                 completed=report.completed, failed=len(report.failures),
                 attempts=report.attempts, mode=report.mode,
                 retrained=report.retrained, diverged=report.diverged,
                 wall_seconds=round(report.wall_seconds, 3))
    return report


def run_grid(
    platform_name: str,
    family: str,
    profile: ExperimentProfile,
    kinds: Sequence[str],
    fractions: Sequence[float],
    jobs: int | None = None,
) -> dict[tuple[str, float, str], float]:
    """One full Table V/VI half: ``{(scenario, fraction, kind): MRE%}``.

    Back-compat wrapper over :func:`run_grid_report`: with ``jobs == 1``
    the cells run in-process exactly as the legacy serial loop did; with
    more workers they fan out under the supervisor and land in the
    shared sharded cache, so a subsequent serial pass (or figure
    aggregation) sees the identical numbers.  Cells that exhausted their
    retries are reported with a warning and omitted from the dict.
    """
    report = run_grid_report(platform_name, family, profile, kinds,
                             fractions, jobs)
    if report.failures:
        warnings.warn(
            f"{len(report.failures)}/{report.cells} grid cells failed after "
            f"retries: "
            + ", ".join(f.label for f in report.failures[:5])
            + ("…" if len(report.failures) > 5 else ""),
            stacklevel=2)
    return report.results
