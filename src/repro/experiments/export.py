"""CSV exporters for every figure/table series.

``results/<profile>/*.txt`` are human-readable; these writers produce the
machine-readable companions (one CSV per experiment) so plots can be
regenerated outside this repository.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Iterable, Sequence


def write_csv(path: str | os.PathLike, header: Sequence[str],
              rows: Iterable[Sequence]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def export_mre_grid(grid: dict[tuple[str, float, str], float],
                    path: str | os.PathLike) -> Path:
    """Table V/VI cells as (scenario, fraction, predictor, mre_percent)."""
    rows = [(sc, f"{frac:.2f}", kind, f"{v:.4f}")
            for (sc, frac, kind), v in sorted(grid.items())]
    return write_csv(path, ("scenario", "fraction", "predictor", "mre_pct"),
                     rows)


def export_series(values: Sequence[float], path: str | os.PathLike,
                  name: str = "value") -> Path:
    """A 1-D series (e.g. Fig 2 plan latencies)."""
    return write_csv(path, ("index", name),
                     [(i, f"{v:.6g}") for i, v in enumerate(values)])


def export_schedule_grid(cells: Iterable, path: str | os.PathLike) -> Path:
    """Schedule-grid rows: one validated schedule per line.

    ``stage_times_s`` is space-separated so the golden tests can re-run
    the closed form / simulator on the exact profiled vector.
    """
    rows = [(c.schedule, c.n_stages, c.n_microbatches,
             f"{c.closed_form:.9g}", f"{c.simulated:.9g}",
             f"{c.lower_bound:.9g}", c.n_events,
             " ".join(f"{t:.9g}" for t in c.stage_times))
            for c in sorted(cells, key=lambda c: c.schedule)]
    return write_csv(path, ("schedule", "n_stages", "n_microbatches",
                            "closed_form_s", "simulated_s", "lower_bound_s",
                            "n_events", "stage_times_s"), rows)


def export_use_case(data: dict[str, dict], path: str | os.PathLike) -> Path:
    """Fig 10 rows: (approach, optimization_cost_s, plan_latency_s)."""
    rows = [(a, f"{d['cost']:.3f}", f"{d['latency']:.6f}", d.get("stages", ""))
            for a, d in sorted(data.items())]
    return write_csv(path, ("approach", "opt_cost_s", "plan_latency_s",
                            "n_stages"), rows)
