"""Figure harnesses: Fig 2 (plan-latency variation) and Fig 10 (use case).

Fig 3 / 8 / 9 are aggregations of the Table V/VI machinery and live in
:mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.mesh import DeviceMesh, enumerate_submeshes, logical_views
from ..core.search import PlanSearcher, SearchResult
from ..runtime.pipeline import whitebox_latency
from .corpus import benchmark_setup
from .profiles import ExperimentProfile
from .scenarios import Scenario


# --------------------------------------------------------------------- Fig 2
def random_plan_latencies(
    family: str,
    profile: ExperimentProfile,
    platform_name: str = "platform2",
    n_plans: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Iteration latencies of random parallelization plans (Fig 2).

    Each plan: a random contiguous partition of the layer units into
    pipeline stages, a random exact-cover assignment of submeshes, and a
    random logical configuration per stage.  Latency is the Eqn-4 pipeline
    time over the simulated ground-truth stage latencies.
    """
    from ..cluster.platforms import get_platform

    setup = benchmark_setup(family, profile)
    cluster = get_platform(platform_name).cluster()
    submeshes = enumerate_submeshes(cluster)
    sizes = [m.num_devices for m in submeshes]
    D = cluster.num_devices
    U = setup.clustering.n_units
    rng = np.random.default_rng(seed)
    n_plans = n_plans or profile.fig2_plans

    covers = _device_covers(sizes, D)
    latencies = np.empty(n_plans, np.float64)
    for p in range(n_plans):
        cover = covers[rng.integers(len(covers))]
        k = len(cover)
        while k > U:
            cover = covers[rng.integers(len(covers))]
            k = len(cover)
        # random contiguous partition of U units into k stages
        cuts = np.sort(rng.choice(np.arange(1, U), size=k - 1, replace=False)) \
            if k > 1 else np.array([], int)
        bounds = [0, *cuts.tolist(), U]
        perm = rng.permutation(k)
        stage_times = []
        for si in range(k):
            mi = submeshes[sizes.index(cover[perm[si]])]
            ls = setup.clustering.slice_range(bounds[si], bounds[si + 1])
            views = logical_views(mi)
            lv = views[rng.integers(len(views))]
            prof = setup.profiler.profile_stage(ls[0], ls[1], mi, lv.dp, lv.mp)
            stage_times.append(prof.latency)
        latencies[p] = whitebox_latency(stage_times, profile.n_microbatches)
    return latencies


def _device_covers(sizes: list[int], total: int) -> list[tuple[int, ...]]:
    """All multisets of submesh sizes summing exactly to ``total``."""
    out: list[tuple[int, ...]] = []

    def rec(remaining: int, start: int, acc: list[int]) -> None:
        if remaining == 0:
            out.append(tuple(acc))
            return
        for i in range(start, len(sizes)):
            if sizes[i] <= remaining:
                acc.append(sizes[i])
                rec(remaining - sizes[i], i, acc)
                acc.pop()

    rec(total, 0, [])
    return out


# -------------------------------------------------------------------- Fig 10
@dataclass
class UseCaseResult:
    """Fig 10 numbers for one benchmark."""

    family: str
    results: dict[str, SearchResult]

    def optimization_costs(self) -> dict[str, float]:
        return {a: r.optimization_cost for a, r in self.results.items()}

    def plan_latencies(self) -> dict[str, float]:
        return {a: r.true_iteration_latency for a, r in self.results.items()}

    def relative_to(self, baseline: str = "partial") -> dict[str, dict[str, float]]:
        base = self.results[baseline]
        return {
            a: {
                "cost_ratio": r.optimization_cost / base.optimization_cost,
                "latency_ratio": (r.true_iteration_latency
                                  / base.true_iteration_latency),
            }
            for a, r in self.results.items()
        }


def run_use_case(
    family: str,
    profile: ExperimentProfile,
    platform_name: str = "platform2",
    approaches: tuple[str, ...] | None = None,
    jobs: int | None = None,
) -> UseCaseResult:
    """Run the Fig-10 plan-search comparison for one benchmark.

    ``jobs`` is the experiment-engine worker count for the searcher's
    profiling sweeps and per-submesh trainings (None = ``REPRO_JOBS``).
    """
    from ..cluster.platforms import get_platform
    from ..core.search import APPROACHES

    setup = benchmark_setup(family, profile)
    cluster = get_platform(platform_name).cluster()
    searcher = PlanSearcher(
        setup.model, setup.clustering, cluster,
        n_microbatches=profile.n_microbatches,
        profiler=setup.profiler,
        sample_fraction=profile.sample_fraction,
        train_config=profile.train_config(),
        seed=profile.seed,
        jobs=jobs,
    )
    results = {}
    for a in (approaches or APPROACHES):
        results[a] = searcher.run(a)
    return UseCaseResult(family, results)
