"""Run-manifest journal: append-only observability for chaos runs.

Every supervised grid run journals its cell attempts, failures, retries,
cache-shard quarantines, and final accounting to
``<cache root>/manifest.jsonl`` — one JSON object per line, appended
with a single ``O_APPEND`` write so concurrent workers never interleave
partial lines (events are far below ``PIPE_BUF``).  The journal is the
flight recorder the acceptance criteria read back: which cells faulted,
with what failure class, and how many attempts each took.

Surfaced via ``python -m repro bench report``.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path
from typing import Any

MANIFEST_NAME = "manifest.jsonl"


def manifest_path(root: str | os.PathLike) -> Path:
    return Path(root) / MANIFEST_NAME


def append_event(root: str | os.PathLike | None, event: str,
                 **fields: Any) -> None:
    """Append one journal line under ``root`` (no-op when root is None).

    Journaling must never take down the run it is observing, so IO
    errors are swallowed.
    """
    if root is None:
        return
    record = {"ts": round(time.time(), 3), "pid": os.getpid(),
              "event": event, **fields}
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        path = manifest_path(root)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def read_events(root: str | os.PathLike) -> list[dict]:
    """All parseable journal lines under ``root`` (oldest first)."""
    path = manifest_path(root)
    events: list[dict] = []
    try:
        text = path.read_text()
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn trailing line from a killed writer
        if isinstance(record, dict):
            events.append(record)
    return events


def summarize(events: list[dict]) -> str:
    """Human-readable report of a journal (for ``repro bench report``)."""
    if not events:
        return "manifest: no events recorded"
    by_event = Counter(e.get("event", "?") for e in events)
    classes = Counter(e.get("class", "?") for e in events
                      if e.get("event") == "cell_failed")
    retries = sum(1 for e in events
                  if e.get("event") == "cell_attempt"
                  and int(e.get("attempt", 0)) > 0)
    runs = {e.get("run") for e in events if e.get("run")}
    lines = [f"manifest: {len(events)} events across {len(runs)} run(s)"]
    for name in sorted(by_event):
        lines.append(f"  {name:<18s} {by_event[name]}")
    if retries:
        lines.append(f"  (retried attempts: {retries})")
    if classes:
        lines.append("failure classes:")
        for name in sorted(classes):
            lines.append(f"  {name:<18s} {classes[name]}")
    failed = [e for e in events if e.get("event") == "cell_failed"]
    if failed:
        lines.append("failed cells (exhausted retries):")
        for e in failed[-20:]:
            lines.append(f"  {e.get('label', e.get('index', '?'))}: "
                         f"{e.get('class', '?')} — {e.get('detail', '')}")
    guards = [e for e in events if e.get("event") == "trust_guard"]
    if guards:
        actions = Counter(e.get("action", "?") for e in guards)
        lines.append("trust guards (divergence retraining / escalations):")
        for name in sorted(actions):
            lines.append(f"  {name:<18s} {actions[name]}")
        for e in guards[-10:]:
            lines.append(f"  {e.get('key', e.get('label', '?'))}: "
                         f"{e.get('site', '?')} → {e.get('action', '?')}")
    return "\n".join(lines)
