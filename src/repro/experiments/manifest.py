"""Run-manifest journal: append-only observability for chaos runs.

Every supervised grid run journals its cell attempts, failures, retries,
cache-shard quarantines, and final accounting to
``<cache root>/manifest.jsonl`` — one JSON object per line, appended
with a single ``O_APPEND`` write so concurrent workers never interleave
partial lines (events are far below ``PIPE_BUF``).  The journal is the
flight recorder the acceptance criteria read back: which cells faulted,
with what failure class, and how many attempts each took.

A long-lived daemon journals continuously, so the file rotates by size:
once ``manifest.jsonl`` passes ``REPRO_MANIFEST_MAX_BYTES`` (default
2 MiB) it is renamed to ``manifest.jsonl.1`` (older generations shift to
``.2`` … up to ``REPRO_MANIFEST_KEEP``, default 3, then fall off) and a
fresh journal starts.  Readers walk the generations oldest-first, so
``repro bench report`` sees one continuous history.

Surfaced via ``python -m repro bench report``.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path
from typing import Any

MANIFEST_NAME = "manifest.jsonl"

#: rotation threshold / retained generations (env-overridable)
DEFAULT_MAX_BYTES = 2 * 1024 * 1024
DEFAULT_KEEP = 3


def manifest_path(root: str | os.PathLike) -> Path:
    return Path(root) / MANIFEST_NAME


def _env_int(name: str, default: int) -> int:
    env = os.environ.get(name, "")
    if not env:
        return default
    try:
        return int(env)
    except ValueError:
        return default


def rotated_paths(root: str | os.PathLike) -> list[Path]:
    """Existing journal generations under ``root``, oldest first
    (``manifest.jsonl.N`` … ``manifest.jsonl.1``, then the live file)."""
    base = manifest_path(root)
    keep = max(1, _env_int("REPRO_MANIFEST_KEEP", DEFAULT_KEEP))
    paths = [base.with_name(f"{base.name}.{i}")
             for i in range(keep, 0, -1)]
    paths.append(base)
    return [p for p in paths if p.exists()]


def _rotate(path: Path) -> None:
    """Shift ``manifest.jsonl`` → ``.1`` → ``.2`` …, dropping the oldest.

    Renames are atomic, so a concurrent appender that already holds an
    open fd keeps appending to the renamed generation — lines are never
    lost, only land one generation earlier.  Racing rotators are benign:
    the loser's ``rename`` fails (source gone) and is swallowed.
    """
    keep = max(1, _env_int("REPRO_MANIFEST_KEEP", DEFAULT_KEEP))
    oldest = path.with_name(f"{path.name}.{keep}")
    try:
        oldest.unlink()
    except OSError:
        pass
    for i in range(keep - 1, 0, -1):
        src = path.with_name(f"{path.name}.{i}")
        if src.exists():
            try:
                os.replace(src, path.with_name(f"{path.name}.{i + 1}"))
            except OSError:
                pass
    try:
        os.replace(path, path.with_name(f"{path.name}.1"))
    except OSError:
        pass


def append_event(root: str | os.PathLike | None, event: str,
                 **fields: Any) -> None:
    """Append one journal line under ``root`` (no-op when root is None).

    Journaling must never take down the run it is observing, so IO
    errors are swallowed.  Rotation is checked before the append, so a
    single event can exceed the threshold by at most one line.
    """
    if root is None:
        return
    record = {"ts": round(time.time(), 3), "pid": os.getpid(),
              "event": event, **fields}
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        path = manifest_path(root)
        path.parent.mkdir(parents=True, exist_ok=True)
        max_bytes = max(4096,
                        _env_int("REPRO_MANIFEST_MAX_BYTES",
                                 DEFAULT_MAX_BYTES))
        try:
            if path.stat().st_size >= max_bytes:
                _rotate(path)
        except OSError:
            pass
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def read_events(root: str | os.PathLike) -> list[dict]:
    """All parseable journal lines under ``root``, oldest first, across
    every retained rotation generation."""
    events: list[dict] = []
    for path in rotated_paths(root):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn trailing line from a killed writer
            if isinstance(record, dict):
                events.append(record)
    return events


def summarize(events: list[dict]) -> str:
    """Human-readable report of a journal (for ``repro bench report``)."""
    if not events:
        return "manifest: no events recorded"
    by_event = Counter(e.get("event", "?") for e in events)
    classes = Counter(e.get("class", "?") for e in events
                      if e.get("event") == "cell_failed")
    retries = sum(1 for e in events
                  if e.get("event") == "cell_attempt"
                  and int(e.get("attempt", 0)) > 0)
    runs = {e.get("run") for e in events if e.get("run")}
    lines = [f"manifest: {len(events)} events across {len(runs)} run(s)"]
    for name in sorted(by_event):
        lines.append(f"  {name:<18s} {by_event[name]}")
    if retries:
        lines.append(f"  (retried attempts: {retries})")
    if classes:
        lines.append("failure classes:")
        for name in sorted(classes):
            lines.append(f"  {name:<18s} {classes[name]}")
    failed = [e for e in events if e.get("event") == "cell_failed"]
    if failed:
        lines.append("failed cells (exhausted retries):")
        for e in failed[-20:]:
            lines.append(f"  {e.get('label', e.get('index', '?'))}: "
                         f"{e.get('class', '?')} — {e.get('detail', '')}")
    guards = [e for e in events if e.get("event") == "trust_guard"]
    if guards:
        actions = Counter(e.get("action", "?") for e in guards)
        lines.append("trust guards (divergence retraining / escalations):")
        for name in sorted(actions):
            lines.append(f"  {name:<18s} {actions[name]}")
        for e in guards[-10:]:
            lines.append(f"  {e.get('key', e.get('label', '?'))}: "
                         f"{e.get('site', '?')} → {e.get('action', '?')}")
    breakers = [e for e in events if e.get("event") == "breaker"]
    if breakers:
        lines.append("serving circuit-breaker transitions:")
        for e in breakers[-20:]:
            lines.append(f"  {e.get('route', '?'):<12s} "
                         f"{e.get('from', '?')} → {e.get('to', '?')}"
                         f" ({e.get('reason', '')})")
    # ------------------------------------------------ tenancy & routing
    limited = [e for e in events if e.get("event") == "rate_limited"]
    snapshots = [e for e in events if e.get("event") == "tenancy"]
    failovers = [e for e in events if e.get("event") == "failover"]
    rep_health = [e for e in events if e.get("event") == "replica_health"]
    if limited or snapshots or failovers or rep_health:
        lines.append("serving tenancy / routing:")
        if limited:
            causes = Counter((e.get("tenant", "?"), e.get("cause", "?"))
                             for e in limited)
            for (tenant, cause) in sorted(causes):
                lines.append(f"  rate-limited      {tenant} ({cause}, "
                             f"first of run x{causes[(tenant, cause)]})")
        if snapshots:
            # the last snapshot per pid carries the closing counters
            closing: dict[int, dict] = {}
            for e in snapshots:
                closing[e.get("pid", 0)] = e
            merged = Counter()
            for e in closing.values():
                for tenant, stats in (e.get("tenants") or {}).items():
                    for key in ("admitted", "rate_limited",
                                "over_concurrency", "shed"):
                        merged[(tenant, key)] += int(stats.get(key, 0))
            for tenant in sorted({t for (t, _) in merged}):
                lines.append(
                    f"  tenant {tenant:<12s} "
                    f"admitted {merged[(tenant, 'admitted')]}, "
                    f"rate-limited {merged[(tenant, 'rate_limited')]}, "
                    f"over-concurrency "
                    f"{merged[(tenant, 'over_concurrency')]}, "
                    f"shed {merged[(tenant, 'shed')]}")
        if failovers:
            lines.append(f"  failovers         {len(failovers)}")
            for e in failovers[-10:]:
                lines.append(f"    {e.get('op', '?')} "
                             f"{e.get('from_replica', '?')} → "
                             f"{e.get('to', '?')}")
        if rep_health:
            flips = Counter((e.get("replica", "?"), e.get("healthy"))
                            for e in rep_health)
            for (replica, healthy) in sorted(flips, key=lambda k: str(k)):
                state = "up" if healthy else "down"
                lines.append(f"  replica {replica:<14s} {state} "
                             f"x{flips[(replica, healthy)]}")
    return "\n".join(lines)
