"""Long-lived fork-based worker pool (the persistent engine backend).

The legacy engine paid fork-and-teardown per ``parallel_map`` call and
one fork *per attempt* in ``supervised_map`` — measurable setup cost on
every call, and no reuse of anything a worker warmed up (plan caches,
encoded graphs, profiled corpora).  This module keeps one pool of
workers alive across calls:

* workers inherit the mapped callable and every live cache **once**,
  copy-on-write at fork time (the same trick the legacy map used, made
  durable);
* tasks cross to workers as small pickled messages over per-worker
  duplex pipes; large numpy results come back through POSIX
  shared-memory segments instead of being pickled through the pipe
  (:data:`SHM_MIN_BYTES` threshold, recursive over tuples/lists/dicts);
* a worker that dies is detected by pipe-EOF, reported to the caller,
  and replaced — the pool heals instead of wedging (chaos-tested with
  ``worker_crash`` faults firing inside pool workers);
* the pool is transparently **restarted** whenever reuse would be
  incorrect: a different mapped callable (fork inheritance pins the
  callable at spawn time), a larger worker count, any ``REPRO_*``
  environment change (fault plans, cache roots, feature gates are read
  by workers), or a replaced multiprocessing context (tests inject
  broken ones).  In steady state — grid cells, latency-table fills,
  repeated searches over one hoisted task callable — none of these
  change and the same workers serve every call.

``REPRO_POOL=off`` disables the persistent backend; the engine then
runs its legacy one-pool-per-call / one-fork-per-attempt paths, which
stay bit-identical (determinism never depends on worker identity or
reuse).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable

from .. import faults

try:  # 3.8+; guarded so exotic builds degrade to pipe transport
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None

#: results at least this large (bytes) ride shared memory, not the pipe
SHM_MIN_BYTES = 1 << 20

#: the mapped callable, inherited by workers through the fork
_POOL_FN: Callable[[Any], Any] | None = None


def pool_enabled() -> bool:
    """Persistent-pool gate (``REPRO_POOL=off`` restores legacy forking)."""
    return os.environ.get("REPRO_POOL", "").lower() != "off"


@dataclass
class PoolStats:
    """Process-wide persistent-pool counters (benchmarks and tests)."""

    pools_started: int = 0
    workers_spawned: int = 0
    workers_respawned: int = 0
    tasks: int = 0
    shm_arrays: int = 0
    shm_bytes: int = 0

    def reset(self) -> None:
        self.pools_started = 0
        self.workers_spawned = 0
        self.workers_respawned = 0
        self.tasks = 0
        self.shm_arrays = 0
        self.shm_bytes = 0


_STATS = PoolStats()


def pool_stats() -> PoolStats:
    return _STATS


# ------------------------------------------------------- result transport
@dataclass(frozen=True)
class _ShmArray:
    """Wire descriptor for an ndarray parked in shared memory."""

    name: str
    dtype: str
    shape: tuple


def _encode_result(obj: Any) -> tuple[Any, list]:
    """Replace large ndarrays with shared-memory descriptors.

    Returns the wire object plus the created segments (the worker closes
    its handles after a successful send; the parent unlinks)."""
    import numpy as np

    if _shm_mod is None:
        return obj, []
    if (isinstance(obj, np.ndarray) and obj.nbytes >= SHM_MIN_BYTES
            and obj.dtype != object):
        seg = _shm_mod.SharedMemory(create=True, size=obj.nbytes)
        np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)[...] = obj
        return _ShmArray(seg.name, obj.dtype.str, obj.shape), [seg]
    if isinstance(obj, (tuple, list)):
        parts, segs, changed = [], [], False
        for v in obj:
            enc, s = _encode_result(v)
            changed = changed or s
            parts.append(enc)
            segs.extend(s)
        if not changed:
            return obj, []
        return (tuple(parts) if isinstance(obj, tuple) else parts), segs
    if isinstance(obj, dict):
        out, segs, changed = {}, [], False
        for k, v in obj.items():
            enc, s = _encode_result(v)
            changed = changed or s
            out[k] = enc
            segs.extend(s)
        if not changed:
            return obj, []
        return out, segs
    return obj, []


def _decode_result(obj: Any) -> Any:
    """Materialize shared-memory descriptors (copy out, then unlink)."""
    import numpy as np

    if isinstance(obj, _ShmArray):
        seg = _shm_mod.SharedMemory(name=obj.name)
        try:
            arr = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=seg.buf).copy()
        finally:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        _STATS.shm_arrays += 1
        _STATS.shm_bytes += arr.nbytes
        return arr
    if isinstance(obj, tuple):
        return tuple(_decode_result(v) for v in obj)
    if isinstance(obj, list):
        return [_decode_result(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _decode_result(v) for k, v in obj.items()}
    return obj


# --------------------------------------------------------------- the pool
def _pool_worker(conn) -> None:
    """Worker loop: serve tasks until told to stop (or killed).

    The callable arrives by fork inheritance (:data:`_POOL_FN`).  Fault
    sites fire per (index, attempt) exactly as the legacy per-attempt
    fork did, so chaos plans reproduce identically; ``worker_crash``
    kills this process outright and the parent's EOF detection takes
    over.  Task exceptions are reported and the worker lives on.
    """
    from . import engine

    engine._IN_WORKER = True
    faults.mark_worker()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            os._exit(0)
        if msg[0] == "stop":
            conn.close()
            os._exit(0)
        _, task_id, index, attempt, item, fire_faults = msg
        segs = []
        try:
            if fire_faults:
                faults.fire("worker_crash", index, attempt)
                faults.fire("cell_hang", index, attempt)
            assert _POOL_FN is not None
            wire, segs = _encode_result(_POOL_FN(item))
            conn.send((task_id, "ok", wire))
            for seg in segs:
                seg.close()
        except BaseException as exc:  # noqa: BLE001 - report, keep serving
            for seg in segs:
                try:
                    seg.close()
                    seg.unlink()
                except Exception:
                    pass
            try:
                conn.send((task_id, "err", exc))
            except Exception:
                try:
                    conn.send((task_id, "err", f"{type(exc).__name__}: {exc}"))
                except Exception:
                    os._exit(1)


class _Worker:
    __slots__ = ("proc", "conn", "task_id")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.task_id: int | None = None  # None = idle


@dataclass(frozen=True)
class PoolEvent:
    """One observation from :meth:`PersistentPool.wait`."""

    kind: str  # "result" | "crash"
    task_id: int | None
    status: str = ""  # "ok" | "err" (kind == "result")
    payload: Any = None
    exitcode: int | None = None


def _repro_env() -> tuple:
    """The worker-visible environment slice; any change forces a restart
    (workers read ``REPRO_*`` — fault plans, cache roots, gates — from
    the environment they inherited at fork)."""
    return tuple(sorted((k, v) for k, v in os.environ.items()
                        if k.startswith("REPRO_")))


class PersistentPool:
    """A fixed-size set of long-lived fork workers with crash healing."""

    def __init__(self, ctx, fn: Callable, size: int) -> None:
        self.ctx = ctx
        self.fn = fn
        self.size = size
        self.env = _repro_env()
        self.workers: list[_Worker] = []
        self._next_task = 0
        global _POOL_FN
        _POOL_FN = fn  # stays set for the pool's lifetime: respawns re-fork
        try:
            for _ in range(size):
                self._spawn()
        except BaseException:
            self.shutdown()
            raise
        _STATS.pools_started += 1

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(target=_pool_worker, args=(child_conn,),
                                daemon=True)
        proc.start()
        child_conn.close()
        w = _Worker(proc, parent_conn)
        self.workers.append(w)
        _STATS.workers_spawned += 1
        return w

    def ensure_size(self) -> None:
        """Respawn workers until the pool is back at full strength."""
        while len(self.workers) < self.size:
            self._spawn()
            _STATS.workers_respawned += 1

    def _remove(self, worker: _Worker, terminate: bool) -> int | None:
        if worker in self.workers:
            self.workers.remove(worker)
        if terminate and worker.proc.is_alive():
            worker.proc.terminate()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - stuck in kernel
            worker.proc.kill()
            worker.proc.join()
        return worker.proc.exitcode

    def kill(self, worker: _Worker) -> None:
        """Forcibly reclaim a worker (deadline enforcement)."""
        self._remove(worker, terminate=True)

    def abandon_inflight(self) -> None:
        """Kill busy workers (their results are unwanted) and heal.

        Called when a map raises mid-run: letting old tasks finish would
        leave stale results in the pipes for the next call."""
        for w in [w for w in self.workers if w.task_id is not None]:
            self._remove(w, terminate=True)
        try:
            self.ensure_size()
        except OSError:  # pragma: no cover - next get_pool restarts
            pass

    def shutdown(self) -> None:
        for w in list(self.workers):
            if w.task_id is None and w.proc.is_alive():
                try:
                    w.conn.send(("stop",))
                except OSError:
                    pass
                self._remove(w, terminate=False)
            else:
                self._remove(w, terminate=True)

    def alive(self) -> bool:
        return bool(self.workers) and all(w.proc.is_alive()
                                          for w in self.workers)

    # -- work --------------------------------------------------------------
    def idle_worker(self) -> _Worker | None:
        for w in self.workers:
            if w.task_id is None:
                return w
        return None

    def submit(self, worker: _Worker, index: int, attempt: int, item: Any,
               fire_faults: bool) -> int:
        task_id = self._next_task
        self._next_task += 1
        try:
            worker.conn.send(("task", task_id, index, attempt, item,
                              fire_faults))
        except (OSError, ValueError):
            # died between idle check and send: reclaim, let caller retry
            self._remove(worker, terminate=True)
            raise BrokenPipeError(f"pool worker {worker.proc.pid} is gone")
        worker.task_id = task_id
        _STATS.tasks += 1
        return task_id

    def wait(self, timeout: float) -> list[PoolEvent]:
        """Collect results and worker deaths, ``timeout`` seconds max.

        Watches every worker pipe (an idle worker only ever becomes
        readable at EOF, i.e. death).  Dead workers are removed — the
        caller decides when to :meth:`ensure_size` so it can account
        spawn failures."""
        conns = {w.conn: w for w in self.workers}
        events: list[PoolEvent] = []
        if not conns:
            time.sleep(min(timeout, 0.05))
            return events
        for conn in _conn_wait(list(conns), timeout=timeout):
            w = conns[conn]
            try:
                task_id, status, payload = conn.recv()
            except (EOFError, OSError):
                exitcode = self._remove(w, terminate=False)
                events.append(PoolEvent("crash", w.task_id,
                                        exitcode=exitcode))
                continue
            w.task_id = None
            if status == "ok":
                payload = _decode_result(payload)
            events.append(PoolEvent("result", task_id, status, payload))
        return events


_POOL: PersistentPool | None = None


def _shutdown_global() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(_shutdown_global)


def get_pool(fn: Callable, jobs: int) -> PersistentPool:
    """The process-wide pool, restarted only when reuse would be wrong.

    Raises whatever the multiprocessing context raises when workers
    cannot be spawned (the engine degrades to its serial paths)."""
    global _POOL
    ctx = multiprocessing.get_context("fork")
    if _POOL is not None and (
            _POOL.fn is not fn or _POOL.size < jobs
            or _POOL.ctx is not ctx or _POOL.env != _repro_env()
            or not _POOL.alive()):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = PersistentPool(ctx, fn, jobs)
    return _POOL


def map_ordered(pool: PersistentPool, items: list, jobs: int) -> list:
    """Ordered map over the pool; raises on task errors/worker deaths.

    At most ``jobs`` tasks in flight (the pool may be wider, kept warm
    for a larger caller).  A task exception re-raises in the parent; a
    worker death raises ``RuntimeError`` — callers wanting retry
    semantics use ``supervised_map``."""
    n = len(items)
    results: list[Any] = [None] * n
    next_item = 0
    done = 0
    inflight: dict[int, int] = {}  # task_id -> item index
    try:
        while done < n:
            while next_item < n and len(inflight) < jobs:
                w = pool.idle_worker()
                if w is None:
                    break
                try:
                    tid = pool.submit(w, next_item, 0, items[next_item],
                                      fire_faults=False)
                except BrokenPipeError:
                    pool.ensure_size()
                    continue
                inflight[tid] = next_item
                next_item += 1
            for ev in pool.wait(0.5):
                if ev.kind == "crash":
                    pool.ensure_size()
                    if ev.task_id is None:
                        continue  # died idle: healed, no task lost
                    idx = inflight.get(ev.task_id, -1)
                    raise RuntimeError(
                        f"pool worker died with exit code {ev.exitcode} "
                        f"while running item {idx}")
                idx = inflight.pop(ev.task_id)
                if ev.status == "ok":
                    results[idx] = ev.payload
                    done += 1
                else:
                    exc = ev.payload
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(str(exc))
    except BaseException:
        pool.abandon_inflight()
        raise
    return results
