"""Experiment profiles: smoke / fast / paper.

Predictor training in pure numpy on one core is the expensive part of the
reproduction, so the benchmark harness scales three orthogonal knobs —
model depth (which bounds stage-graph sizes and therefore corpus size),
the train-fraction grid, and the training budget.  The ``paper`` profile
is the full §VII protocol (409 GPT / 205 MoE stages, fractions 10–80 %,
500 epochs, patience 200); ``fast`` is the default for
``pytest benchmarks/``; ``smoke`` is for the test suite.

Select with ``REPRO_PROFILE=smoke|fast|paper``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..predictors.trainer import TrainConfig


@dataclass(frozen=True)
class ExperimentProfile:
    """One resolution level of the evaluation protocol."""

    name: str
    #: transformer-block count per benchmark (None = Table IV depth)
    gpt_layers: int | None
    moe_layers: int | None
    #: layer-clustering unit counts (stage corpus = U(U+1)/2 slices)
    gpt_units: int
    moe_units: int
    #: train-fraction grid of Tables V/VI
    fractions: tuple[float, ...]
    epochs: int
    patience: int
    batch_size: int
    #: Adam learning rate (paper: 1e-3; cheap profiles converge faster at 2e-3)
    lr: float = 1e-3
    #: coarser stage graphs for cheap profiles
    aggressive_fusion: bool = True
    #: microbatch sizes profiled per slice (the corpus is the cross product;
    #: None = the model config's default). Varying the microbatch multiplies
    #: corpus size without growing graphs, standing in for the paper's larger
    #: stage corpora on the cheap profiles.
    corpus_microbatches: tuple[int | None, ...] = (None,)
    #: Eqn-4 microbatch count for plan-level experiments
    n_microbatches: int = 8
    #: PredTOP profiling-phase sample fraction (§VI)
    sample_fraction: float = 0.3
    #: number of random plans for Fig 2
    fig2_plans: int = 100
    seed: int = 0

    def layers_for(self, family: str) -> int | None:
        """Depth knob per family; bert/vit reuse the gpt depth budget
        (their stage-graph sizes are in the same regime)."""
        return self.moe_layers if family == "moe" else self.gpt_layers

    def units_for(self, family: str) -> int:
        """Layer-clustering unit count per family."""
        return self.moe_units if family == "moe" else self.gpt_units

    def train_config(self, seed: int | None = None) -> TrainConfig:
        return TrainConfig(epochs=self.epochs, patience=self.patience,
                           batch_size=self.batch_size, lr=self.lr,
                           seed=self.seed if seed is None else seed)


SMOKE = ExperimentProfile(
    name="smoke",
    gpt_layers=2, moe_layers=2, gpt_units=4, moe_units=4,
    fractions=(0.5,), epochs=8, patience=8, batch_size=8,
    aggressive_fusion=True, corpus_microbatches=(2, 4),
    n_microbatches=4, fig2_plans=12,
)

FAST = ExperimentProfile(
    name="fast",
    gpt_layers=2, moe_layers=2, gpt_units=4, moe_units=4,
    fractions=(0.5, 0.8), epochs=150, patience=150, batch_size=8, lr=2e-3,
    aggressive_fusion=True, corpus_microbatches=(1, 2, 4, 8),
    n_microbatches=8, fig2_plans=100,
)

PAPER = ExperimentProfile(
    name="paper",
    gpt_layers=None, moe_layers=None, gpt_units=26, moe_units=20,
    fractions=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    epochs=500, patience=200, batch_size=32,
    aggressive_fusion=False, n_microbatches=16, fig2_plans=100,
)

PROFILES = {p.name: p for p in (SMOKE, FAST, PAPER)}


def active_profile(default: str = "fast") -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default ``fast``)."""
    name = os.environ.get("REPRO_PROFILE", default).lower()
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_PROFILE={name!r} unknown; pick from {sorted(PROFILES)}"
        ) from None
