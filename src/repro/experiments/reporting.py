"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from ..predictors.base import PREDICTOR_KINDS
from .scenarios import scenario_grid

_KIND_LABEL = {"gcn": "GCN", "gat": "GAT", "dag_transformer": "Tran"}


def render_mre_table(
    grid: dict[tuple[str, float, str], float],
    platform_name: str,
    family: str,
    fractions: tuple[float, ...],
    kinds: tuple[str, ...] = PREDICTOR_KINDS,
) -> str:
    """Render one Table V/VI half in the paper's layout.

    Rows: train-sample fraction (descending, like the paper); columns:
    scenario × predictor.  Bold-face is not reproducible in plain text, so
    the winning predictor per (row, scenario) is marked with ``*``.
    """
    scenarios = scenario_grid(platform_name)
    col_kinds = [k for k in ("gcn", "gat", "dag_transformer") if k in kinds]
    header1 = f"{'#Samples':>9s} |"
    header2 = f"{'':>9s} |"
    for sc in scenarios:
        width = 8 * len(col_kinds)
        header1 += f" {sc.label:^{width - 1}s}|"
        header2 += " " + "".join(f"{_KIND_LABEL[k]:>7s} " for k in col_kinds) + "|"
    lines = [f"MRE (%) — {family.upper()} on {platform_name}",
             header1, header2, "-" * len(header1)]
    for f in sorted(fractions, reverse=True):
        row = f"{f * 100:8.0f}% |"
        for sc in scenarios:
            vals = {k: grid.get((sc.key, f, k)) for k in col_kinds}
            present = {k: v for k, v in vals.items() if v is not None}
            best = min(present, key=present.get) if present else None
            for k in col_kinds:
                v = vals[k]
                cell = "   --  " if v is None else (
                    f"{v:6.2f}{'*' if k == best else ' '}")
                row += f" {cell}"
            row += "|"
        lines.append(row)
    return "\n".join(lines)


def render_stats(stats: dict[str, dict[str, float]], title: str) -> str:
    """Fig 8/9-style summary: mean ± std of MREs per predictor."""
    lines = [title]
    for kind in ("gcn", "gat", "dag_transformer"):
        if kind not in stats:
            continue
        s = stats[kind]
        lines.append(f"  {_KIND_LABEL[kind]:>5s}: mean {s['mean']:7.2f}%  "
                     f"std {s['std']:7.2f}%  (n={s['n']})")
    return "\n".join(lines)


def render_schedule_grid(cells, family: str, profile_name: str) -> str:
    """Schedule-registry comparison table for one benchmark family.

    Every row already passed ``ScheduleSpec.validate`` (simulator ==
    closed form), so the two latency columns are printed once.
    """
    lines = [f"Pipeline schedules — {family.upper()} ({profile_name} "
             f"profile, validated simulator == closed form)",
             f"{'schedule':>12s} {'stages':>7s} {'B':>4s} "
             f"{'latency (ms)':>13s} {'bound (ms)':>11s} {'vs 1f1b':>8s}"]
    by_name = {c.schedule: c for c in cells}
    base = by_name.get("1f1b")
    for name in sorted(by_name):
        c = by_name[name]
        rel = (c.simulated / base.simulated
               if base and base.simulated else float("nan"))
        lines.append(
            f"{c.schedule:>12s} {c.n_stages:7d} {c.n_microbatches:4d} "
            f"{c.simulated * 1e3:13.3f} {c.lower_bound * 1e3:11.3f} "
            f"{rel:7.3f}x")
    return "\n".join(lines)


def render_use_case(result, baseline: str = "partial") -> str:
    """Fig 10a/b-style comparison table for one benchmark."""
    lines = [f"Use case — {result.family.upper()}",
             f"{'approach':>26s} {'opt cost (s)':>14s} {'vs partial':>11s}"
             f" {'plan latency (ms)':>18s} {'vs partial':>11s}"]
    base = result.results.get(baseline)
    for a, r in result.results.items():
        cost_rel = (r.optimization_cost / base.optimization_cost
                    if base and base.optimization_cost else float("nan"))
        lat_rel = (r.true_iteration_latency / base.true_iteration_latency
                   if base and base.true_iteration_latency else float("nan"))
        lines.append(
            f"{a:>26s} {r.optimization_cost:14.1f} {cost_rel:10.2f}x"
            f" {r.true_iteration_latency * 1e3:18.1f} {lat_rel:10.3f}x")
    return "\n".join(lines)
