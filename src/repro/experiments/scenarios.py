"""The (platform, mesh, configuration) evaluation grid of Tables II/III/V/VI.

Each *scenario* is one runtime configuration ``(m, p)``: mesh index from
Table II and parallelism-configuration index from Table III, on one of the
two platforms.  Platform 1 (2×A40, one node) supports meshes 1–2 → 3
scenarios; Platform 2 (2 nodes × 2×A5500) supports meshes 1–3 → 6
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.mesh import DeviceMesh
from ..cluster.platforms import PARALLEL_CONFIGS, Platform, get_platform


@dataclass(frozen=True)
class Scenario:
    """One runtime configuration (platform, mesh index, config index)."""

    platform_name: str
    mesh_index: int
    config_index: int
    dp: int
    mp: int
    #: pipeline schedule used for plan-level latencies (registry name);
    #: the default keeps every pre-registry key and golden CSV unchanged
    schedule: str = "1f1b"

    @property
    def key(self) -> str:
        base = f"{self.platform_name}-m{self.mesh_index}c{self.config_index}"
        if self.schedule != "1f1b":
            base += f"-{self.schedule}"
        return base

    @property
    def label(self) -> str:
        return f"Mesh {self.mesh_index} Conf {self.config_index}"

    def platform(self) -> Platform:
        return get_platform(self.platform_name)

    def mesh(self) -> DeviceMesh:
        return self.platform().mesh(self.mesh_index)


def scenario_grid(platform_name: str,
                  schedule: str = "1f1b") -> list[Scenario]:
    """All Table V/VI scenarios for one platform, in table column order."""
    platform = get_platform(platform_name)
    out: list[Scenario] = []
    for m in platform.mesh_indices():
        for p, (dp, mp) in sorted(PARALLEL_CONFIGS[m].items()):
            out.append(Scenario(platform_name, m, p, dp, mp, schedule))
    return out


def all_scenarios() -> list[Scenario]:
    """Platform 1's 3 scenarios followed by Platform 2's 6."""
    return scenario_grid("platform1") + scenario_grid("platform2")
