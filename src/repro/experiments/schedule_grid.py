"""Per-(family, schedule) pipeline-latency cells, simulator-vs-closed-form.

Each cell profiles the benchmark's per-unit stage latencies on a single
GPU (platform 2, mesh 1, ``dp=mp=1`` — the Table-III baseline
configuration), then evaluates one registered pipeline schedule on that
stage vector: the closed-form latency, the event-driven simulation, and
the schedule's lower bound.  ``ScheduleSpec.validate`` runs inside every
cell, so a grid that completes *is* the validation contract — any
simulator/closed-form disagreement fails the cell and surfaces through
the fault-tolerant engine's failure accounting.

Cells fan out through :func:`supervised_map` like the Table V/VI grids
(crash/hang/exception supervision, run-manifest journaling), which also
puts the new model families (BERT, ViT) on the chaos-grid CI path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

from ..cluster.platforms import get_platform
from ..runtime.schedules import get_schedule, schedule_names
from .cache import global_cache
from .corpus import benchmark_setup
from .engine import CellFailure, n_jobs, supervised_map
from .manifest import append_event
from .profiles import ExperimentProfile

#: the runtime configuration every cell profiles stages on
_PLATFORM, _MESH, _DP, _MP = "platform2", 1, 1, 1


@dataclass(frozen=True)
class ScheduleCell:
    """One validated (family, schedule) pipeline-latency evaluation."""

    family: str
    schedule: str
    n_stages: int
    n_microbatches: int
    stage_times: tuple[float, ...]
    closed_form: float
    simulated: float
    lower_bound: float
    #: events emitted by the simulation (n_stages x B x phases-per-pass)
    n_events: int


@dataclass
class ScheduleGridReport:
    """Outcome of one schedule-grid run."""

    cells: dict[tuple[str, str], ScheduleCell]
    failures: list[CellFailure]
    n_cells: int
    attempts: int
    wall_seconds: float
    mode: str

    @property
    def completed(self) -> int:
        return self.n_cells - len(self.failures)


def stage_time_vector(family: str,
                      profile: ExperimentProfile) -> tuple[float, ...]:
    """Per-unit stage latencies of one benchmark on the baseline config."""
    setup = benchmark_setup(family, profile)
    mesh = get_platform(_PLATFORM).mesh(_MESH)
    times = []
    for u in range(setup.clustering.n_units):
        s, e = setup.clustering.slice_range(u, u + 1)
        times.append(setup.profiler.profile_stage(s, e, mesh, _DP,
                                                  _MP).latency)
    return tuple(times)


def run_schedule_cell(family: str, schedule: str,
                      profile: ExperimentProfile) -> ScheduleCell:
    """Profile one family's stages and validate one schedule on them."""
    spec = get_schedule(schedule)
    times = stage_time_vector(family, profile)
    B = profile.n_microbatches
    # asserts simulated == closed form and simulated >= lower bound
    spec.validate(list(times), B)
    sim = spec.simulate(list(times), B)
    return ScheduleCell(
        family=family,
        schedule=spec.name,
        n_stages=len(times),
        n_microbatches=B,
        stage_times=times,
        closed_form=spec.closed_form(list(times), B),
        simulated=sim.makespan,
        lower_bound=spec.lower_bound(list(times), B),
        n_events=len(sim.events),
    )


def run_schedule_grid(
    families: Sequence[str],
    profile: ExperimentProfile,
    schedules: Sequence[str] | None = None,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
) -> ScheduleGridReport:
    """Run every (family, schedule) cell through the supervised engine."""
    schedules = tuple(schedules) if schedules else schedule_names()
    cells = [(family, schedule)
             for family in families for schedule in schedules]
    labels = [f"schedules/{family}/{schedule}"
              for (family, schedule) in cells]
    jobs = n_jobs() if jobs is None else max(1, jobs)
    cache = global_cache()
    if cache.root is not None:
        cache.reap_stale()
    run_id = f"schedules-{profile.name}-{os.getpid()}"
    append_event(cache.root, "grid_start", run=run_id, cells=len(cells),
                 jobs=jobs)
    if jobs > 1:
        # profile each family's stage vector once in the parent so forked
        # workers inherit the profiler memo copy-on-write
        for family in dict.fromkeys(family for (family, _) in cells):
            stage_time_vector(family, profile)
    start = time.perf_counter()
    outcome = supervised_map(
        lambda cell: run_schedule_cell(cell[0], cell[1], profile),
        cells, jobs, timeout=timeout, retries=retries, labels=labels,
        manifest_root=cache.root, run_id=run_id)
    out = {(c.family, c.schedule): c
           for c in outcome.results if c is not None}
    report = ScheduleGridReport(out, outcome.failures, len(cells),
                                outcome.attempts,
                                time.perf_counter() - start, outcome.mode)
    append_event(cache.root, "grid_done", run=run_id,
                 completed=report.completed, failed=len(report.failures),
                 attempts=report.attempts, mode=report.mode,
                 wall_seconds=round(report.wall_seconds, 3))
    return report
