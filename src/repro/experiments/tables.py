"""Table V/VI harness: MRE grids over scenarios × train fractions × models.

One *cell* = train one predictor kind on one fraction of one scenario's
corpus and measure test MRE (Eqn 5), following §VIII-A: ``f`` of the
samples train, a separate 10 % validate, the remainder test.  Cells are
memoized in the results cache keyed by (profile, benchmark, scenario,
fraction, kind, seed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..predictors.base import PREDICTOR_KINDS, LatencyPredictor
from ..predictors.dataset import split_dataset
from ..predictors.trust import RETRY_SEED_OFFSET
from .cache import global_cache
from .corpus import stage_corpus
from .manifest import append_event
from .profiles import ExperimentProfile
from .scenarios import Scenario


@dataclass(frozen=True)
class CellResult:
    scenario_key: str
    fraction: float
    kind: str
    mre: float
    epochs_run: int
    train_seconds: float
    #: the (final) fit ended in a detected divergence
    diverged: bool = False
    #: the first fit diverged and the cell was retrained with a fresh seed
    retrained: bool = False


def cell_key(profile: ExperimentProfile, family: str, scenario: Scenario,
             fraction: float, kind: str, seed: int) -> str:
    return (f"mre/{profile.name}/{family}/{scenario.key}/"
            f"f{fraction:.2f}/{kind}/s{seed}")


def run_cell(
    family: str,
    scenario: Scenario,
    fraction: float,
    kind: str,
    profile: ExperimentProfile,
    seed: int | None = None,
    use_cache: bool = True,
) -> CellResult:
    """Train + evaluate one grid cell (or return its cached result)."""
    seed = profile.seed if seed is None else seed
    cache = global_cache()
    key = cell_key(profile, family, scenario, fraction, kind, seed)
    if use_cache and key in cache:
        v = cache.get(key)
        return CellResult(scenario.key, fraction, kind,
                          v["mre"], v["epochs"], v["seconds"],
                          v.get("diverged", False), v.get("retrained", False))
    if os.environ.get("REPRO_ONLY_CACHED"):
        # partial-render mode: report the cell as missing rather than
        # spending minutes training it inside a reporting pass
        return CellResult(scenario.key, fraction, kind, float("nan"), 0, 0.0)

    samples = stage_corpus(family, scenario, profile)
    split = split_dataset(samples, fraction, 0.1, seed)
    predictor = LatencyPredictor(kind, seed=seed)
    result = predictor.fit(split.train, split.val, profile.train_config(seed))
    retrained = False
    if result.diverged:
        # fresh-seed retraining pass (attempt 1, so a transient
        # ``train_diverge`` chaos rule does not refire); if this fit
        # diverges too the best-so-far state still evaluates, and the
        # result is flagged so reports can surface it
        retrained = True
        append_event(cache.root, "trust_guard", site="train_diverge",
                     action="retrain", key=key)
        wall = result.wall_seconds
        predictor = LatencyPredictor(kind, seed=seed + RETRY_SEED_OFFSET)
        result = predictor.fit(split.train, split.val,
                               profile.train_config(seed + RETRY_SEED_OFFSET),
                               fault_attempt=1)
        result.wall_seconds += wall
        if result.diverged:
            append_event(cache.root, "trust_guard", site="train_diverge",
                         action="degraded", key=key)
    mre = predictor.evaluate_mre(split.test)
    cache.set(key, {"mre": mre, "epochs": result.epochs_run,
                    "seconds": result.wall_seconds,
                    "diverged": result.diverged, "retrained": retrained})
    return CellResult(scenario.key, fraction, kind, mre,
                      result.epochs_run, result.wall_seconds,
                      result.diverged, retrained)


def mre_grid(
    platform_name: str,
    family: str,
    profile: ExperimentProfile,
    kinds: tuple[str, ...] = PREDICTOR_KINDS,
    fractions: tuple[float, ...] | None = None,
    jobs: int | None = None,
) -> dict[tuple[str, float, str], float]:
    """One full Table V/VI half: {(scenario, fraction, kind): MRE%}.

    Cells run through the experiment engine: serial when ``jobs`` (or
    ``REPRO_JOBS``) resolves to 1, fanned across a process pool
    otherwise, with identical results either way.
    """
    from .engine import run_grid

    return run_grid(platform_name, family, profile, kinds,
                    fractions or profile.fractions, jobs)


def grid_statistics(
    grid: dict[tuple[str, float, str], float],
    kinds: tuple[str, ...] = PREDICTOR_KINDS,
) -> dict[str, dict[str, float]]:
    """Fig 8/9 aggregation: mean and std of MREs per predictor kind."""
    stats: dict[str, dict[str, float]] = {}
    for kind in kinds:
        vals = np.array([v for (s, f, k), v in grid.items() if k == kind])
        if len(vals) == 0:
            continue
        stats[kind] = {"mean": float(vals.mean()), "std": float(vals.std()),
                       "n": int(len(vals))}
    return stats


def best_kind_share(
    grid: dict[tuple[str, float, str], float],
    kinds: tuple[str, ...] = PREDICTOR_KINDS,
) -> dict[str, float]:
    """Fraction of (scenario, fraction) cells each kind wins (lowest MRE)."""
    cells: dict[tuple[str, float], dict[str, float]] = {}
    for (s, f, k), v in grid.items():
        cells.setdefault((s, f), {})[k] = v
    wins = {k: 0 for k in kinds}
    for cell in cells.values():
        wins[min(cell, key=cell.get)] += 1
    total = max(1, len(cells))
    return {k: w / total for k, w in wins.items()}
