"""Deterministic fault-injection harness (``REPRO_FAULTS``).

Chaos testing for the experiment engine, the results cache, and the
predictor trainer: seeded, reproducible injection of worker crashes,
cell hangs, transient IO errors, shard corruption, and training
divergence.  See :mod:`repro.faults.spec` for the grammar and
:mod:`repro.faults.inject` for the injection points' behavior.
"""

from .inject import (
    ENV_VAR,
    InjectedFault,
    active_plan,
    check,
    corrupt_file,
    faults_active,
    fire,
    garbage_predictions,
    mark_worker,
)
from .spec import (CRASH_EXIT_CODE, SITE_SUMMARIES, SITES, FaultRule,
                   FaultSpecError, parse_faults)

__all__ = [
    "ENV_VAR", "SITES", "SITE_SUMMARIES", "CRASH_EXIT_CODE",
    "FaultRule", "FaultSpecError", "parse_faults",
    "InjectedFault", "active_plan", "faults_active",
    "check", "fire", "corrupt_file", "garbage_predictions", "mark_worker",
]
