"""Deterministic fault injection driven by ``REPRO_FAULTS``.

The harness calls :func:`check` ("would a fault fire here?") or
:func:`fire` ("fire it, with the site's built-in behavior") at a handful
of injection points; with no plan configured both are near-free no-ops,
so the points stay compiled into production paths.

Behaviors of :func:`fire`:

* ``worker_crash`` — inside an engine worker process the whole process
  dies via ``os._exit`` (no exception crosses the pipe, exactly like a
  segfault or OOM kill); on the serial path it raises
  :class:`InjectedFault` instead so the caller's retry loop sees a
  normal exception;
* ``cell_hang`` — sleeps the rule's ``secs`` so a supervisor timeout
  must reclaim the worker;
* ``io_error`` — raises ``OSError`` (transient, absorbed by bounded
  write retries);
* ``predictor_error`` — raises :class:`InjectedFault` so the search's
  escalation policy must absorb a throwing predictor;
* ``shard_corrupt`` / ``train_diverge`` / ``predict_garbage`` —
  decision-only sites: callers use :func:`check` and apply the damage
  themselves (:func:`corrupt_file`, a NaN loss,
  :func:`garbage_predictions`);
* ``conn_drop`` / ``slow_client`` / ``request_garbage`` — decision-only
  sites consulted by the serving load generator
  (:mod:`repro.perf.servebench`): the *client* misbehaves per the plan
  and the daemon must absorb it;
* ``replica_down`` / ``replica_slow`` — decision-only sites for router
  fleets: the bench's chaos controller kills/restarts the replica at
  the plan's request index, and a gray replica
  (:class:`~repro.serving.server.ReproServer` consulting its
  ``replica_ordinal``) stalls requests while health stays fast.

Plans are parsed once per distinct ``REPRO_FAULTS`` value and decisions
are pure functions of ``(rule, index, attempt)``, so parent, forked
workers, and a rerun of the same command all agree on exactly which
attempts fault.
"""

from __future__ import annotations

import os
import time

from .spec import CRASH_EXIT_CODE, FaultRule, _unit_hash, parse_faults

ENV_VAR = "REPRO_FAULTS"

#: parse cache: {spec string: rules}
_PLANS: dict[str, tuple[FaultRule, ...]] = {"": ()}

#: set in engine worker processes so ``worker_crash`` hard-kills there
_IN_WORKER = False


class InjectedFault(RuntimeError):
    """An injected fault surfacing as an in-process exception."""


def mark_worker(flag: bool = True) -> None:
    """Tell the injector it is running inside an engine worker process."""
    global _IN_WORKER
    _IN_WORKER = flag


def active_plan() -> tuple[FaultRule, ...]:
    """The parsed rules for the current ``REPRO_FAULTS`` value."""
    spec = os.environ.get(ENV_VAR, "")
    plan = _PLANS.get(spec)
    if plan is None:
        plan = _PLANS[spec] = parse_faults(spec)
    return plan


def faults_active() -> bool:
    return bool(active_plan())


def check(site: str, index: int, attempt: int = 0) -> FaultRule | None:
    """The first rule firing at ``(site, index, attempt)``, or ``None``."""
    for rule in active_plan():
        if rule.site == site and rule.fires(index, attempt):
            return rule
    return None


def fire(site: str, index: int, attempt: int = 0) -> None:
    """Consult the plan and perform the site's built-in fault behavior."""
    rule = check(site, index, attempt)
    if rule is None:
        return
    if site == "worker_crash":
        if _IN_WORKER:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(
            f"injected worker_crash at index {index} attempt {attempt}")
    if site == "cell_hang":
        time.sleep(rule.secs)
        return
    if site == "io_error":
        raise OSError(
            f"injected transient io_error at index {index} attempt {attempt}")
    if site == "predictor_error":
        raise InjectedFault(
            f"injected predictor_error at index {index} attempt {attempt}")
    raise InjectedFault(f"site {site!r} is decision-only; use check()")


def garbage_predictions(values, index: int, rule: FaultRule):
    """Deterministically scramble a prediction vector (a lying predictor).

    Each value is multiplied or divided by 1000 depending on a stable
    hash of ``(rule seed, index, position)`` — far outside any physical
    latency envelope, so a bounds guard must catch every element, while
    the damage is a pure function of the rule and coordinates (a chaos
    run reproduces exactly).
    """
    import numpy as np

    arr = np.array(values, dtype=np.float64, copy=True)
    flat = arr.reshape(-1)
    for j in range(flat.size):
        draw = _unit_hash(f"{rule.seed}/predict_garbage/{index}/{j}")
        flat[j] *= 1000.0 if draw < 0.5 else 1.0 / 1000.0
    return arr


def corrupt_file(path: os.PathLike | str) -> None:
    """Scribble over ``path`` in place (simulated torn write / bitrot).

    The damage keeps the file non-empty but breaks both JSON framing and
    any content checksum, so readers must detect — not mask — it.
    """
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.write(b'\xde\xad{"corrupt')
        fh.truncate(max(12, size // 2))
        fh.flush()
        os.fsync(fh.fileno())
