"""Fault-rule grammar for ``REPRO_FAULTS``.

A fault plan is a ``;``-separated list of rules, each naming one
injection *site* plus optional ``key=value`` parameters::

    REPRO_FAULTS="worker_crash:at=1;cell_hang:at=3,secs=30;io_error:p=0.5,seed=7"

Sites (where the harness consults the plan):

``worker_crash``   an engine worker dies abruptly (``os._exit``) before
                   computing its cell — or raises in the serial path;
``cell_hang``      the worker sleeps ``secs`` (default 3600) so the
                   supervisor's per-cell timeout must kill it;
``io_error``       a transient ``OSError`` on a results-cache shard
                   write (the cache's bounded write retry absorbs it);
``shard_corrupt``  the just-published shard file is scribbled over,
                   exercising checksum quarantine on the next read;
``train_diverge``  the training loss of one epoch becomes NaN,
                   exercising the trainer's divergence guard;
``predict_garbage``  a predictor's output vector is deterministically
                   scrambled (each value multiplied or divided by 1000),
                   exercising the trust layer's bounds guards;
``predictor_error``  the predictor raises at inference time, exercising
                   the search's analytical-fallback escalation;
``conn_drop``      a serving-bench client closes its connection right
                   after sending a request (the daemon must absorb the
                   broken pipe, not crash or leak the slot);
``slow_client``    a serving-bench client dribbles its request bytes
                   slower than the server's read timeout (slow-loris),
                   exercising per-connection read deadlines;
``request_garbage``  a serving-bench client sends a malformed payload
                   instead of JSON, exercising the protocol layer's
                   error responses;
``replica_down``   the serving-bench chaos controller hard-kills one
                   router replica at request index ``at`` and restarts
                   it later (the router must fail the traffic over with
                   zero unanswered requests);
``replica_slow``   a router replica (``at`` = replica ordinal) turns
                   gray: health answers stay fast but every real
                   request stalls ``secs``, so the router must fail
                   over on the request deadline, not the health check.

Common parameters:

``at``        ``|``-separated indices the rule covers (cell index for the
              engine sites, shard number for the cache sites, epoch for
              ``train_diverge``, submesh/call index for the predictor
              sites); omitted = every index;
``attempts``  ``|``-separated attempt numbers the rule fires on
              (default ``0`` — only the first try, so retries succeed);
              ``*`` = every attempt;
``p``         firing probability in [0, 1], decided by a deterministic
              hash of ``(seed, site, index, attempt)`` (default 1);
``seed``      integer feeding that hash (default 0);
``secs``      ``cell_hang`` / ``replica_slow``: how long the hang or
              per-request stall sleeps.

Every decision is a pure function of the rule and the ``(index,
attempt)`` coordinates — no wall clock, no shared counters — so a chaos
run is exactly reproducible across processes and reruns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

SITES = ("worker_crash", "cell_hang", "io_error", "shard_corrupt",
         "train_diverge", "predict_garbage", "predictor_error",
         "conn_drop", "slow_client", "request_garbage",
         "replica_down", "replica_slow")

#: one-line description per site (``repro info`` lists these)
SITE_SUMMARIES = {
    "worker_crash": "an engine worker dies abruptly before its cell",
    "cell_hang": "a worker sleeps past the supervisor's cell timeout",
    "io_error": "a transient OSError on a results-cache shard write",
    "shard_corrupt": "a published cache shard is scribbled over",
    "train_diverge": "one training epoch's loss becomes NaN",
    "predict_garbage": "a predictor's output vector is scrambled",
    "predictor_error": "the predictor raises at inference time",
    "conn_drop": "a serving client drops its connection mid-request",
    "slow_client": "a serving client dribbles bytes (slow-loris)",
    "request_garbage": "a serving client sends a malformed payload",
    "replica_down": "a router replica is hard-killed mid-run, then restarted",
    "replica_slow": "a replica turns gray: fast health, stalled requests",
}

#: exit status an injected worker crash dies with (visible in manifests)
CRASH_EXIT_CODE = 73


class FaultSpecError(ValueError):
    """Malformed ``REPRO_FAULTS`` string."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a fault plan."""

    site: str
    #: indices covered (None = all)
    at: frozenset[int] | None = None
    #: attempt numbers the rule fires on (None = all)
    attempts: frozenset[int] | None = field(default_factory=lambda: frozenset({0}))
    p: float = 1.0
    seed: int = 0
    #: hang duration for ``cell_hang``
    secs: float = 3600.0

    def fires(self, index: int, attempt: int = 0) -> bool:
        """Deterministic: does this rule fire at ``(index, attempt)``?"""
        if self.at is not None and index not in self.at:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.p >= 1.0:
            return True
        draw = _unit_hash(f"{self.seed}/{self.site}/{index}/{attempt}")
        return draw < self.p


def _unit_hash(token: str) -> float:
    """Stable hash of ``token`` into [0, 1)."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _int_set(text: str, key: str) -> frozenset[int]:
    try:
        return frozenset(int(part) for part in text.split("|") if part != "")
    except ValueError:
        raise FaultSpecError(f"{key}={text!r} is not a |-separated int list"
                             ) from None


def parse_faults(spec: str) -> tuple[FaultRule, ...]:
    """Parse a ``REPRO_FAULTS`` string into rules (empty string = none)."""
    rules: list[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, _, params = chunk.partition(":")
        site = site.strip()
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; known: {', '.join(SITES)}")
        kwargs: dict = {}
        for pair in filter(None, (p.strip() for p in params.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise FaultSpecError(f"expected key=value, got {pair!r}")
            key = key.strip()
            value = value.strip()
            if key == "at":
                kwargs["at"] = _int_set(value, "at")
            elif key == "attempts":
                kwargs["attempts"] = (None if value == "*"
                                      else _int_set(value, "attempts"))
            elif key == "p":
                try:
                    kwargs["p"] = float(value)
                except ValueError:
                    raise FaultSpecError(f"p={value!r} is not a float") from None
                if not 0.0 <= kwargs["p"] <= 1.0:
                    raise FaultSpecError(f"p={value} outside [0, 1]")
            elif key == "seed":
                try:
                    kwargs["seed"] = int(value)
                except ValueError:
                    raise FaultSpecError(f"seed={value!r} is not an int") from None
            elif key == "secs":
                try:
                    kwargs["secs"] = float(value)
                except ValueError:
                    raise FaultSpecError(f"secs={value!r} is not a float") from None
            else:
                raise FaultSpecError(f"unknown fault parameter {key!r}")
        rules.append(FaultRule(site=site, **kwargs))
    return tuple(rules)
