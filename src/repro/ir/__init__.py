"""Tensor-level operator-graph IR (the jaxpr-equivalent substrate).

Public surface:

* :class:`Graph`, :class:`Node`, :class:`TensorSpec` — the DAG itself;
* :class:`GraphBuilder`, :class:`Var` — tracing-style construction;
* :func:`build_training_graph` — forward → forward+backward+update;
* :func:`prune_graph` / :func:`fuse_elementwise` — §IV-B4 preprocessing;
* :func:`reachability_mask` / :func:`node_depths` — DAGRA / DAGPE inputs;
* :func:`graph_features` — Table-I node features.
"""

from .autodiff import build_training_graph, count_parameters
from .builder import GraphBuilder, Var, broadcast_shapes
from .dtypes import ALL_DTYPES, DType, dtype, dtype_index, promote
from .features import FEATURE_DIM, MAX_RANK, graph_features, node_features
from .fusion import FusionStats, fuse_elementwise
from .graph import NODE_TYPES, Graph, Node, TensorSpec
from .ops import OP_TYPES, OpDef, node_bytes, node_flops, op_def, op_index
from .pruning import prunable_nodes, prune_graph, pruning_ratio
from .reachability import (
    ancestor_matrix,
    node_depths,
    reachability_mask,
    undirected_adjacency,
)
from .serialize import graph_from_dict, graph_to_dict
from .structure import (
    RepeatedBlock,
    communication_free_groups,
    context_signatures,
    propagation_free_chains,
    repeated_blocks,
)

__all__ = [
    "ALL_DTYPES", "DType", "dtype", "dtype_index", "promote",
    "Graph", "Node", "TensorSpec", "NODE_TYPES",
    "GraphBuilder", "Var", "broadcast_shapes",
    "build_training_graph", "count_parameters",
    "prunable_nodes", "prune_graph", "pruning_ratio",
    "FusionStats", "fuse_elementwise",
    "ancestor_matrix", "reachability_mask", "node_depths",
    "undirected_adjacency",
    "FEATURE_DIM", "MAX_RANK", "graph_features", "node_features",
    "OP_TYPES", "OpDef", "op_def", "op_index", "node_flops", "node_bytes",
    "graph_from_dict", "graph_to_dict",
    "RepeatedBlock", "context_signatures", "communication_free_groups",
    "propagation_free_chains", "repeated_blocks",
]
