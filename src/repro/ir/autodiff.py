"""Training-graph expansion (reverse-mode differentiation on the IR).

Profiled stage latencies in the paper are *training* latencies: forward,
backward, and parameter update all execute on the mesh.  This pass takes a
forward stage DAG and appends the backward equations in reverse topological
order, plus (optionally) Adam-style update equations per trainable
parameter, producing the graph whose cost the runtime simulator measures.

The expansion is **cost-faithful**: every gradient equation has the exact
output shape/dtype of the value it differentiates and the FLOP count of the
real VJP (e.g. each forward ``dot_general`` spawns two backward
``dot_general`` ops of equal FLOPs).  The graphs are never executed
numerically, so no numerical VJP check is needed or claimed; structural
properties (shapes, fan-in accumulation, reverse-topological layout) are
exercised by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .dtypes import INT32
from .graph import Graph, Node, TensorSpec
from .ops import op_def

#: Ops whose inputs receive no gradient (integer/index/boolean producers).
NON_DIFFERENTIABLE = {"compare", "argmax", "iota", "one_hot"}


@dataclass
class _Ctx:
    """Mutable state threaded through the expansion."""

    graph: Graph  # the output (training) graph, seeded with the forward nodes
    grads: dict[int, list[int]]  # forward node id -> pending grad node ids


def _spec(g: Graph, nid: int) -> TensorSpec:
    return g.nodes[nid].out


def _emit(ctx: _Ctx, op: str, inputs: tuple[int, ...], out: TensorSpec,
          params: dict | None = None, name: str = "") -> int:
    return ctx.graph.add_node(op, inputs, out, "operator", params or {}, name).id


def _accumulate(ctx: _Ctx, nid: int) -> int | None:
    """Sum all pending gradient contributions for forward node ``nid``."""
    parts = ctx.grads.get(nid)
    if not parts:
        return None
    total = parts[0]
    for p in parts[1:]:
        total = _emit(ctx, "add", (total, p), _spec(ctx.graph, nid), name="grad_acc")
    return total


def _push(ctx: _Ctx, nid: int, grad: int) -> None:
    ctx.grads.setdefault(nid, []).append(grad)


def _unbroadcast(ctx: _Ctx, grad: int, target: TensorSpec) -> int:
    """Reduce a broadcasted gradient back to the operand's shape."""
    gspec = _spec(ctx.graph, grad)
    if gspec.shape == target.shape:
        return grad
    # sum over leading extra dims, then over dims that were broadcast from 1
    extra = len(gspec.shape) - len(target.shape)
    axes = list(range(extra))
    for i, (gs, ts) in enumerate(zip(gspec.shape[extra:], target.shape)):
        if ts == 1 and gs != 1:
            axes.append(extra + i)
    g = grad
    if axes:
        g = _emit(ctx, "reduce_sum", (g,), TensorSpec(target.shape, gspec.dtype),
                  params={"axes": tuple(axes)}, name="grad_unbroadcast")
    if _spec(ctx.graph, g).shape != target.shape:
        g = _emit(ctx, "reshape", (g,), TensorSpec(target.shape, gspec.dtype),
                  name="grad_reshape")
    return g


def _dot_contract(out: TensorSpec, k: int, operand: TensorSpec) -> int:
    """Contracted extent giving the backward dot the same FLOPs as forward."""
    if operand.size == 0:
        return 1
    return max(1, round(out.size * k / operand.size))


def _backprop_node(ctx: _Ctx, node: Node, grad: int, needs: list[bool]) -> None:
    """Emit VJP equations for one forward node, pushing operand grads."""
    g = ctx.graph
    ins = [g.nodes[i].out for i in node.inputs]
    op = node.op

    def want(i: int) -> bool:
        return needs[node.inputs[i]] and g.nodes[node.inputs[i]].out.dtype.kind == "f"

    if op == "dot_general":
        k = int(node.params.get("contract", 1))
        if want(0):
            da = _emit(ctx, "dot_general", (grad, node.inputs[1]), ins[0],
                       params={"contract": _dot_contract(node.out, k, ins[0])},
                       name="grad_dot_lhs")
            _push(ctx, node.inputs[0], da)
        if want(1):
            db = _emit(ctx, "dot_general", (node.inputs[0], grad), ins[1],
                       params={"contract": _dot_contract(node.out, k, ins[1])},
                       name="grad_dot_rhs")
            _push(ctx, node.inputs[1], db)
        return

    if op in ("add", "sub"):
        if want(0):
            _push(ctx, node.inputs[0], _unbroadcast(ctx, grad, ins[0]))
        if want(1):
            gb = grad if op == "add" else _emit(ctx, "neg", (grad,), node.out,
                                                name="grad_neg")
            _push(ctx, node.inputs[1], _unbroadcast(ctx, gb, ins[1]))
        return

    if op == "mul":
        if want(0):
            da = _emit(ctx, "mul", (grad, node.inputs[1]), node.out, name="grad_mul")
            _push(ctx, node.inputs[0], _unbroadcast(ctx, da, ins[0]))
        if want(1):
            db = _emit(ctx, "mul", (grad, node.inputs[0]), node.out, name="grad_mul")
            _push(ctx, node.inputs[1], _unbroadcast(ctx, db, ins[1]))
        return

    if op == "div":
        if want(0):
            da = _emit(ctx, "div", (grad, node.inputs[1]), node.out, name="grad_div")
            _push(ctx, node.inputs[0], _unbroadcast(ctx, da, ins[0]))
        if want(1):
            t = _emit(ctx, "mul", (grad, node.id), node.out, name="grad_div")
            db = _emit(ctx, "div", (t, node.inputs[1]), node.out, name="grad_div")
            dbn = _emit(ctx, "neg", (db,), node.out, name="grad_div")
            _push(ctx, node.inputs[1], _unbroadcast(ctx, dbn, ins[1]))
        return

    if op in ("max", "min"):
        mask = _emit(ctx, "compare", (node.inputs[0], node.inputs[1]),
                     TensorSpec(node.out.shape, node.out.dtype),
                     params={"direction": "ge" if op == "max" else "le"},
                     name="grad_mask")
        if want(0):
            da = _emit(ctx, "mul", (grad, mask), node.out, name="grad_maxmin")
            _push(ctx, node.inputs[0], _unbroadcast(ctx, da, ins[0]))
        if want(1):
            db = _emit(ctx, "mul", (grad, mask), node.out, name="grad_maxmin")
            _push(ctx, node.inputs[1], _unbroadcast(ctx, db, ins[1]))
        return

    if op == "pow":
        if want(0):
            t = _emit(ctx, "pow", (node.inputs[0], node.inputs[1]), node.out,
                      name="grad_pow")
            da = _emit(ctx, "mul", (grad, t), node.out, name="grad_pow")
            _push(ctx, node.inputs[0], _unbroadcast(ctx, da, ins[0]))
        return

    # ---- unary elementwise: one or two elementwise ops each -----------------
    unary = {
        "neg": ("neg", 1), "exp": ("mul", 1), "log": ("div", 1),
        "tanh": ("mul", 2), "erf": ("mul", 2), "logistic": ("mul", 2),
        "sqrt": ("div", 1), "rsqrt": ("mul", 2), "abs": ("mul", 1),
        "sign": (None, 0),
    }
    if op in unary:
        kind, n_ops = unary[op]
        if kind is None or not want(0):
            return
        cur = grad
        for j in range(n_ops):
            # pair grad with the forward value to keep fan-in realistic
            other = node.id if j == 0 else node.inputs[0]
            cur = _emit(ctx, kind, (cur, other), TensorSpec(ins[0].shape, ins[0].dtype),
                        name=f"grad_{op}")
        _push(ctx, node.inputs[0], cur)
        return

    if op == "select":
        for idx in (1, 2):
            if needs[node.inputs[idx]] and ins[idx].dtype.kind == "f":
                d = _emit(ctx, "mul", (grad, node.inputs[0]), node.out,
                          name="grad_select")
                _push(ctx, node.inputs[idx], _unbroadcast(ctx, d, ins[idx]))
        return

    if op == "reduce_sum":
        if want(0):
            d = _emit(ctx, "broadcast_in_dim", (grad,), ins[0],
                      name="grad_reduce_sum")
            _push(ctx, node.inputs[0], d)
        return

    if op in ("reduce_max", "reduce_min"):
        if want(0):
            bcast = _emit(ctx, "broadcast_in_dim", (node.id,), ins[0],
                          name="grad_reduce_bcast")
            mask = _emit(ctx, "compare", (node.inputs[0], bcast),
                         TensorSpec(ins[0].shape, ins[0].dtype),
                         params={"direction": "ge"}, name="grad_reduce_mask")
            gb = _emit(ctx, "broadcast_in_dim", (grad,), ins[0],
                       name="grad_reduce_bcast")
            d = _emit(ctx, "mul", (gb, mask), ins[0], name="grad_reduce")
            _push(ctx, node.inputs[0], d)
        return

    if op == "cumsum":
        if want(0):
            d = _emit(ctx, "cumsum", (grad,), ins[0],
                      params={"axis": node.params.get("axis", 0), "reverse": True},
                      name="grad_cumsum")
            _push(ctx, node.inputs[0], d)
        return

    if op in ("reshape", "convert_element_type", "broadcast_in_dim",
              "transpose", "slice", "pad"):
        if want(0):
            inverse = {"transpose": "transpose", "slice": "pad", "pad": "slice",
                       "broadcast_in_dim": "reduce_sum"}.get(op, "reshape")
            params = {}
            if op == "transpose":
                perm = node.params.get("perm", tuple(range(node.out.rank)))
                params = {"perm": tuple(int(x) for x in _argsort(perm))}
            elif inverse == "reduce_sum":
                params = {"axes": tuple(range(node.out.rank))}
            d = _emit(ctx, inverse, (grad,), ins[0], params=params, name=f"grad_{op}")
            _push(ctx, node.inputs[0], d)
        return

    if op == "concatenate":
        axis = node.params.get("axis", 0)
        for idx, spec in enumerate(ins):
            if needs[node.inputs[idx]] and spec.dtype.kind == "f":
                d = _emit(ctx, "slice", (grad,), spec,
                          params={"axis": axis, "part": idx}, name="grad_concat")
                _push(ctx, node.inputs[idx], d)
        return

    if op == "gather":
        if want(0):
            zeros = _emit(ctx, "broadcast_in_dim", (grad,), ins[0],
                          name="grad_gather_init")
            d = _emit(ctx, "scatter_add", (zeros, node.inputs[1], grad), ins[0],
                      name="grad_gather")
            _push(ctx, node.inputs[0], d)
        return

    if op == "scatter_add":
        if want(0):
            _push(ctx, node.inputs[0], grad)
        if len(node.inputs) > 2 and needs[node.inputs[2]] and ins[2].dtype.kind == "f":
            d = _emit(ctx, "gather", (grad, node.inputs[1]), ins[2],
                      name="grad_scatter")
            _push(ctx, node.inputs[2], d)
        return

    if op == "top_k":
        if want(0) and not node.params.get("indices"):
            d = _emit(ctx, "scatter_add", (node.inputs[0], node.id, grad), ins[0],
                      name="grad_topk")
            _push(ctx, node.inputs[0], d)
        return

    if op == "fused_elementwise":
        # gradient of a fused chain is another fused chain of similar cost
        fwd_flops = float(node.params.get("flops", node.out.size))
        wanted = [i for i in range(len(node.inputs)) if want(i)]
        for i in wanted:
            d = _emit(ctx, "fused_elementwise", (grad, node.id),
                      TensorSpec(ins[i].shape, ins[i].dtype),
                      params={"flops": fwd_flops / max(1, len(wanted)),
                              "n_fused": node.params.get("n_fused", 1)},
                      name="grad_fused")
            _push(ctx, node.inputs[i], d)
        return

    if op in NON_DIFFERENTIABLE:
        return

    raise NotImplementedError(f"no VJP rule for op {op!r}")  # pragma: no cover


def _argsort(perm: tuple[int, ...]) -> list[int]:
    inv = [0] * len(perm)
    for i, p in enumerate(perm):
        inv[p] = i
    return inv


def _copy_graph(fwd: Graph, name: str) -> Graph:
    g = Graph(name)
    for n in fwd.nodes:
        g.add_node(n.op, n.inputs, n.out, n.node_type, dict(n.params), n.name)
    return g


def build_training_graph(
    forward: Graph,
    include_update: bool = True,
    loss_to_scalar: bool = True,
) -> Graph:
    """Expand a forward stage DAG into the full training-step DAG.

    Args:
        forward: validated forward graph.
        include_update: also emit Adam moment/update equations per trainable
            parameter (8 elementwise ops each, matching a fused Adam kernel's
            arithmetic).
        loss_to_scalar: reduce each stage output to a scalar loss before
            seeding the backward pass (as the final pipeline stage does);
            otherwise the output gradient arrives from the next stage and is
            seeded as an input node.

    Returns:
        A new validated :class:`Graph` containing forward, backward, and
        update equations.
    """
    forward.validate()
    g = _copy_graph(forward, forward.name + "+train")
    ctx = _Ctx(graph=g, grads={})

    # which forward nodes need gradients: ancestors-of-output that are also
    # descendants of a trainable leaf or a float input
    n_fwd = len(forward.nodes)
    needs = [False] * n_fwd
    for node in forward.nodes:
        if node.node_type == "input" and node.out.dtype.kind == "f":
            needs[node.id] = True
        elif node.node_type == "literal" and node.params.get("trainable"):
            needs[node.id] = True
        elif node.node_type == "output":
            needs[node.id] = any(needs[i] for i in node.inputs)
        elif node.node_type == "operator":
            if node.op in NON_DIFFERENTIABLE:
                continue
            if node.params.get("indices"):
                continue
            needs[node.id] = any(needs[i] for i in node.inputs)

    # seed output grads
    for out_node in forward.outputs():
        if not needs[out_node.id]:
            continue
        src = out_node.inputs[0]
        if loss_to_scalar:
            loss = g.add_node("reduce_sum", (src,),
                              TensorSpec((), out_node.out.dtype), "operator",
                              {"axes": tuple(range(out_node.out.rank))},
                              "loss").id
            seed = g.add_node("broadcast_in_dim", (loss,), out_node.out, "operator",
                              {}, "grad_seed").id
        else:
            seed = g.add_node("iota", (), out_node.out, "input", {},
                              f"grad_in_{out_node.name or out_node.id}").id
        _push(ctx, src, seed)

    # reverse sweep over forward operator nodes
    for node in reversed(forward.nodes):
        if node.node_type != "operator" or not needs[node.id]:
            continue
        grad = _accumulate(ctx, node.id)
        if grad is None:
            continue
        ctx.grads[node.id] = [grad]  # collapsed
        _backprop_node(ctx, node, grad, needs)

    # parameter updates (Adam): m, v, mhat, vhat, sqrt, div, scale, apply
    if include_update:
        for node in forward.nodes:
            if node.node_type != "literal" or not node.params.get("trainable"):
                continue
            grad = _accumulate(ctx, node.id)
            if grad is None:
                continue
            ctx.grads[node.id] = [grad]
            spec = node.out
            m = g.add_node("mul", (grad, grad), spec, "operator", {}, "adam_v").id
            m1 = g.add_node("add", (grad, m), spec, "operator", {}, "adam_m").id
            v1 = g.add_node("add", (m, m1), spec, "operator", {}, "adam_v").id
            s = g.add_node("sqrt", (v1,), spec, "operator", {}, "adam_sqrt").id
            d = g.add_node("div", (m1, s), spec, "operator", {}, "adam_div").id
            sc = g.add_node("mul", (d, d), spec, "operator", {}, "adam_scale").id
            upd = g.add_node("sub", (node.id, sc), spec, "operator", {}, "adam_apply").id
            g.add_node("iota", (upd,), spec, "output", {}, f"new_{node.name}")

    g.validate()
    return g


def count_parameters(graph: Graph) -> int:
    """Total trainable parameter elements declared in ``graph``."""
    return sum(n.out.size for n in graph.nodes
               if n.node_type == "literal" and n.params.get("trainable"))
