"""Typed construction API over :class:`repro.ir.graph.Graph`.

The builder plays the role of JAX tracing in the original system: model
code written against it (see :mod:`repro.models.layers`) emits a jaxpr-like
tensor-level DAG with full shape/dtype inference, without any numerical
execution.

Values are handled as :class:`Var` handles so model code reads like array
code (``y = b.add(b.matmul(x, w), bias)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from .dtypes import BOOL, INT32, DType, dtype, promote
from .graph import Graph, Node, TensorSpec
from .ops import is_registered


@dataclass(frozen=True)
class Var:
    """Handle to one graph value (node id + its spec)."""

    id: int
    spec: TensorSpec

    @property
    def shape(self) -> tuple[int, ...]:
        return self.spec.shape

    @property
    def dtype(self) -> DType:
        return self.spec.dtype


def broadcast_shapes(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Numpy-style broadcast of two shapes."""
    out: list[int] = []
    for da, db in zip(reversed((1,) * max(0, len(b) - len(a)) + a),
                      reversed((1,) * max(0, len(a) - len(b)) + b)):
        if da != db and 1 not in (da, db):
            raise ValueError(f"shapes {a} and {b} are not broadcastable")
        out.append(max(da, db))
    return tuple(reversed(out))


class GraphBuilder:
    """Builds a validated stage DAG node by node."""

    def __init__(self, name: str = "graph") -> None:
        self.graph = Graph(name)

    # ------------------------------------------------------------- leaf nodes
    def input(self, name: str, shape: Sequence[int], dt: str | DType = "float32") -> Var:
        """Declare a stage input (activations entering the stage)."""
        node = self.graph.add_node(
            "iota", (), TensorSpec(tuple(shape), dtype(dt)), node_type="input", name=name
        )
        return Var(node.id, node.out)

    def param(self, name: str, shape: Sequence[int], dt: str | DType = "float32") -> Var:
        """Declare a trainable parameter (a literal in jaxpr terms)."""
        node = self.graph.add_node(
            "iota", (), TensorSpec(tuple(shape), dtype(dt)), node_type="literal",
            params={"trainable": True}, name=name
        )
        return Var(node.id, node.out)

    def literal(self, shape: Sequence[int] = (), dt: str | DType = "float32",
                name: str = "") -> Var:
        node = self.graph.add_node(
            "iota", (), TensorSpec(tuple(shape), dtype(dt)), node_type="literal", name=name
        )
        return Var(node.id, node.out)

    def output(self, var: Var, name: str = "") -> Var:
        node = self.graph.add_node("iota", (var.id,), var.spec, node_type="output", name=name)
        return Var(node.id, node.out)

    # -------------------------------------------------------------- raw emit
    def emit(self, op: str, operands: Sequence[Var], out: TensorSpec,
             params: dict[str, Any] | None = None, name: str = "") -> Var:
        if not is_registered(op):
            raise ValueError(f"op {op!r} is not in the registry")
        node = self.graph.add_node(op, (v.id for v in operands), out, "operator",
                                   params, name)
        return Var(node.id, node.out)

    # ----------------------------------------------------------- elementwise
    def _binary(self, op: str, a: Var, b: Var, out_dt: DType | None = None) -> Var:
        shape = broadcast_shapes(a.shape, b.shape)
        dt = out_dt or promote(a.dtype, b.dtype)
        return self.emit(op, (a, b), TensorSpec(shape, dt))

    def add(self, a: Var, b: Var) -> Var:
        return self._binary("add", a, b)

    def sub(self, a: Var, b: Var) -> Var:
        return self._binary("sub", a, b)

    def mul(self, a: Var, b: Var) -> Var:
        return self._binary("mul", a, b)

    def div(self, a: Var, b: Var) -> Var:
        return self._binary("div", a, b)

    def maximum(self, a: Var, b: Var) -> Var:
        return self._binary("max", a, b)

    def minimum(self, a: Var, b: Var) -> Var:
        return self._binary("min", a, b)

    def pow(self, a: Var, b: Var) -> Var:
        return self._binary("pow", a, b)

    def compare(self, a: Var, b: Var, direction: str = "gt") -> Var:
        shape = broadcast_shapes(a.shape, b.shape)
        return self.emit("compare", (a, b), TensorSpec(shape, BOOL),
                         params={"direction": direction})

    def select(self, pred: Var, a: Var, b: Var) -> Var:
        shape = broadcast_shapes(broadcast_shapes(pred.shape, a.shape), b.shape)
        return self.emit("select", (pred, a, b), TensorSpec(shape, promote(a.dtype, b.dtype)))

    def _unary(self, op: str, a: Var, out_dt: DType | None = None) -> Var:
        return self.emit(op, (a,), TensorSpec(a.shape, out_dt or a.dtype))

    def neg(self, a: Var) -> Var:
        return self._unary("neg", a)

    def exp(self, a: Var) -> Var:
        return self._unary("exp", a)

    def log(self, a: Var) -> Var:
        return self._unary("log", a)

    def tanh(self, a: Var) -> Var:
        return self._unary("tanh", a)

    def erf(self, a: Var) -> Var:
        return self._unary("erf", a)

    def logistic(self, a: Var) -> Var:
        return self._unary("logistic", a)

    def sqrt(self, a: Var) -> Var:
        return self._unary("sqrt", a)

    def rsqrt(self, a: Var) -> Var:
        return self._unary("rsqrt", a)

    def abs(self, a: Var) -> Var:
        return self._unary("abs", a)

    # ------------------------------------------------------------ reductions
    def _reduce(self, op: str, a: Var, axes: Sequence[int], keepdims: bool = False,
                out_dt: DType | None = None) -> Var:
        axes = tuple(ax % a.spec.rank for ax in axes)
        if keepdims:
            shape = tuple(1 if i in axes else s for i, s in enumerate(a.shape))
        else:
            shape = tuple(s for i, s in enumerate(a.shape) if i not in axes)
        return self.emit(op, (a,), TensorSpec(shape, out_dt or a.dtype),
                         params={"axes": axes, "keepdims": keepdims})

    def reduce_sum(self, a: Var, axes: Sequence[int], keepdims: bool = False) -> Var:
        return self._reduce("reduce_sum", a, axes, keepdims)

    def reduce_max(self, a: Var, axes: Sequence[int], keepdims: bool = False) -> Var:
        return self._reduce("reduce_max", a, axes, keepdims)

    def reduce_mean(self, a: Var, axes: Sequence[int], keepdims: bool = False) -> Var:
        """mean = reduce_sum then scale (two jaxpr equations)."""
        s = self.reduce_sum(a, axes, keepdims)
        n = math.prod(a.shape[ax % a.spec.rank] for ax in axes)
        inv = self.literal((), a.dtype, name=f"1/{n}")
        return self.mul(s, inv)

    def argmax(self, a: Var, axis: int) -> Var:
        return self._reduce("argmax", a, (axis,), keepdims=False, out_dt=INT32)

    def cumsum(self, a: Var, axis: int) -> Var:
        return self.emit("cumsum", (a,), a.spec, params={"axis": axis % a.spec.rank})

    # --------------------------------------------------------- data movement
    def reshape(self, a: Var, shape: Sequence[int]) -> Var:
        shape = tuple(int(s) for s in shape)
        if math.prod(shape) != a.spec.size:
            raise ValueError(f"cannot reshape {a.shape} -> {shape}")
        return self.emit("reshape", (a,), TensorSpec(shape, a.dtype))

    def transpose(self, a: Var, perm: Sequence[int]) -> Var:
        perm = tuple(perm)
        if sorted(perm) != list(range(a.spec.rank)):
            raise ValueError(f"bad permutation {perm} for rank {a.spec.rank}")
        shape = tuple(a.shape[p] for p in perm)
        return self.emit("transpose", (a,), TensorSpec(shape, a.dtype),
                         params={"perm": perm})

    def convert(self, a: Var, dt: str | DType) -> Var:
        return self.emit("convert_element_type", (a,), TensorSpec(a.shape, dtype(dt)))

    def broadcast_to(self, a: Var, shape: Sequence[int]) -> Var:
        shape = tuple(int(s) for s in shape)
        broadcast_shapes(a.shape, shape)  # raises if incompatible
        return self.emit("broadcast_in_dim", (a,), TensorSpec(shape, a.dtype))

    def slice(self, a: Var, starts: Sequence[int], limits: Sequence[int]) -> Var:
        shape = tuple(l - s for s, l in zip(starts, limits))
        if any(d <= 0 for d in shape):
            raise ValueError(f"empty slice {starts}:{limits}")
        return self.emit("slice", (a,), TensorSpec(shape, a.dtype),
                         params={"starts": tuple(starts), "limits": tuple(limits)})

    def concatenate(self, parts: Sequence[Var], axis: int) -> Var:
        base = parts[0]
        axis = axis % base.spec.rank
        total = sum(p.shape[axis] for p in parts)
        shape = tuple(total if i == axis else s for i, s in enumerate(base.shape))
        return self.emit("concatenate", tuple(parts), TensorSpec(shape, base.dtype),
                         params={"axis": axis})

    # ------------------------------------------------------------ contraction
    def matmul(self, a: Var, b: Var, name: str = "") -> Var:
        """Batched matmul: ``(..., M, K) @ (..., K, N)`` or 2-D weight rhs."""
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"matmul mismatch {a.shape} @ {b.shape}")
        k = a.shape[-1]
        batch = broadcast_shapes(a.shape[:-2], b.shape[:-2])
        shape = batch + (a.shape[-2], b.shape[-1])
        return self.emit("dot_general", (a, b),
                         TensorSpec(shape, promote(a.dtype, b.dtype)),
                         params={"contract": k}, name=name)

    def einsum_contract(self, a: Var, b: Var, out_shape: Sequence[int],
                        contract: int, name: str = "") -> Var:
        """General contraction with an explicit output shape and contracted extent."""
        return self.emit("dot_general", (a, b),
                         TensorSpec(tuple(out_shape), promote(a.dtype, b.dtype)),
                         params={"contract": int(contract)}, name=name)

    # ------------------------------------------------------- gather / scatter
    def gather(self, table: Var, indices: Var, name: str = "") -> Var:
        """Embedding-style lookup: rows of ``table`` indexed by ``indices``."""
        shape = indices.shape + table.shape[1:]
        return self.emit("gather", (table, indices), TensorSpec(shape, table.dtype),
                         name=name)

    def scatter_add(self, target: Var, indices: Var, updates: Var, name: str = "") -> Var:
        return self.emit("scatter_add", (target, indices, updates), target.spec, name=name)

    def one_hot(self, indices: Var, depth: int, dt: str | DType = "float32") -> Var:
        shape = indices.shape + (depth,)
        return self.emit("one_hot", (indices,), TensorSpec(shape, dtype(dt)),
                         params={"depth": depth})

    def top_k(self, a: Var, k: int) -> tuple[Var, Var]:
        """Values and indices of the top ``k`` entries along the last axis."""
        shape = a.shape[:-1] + (k,)
        vals = self.emit("top_k", (a,), TensorSpec(shape, a.dtype), params={"k": k})
        idx = self.emit("top_k", (a,), TensorSpec(shape, INT32),
                        params={"k": k, "indices": True})
        return vals, idx

    # ----------------------------------------------------------------- macros
    def softmax(self, a: Var, axis: int = -1) -> Var:
        """Numerically-stable softmax expanded to primitive equations."""
        m = self.reduce_max(a, (axis,), keepdims=True)
        shifted = self.sub(a, m)
        e = self.exp(shifted)
        z = self.reduce_sum(e, (axis,), keepdims=True)
        return self.div(e, z)

    def gelu(self, a: Var) -> Var:
        """GELU via erf, as XLA lowers it."""
        inv_sqrt2 = self.literal((), a.dtype, name="1/sqrt2")
        half = self.literal((), a.dtype, name="0.5")
        t = self.erf(self.mul(a, inv_sqrt2))
        one = self.literal((), a.dtype, name="1")
        return self.mul(self.mul(a, half), self.add(t, one))

    def relu(self, a: Var) -> Var:
        zero = self.literal((), a.dtype, name="0")
        return self.maximum(a, zero)

    def layer_norm(self, a: Var, scale: Var, bias: Var, axis: int = -1,
                   eps_name: str = "eps") -> Var:
        mean = self.reduce_mean(a, (axis,), keepdims=True)
        centered = self.sub(a, mean)
        var = self.reduce_mean(self.mul(centered, centered), (axis,), keepdims=True)
        eps = self.literal((), a.dtype, name=eps_name)
        inv = self.rsqrt(self.add(var, eps))
        normed = self.mul(centered, inv)
        return self.add(self.mul(normed, scale), bias)

    # ----------------------------------------------------------------- finish
    def build(self, validate: bool = True) -> Graph:
        if validate:
            self.graph.validate()
        return self.graph
