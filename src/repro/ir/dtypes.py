"""Data types for IR tensors.

The IR mirrors the dtype vocabulary that appears in jaxpr dumps of the
benchmarks (float32/float16 activations, int32 token ids, bool masks).
Each dtype carries its byte width so downstream cost models can convert
tensor shapes into memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """A scalar element type.

    Attributes:
        name: canonical name, e.g. ``"float32"``.
        itemsize: width in bytes.
        kind: ``"f"`` float, ``"i"`` signed int, ``"u"`` unsigned int,
            ``"b"`` boolean.
    """

    name: str
    itemsize: int
    kind: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


FLOAT64 = DType("float64", 8, "f")
FLOAT32 = DType("float32", 4, "f")
FLOAT16 = DType("float16", 2, "f")
BFLOAT16 = DType("bfloat16", 2, "f")
INT64 = DType("int64", 8, "i")
INT32 = DType("int32", 4, "i")
INT8 = DType("int8", 1, "i")
UINT32 = DType("uint32", 4, "u")
BOOL = DType("bool", 1, "b")

#: All dtypes the IR accepts, in the order used for one-hot feature encoding
#: (Table I: "Output Data Type" one-hot vector).
ALL_DTYPES: tuple[DType, ...] = (
    FLOAT64,
    FLOAT32,
    FLOAT16,
    BFLOAT16,
    INT64,
    INT32,
    INT8,
    UINT32,
    BOOL,
)

_BY_NAME = {d.name: d for d in ALL_DTYPES}


def dtype(name: str | DType) -> DType:
    """Resolve ``name`` to a :class:`DType` (idempotent on DType inputs)."""
    if isinstance(name, DType):
        return name
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown dtype {name!r}; known: {sorted(_BY_NAME)}") from None


def dtype_index(d: str | DType) -> int:
    """Position of ``d`` in :data:`ALL_DTYPES` (for one-hot encoding)."""
    return ALL_DTYPES.index(dtype(d))


def promote(a: str | DType, b: str | DType) -> DType:
    """Binary-op result dtype: wider float wins, float beats int, int beats bool."""
    da, db = dtype(a), dtype(b)
    rank = {"b": 0, "u": 1, "i": 2, "f": 3}
    if rank[da.kind] != rank[db.kind]:
        return da if rank[da.kind] > rank[db.kind] else db
    return da if da.itemsize >= db.itemsize else db
