"""Node feature encoding (Table I).

Each node becomes a fixed-width feature vector:

* **Operator type** — one-hot over the op registry;
* **Output tensor dimensions** — the output shape, right-padded to
  :data:`MAX_RANK`, log-scaled (``log1p``) because raw extents would
  dominate every other feature (§IV-B3);
* **Output data type** — one-hot over :data:`repro.ir.dtypes.ALL_DTYPES`;
* **Node type** — one-hot over ``{input, literal, operator, output}``.

Two scalar extras make fused nodes self-describing: log1p of the fused-op
FLOP budget and the fused-chain length (both zero for ordinary nodes).
"""

from __future__ import annotations

import math

import numpy as np

from .dtypes import ALL_DTYPES, dtype_index
from .graph import NODE_TYPES, Graph, Node
from .ops import OP_TYPES, op_index

#: Maximum tensor rank encoded; benchmark graphs never exceed it.
MAX_RANK = 6

#: Total feature width.
FEATURE_DIM = len(OP_TYPES) + MAX_RANK + len(ALL_DTYPES) + len(NODE_TYPES) + 2


def node_features(node: Node) -> np.ndarray:
    """Encode one node as a float64 vector of length :data:`FEATURE_DIM`."""
    vec = np.zeros(FEATURE_DIM, dtype=np.float64)
    off = 0
    vec[off + op_index(node.op)] = 1.0
    off += len(OP_TYPES)
    shape = node.out.shape[:MAX_RANK]
    for i, s in enumerate(shape):
        vec[off + i] = math.log1p(s)
    off += MAX_RANK
    vec[off + dtype_index(node.out.dtype)] = 1.0
    off += len(ALL_DTYPES)
    vec[off + NODE_TYPES.index(node.node_type)] = 1.0
    off += len(NODE_TYPES)
    vec[off] = math.log1p(float(node.params.get("flops", 0.0)))
    vec[off + 1] = float(node.params.get("n_fused", 0))
    return vec


def graph_features(graph: Graph) -> np.ndarray:
    """Feature matrix of shape ``(len(graph), FEATURE_DIM)``."""
    if len(graph) == 0:
        return np.zeros((0, FEATURE_DIM), dtype=np.float64)
    return np.stack([node_features(n) for n in graph.nodes])
