"""Elementwise fusion pass (XLA-style).

The runtime cost model charges one kernel launch and one memory round-trip
per node; real compilers fuse chains of elementwise equations into single
kernels.  This pass groups maximal single-consumer *chains* of ``fusable``
elementwise ops into one ``fused_elementwise`` node whose params record the
member ops and their total FLOPs, so (a) simulated latencies reflect fused
execution and (b) predictor input graphs match the granularity an intra-op
compiler sees.

Fusion is applied *after* pruning.  Restricting groups to chains (each
non-tail member's unique consumer is the next member) guarantees absorbed
nodes have no external consumers, so the rewrite never creates forward
references.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph, Node
from .ops import op_def


@dataclass
class FusionStats:
    groups: int
    fused_nodes: int
    before: int
    after: int


#: categories the aggressive mode may additionally fold into a fusion chain
#: (XLA fuses these into the surrounding loop nest as well)
_AGGRESSIVE_CATEGORIES = ("elementwise", "reduction", "data_movement")


def _is_fusable(node: Node, aggressive: bool = False) -> bool:
    if node.node_type != "operator":
        return False
    d = op_def(node.op)
    if d.fusable:
        return True
    return aggressive and d.category in _AGGRESSIVE_CATEGORIES


def _build_chains(graph: Graph, aggressive: bool = False) -> dict[int, list[int]]:
    """Map chain leader id -> member ids (topo order, len >= 2)."""
    group_of: dict[int, int] = {}
    members: dict[int, list[int]] = {}
    consumed: set[int] = set()  # producers already extended by a chain
    for node in graph.nodes:
        if not _is_fusable(node, aggressive):
            continue
        leader = node.id
        for i in node.inputs:
            prod = graph.nodes[i]
            if (_is_fusable(prod, aggressive) and len(graph.consumers(i)) == 1
                    and i in group_of and i not in consumed):
                leader = group_of[i]
                consumed.add(i)
                break
        group_of[node.id] = leader
        members.setdefault(leader, []).append(node.id)
    return {lead: mem for lead, mem in members.items() if len(mem) > 1}


def fuse_elementwise(graph: Graph,
                     aggressive: bool = False) -> tuple[Graph, FusionStats]:
    """Fuse maximal elementwise chains; returns (new graph, stats).

    ``aggressive`` additionally folds single-consumer reductions and
    data-movement ops into chains (coarser graphs, cheaper predictors).
    """
    graph.validate()
    chains = _build_chains(graph, aggressive)
    tail_of = {mem[-1]: mem for mem in chains.values()}
    absorbed = {nid for mem in chains.values() for nid in mem[:-1]}

    out = Graph(graph.name + "+fused")
    remap: dict[int, int] = {}
    for node in graph.nodes:
        if node.id in absorbed:
            continue
        if node.id in tail_of:
            mem = tail_of[node.id]
            memset = set(mem)
            ext_inputs: list[int] = []
            seen: set[int] = set()
            flops = 0.0
            ops: list[str] = []
            for m in mem:
                mn = graph.nodes[m]
                ops.append(mn.op)
                flops += op_def(mn.op).flops(
                    mn, [graph.nodes[i].out for i in mn.inputs])
                for i in mn.inputs:
                    if i not in memset and i not in seen:
                        seen.add(i)
                        ext_inputs.append(i)
            new = out.add_node(
                "fused_elementwise", tuple(remap[i] for i in ext_inputs),
                node.out, "operator",
                {"flops": flops, "ops": tuple(ops), "n_fused": len(mem)},
                name=node.name or "fusion")
        else:
            new = out.add_node(node.op, tuple(remap[i] for i in node.inputs),
                               node.out, node.node_type, dict(node.params),
                               node.name)
        remap[node.id] = new.id

    out.validate()
    stats = FusionStats(groups=len(chains),
                        fused_nodes=sum(len(m) for m in chains.values()),
                        before=len(graph), after=len(out))
    return out, stats
