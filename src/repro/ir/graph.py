"""Operator-graph IR.

DL model stages are represented the way the paper consumes them: directed
acyclic graphs whose nodes are *tensor-level* equations (the jaxpr
abstraction, §IV-B2).  Each node records the operator type, its operands,
the output :class:`TensorSpec`, and a node type in
``{input, literal, operator, output}`` (Table I).

Nodes are stored in topological order; every structural mutation goes
through :class:`Graph` methods that preserve the invariants checked by
:meth:`Graph.validate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .dtypes import DType, dtype

NODE_TYPES = ("input", "literal", "operator", "output")


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype of one tensor value flowing along a graph edge."""

    shape: tuple[int, ...]
    dtype: DType

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", dtype(self.dtype))
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __str__(self) -> str:  # pragma: no cover - trivial
        dims = ",".join(map(str, self.shape))
        return f"{self.dtype.name}[{dims}]"


@dataclass
class Node:
    """One equation in the stage DAG."""

    id: int
    op: str
    inputs: tuple[int, ...]
    out: TensorSpec
    node_type: str = "operator"
    params: dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        self.inputs = tuple(int(i) for i in self.inputs)
        if self.node_type not in NODE_TYPES:
            raise ValueError(f"bad node_type {self.node_type!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"%{i}" for i in self.inputs)
        label = f" '{self.name}'" if self.name else ""
        return f"%{self.id}:{self.out} = {self.op}({args}){label}"


class Graph:
    """A DAG of :class:`Node` objects in topological order.

    The node list is append-only from the builder's perspective; passes
    that drop nodes (pruning, fusion) produce a *new* graph via
    :meth:`subgraph_without` so ids stay dense and topologically sorted.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self._consumers: dict[int, list[int]] = {}
        #: memo for :func:`repro.ir.serialize.canonical_hash` — the graph is
        #: append-only, so add_node is the only invalidation point
        self._canonical_hash: str | None = None

    # ------------------------------------------------------------------ build
    def add_node(
        self,
        op: str,
        inputs: Iterable[int],
        out: TensorSpec,
        node_type: str = "operator",
        params: dict[str, Any] | None = None,
        name: str = "",
    ) -> Node:
        """Append a node; operands must already exist (keeps topo order)."""
        inputs = tuple(inputs)
        nid = len(self.nodes)
        for i in inputs:
            if not 0 <= i < nid:
                raise ValueError(f"node {nid} references undefined operand %{i}")
        node = Node(nid, op, inputs, out, node_type, params or {}, name)
        self.nodes.append(node)
        self._canonical_hash = None  # structure changed; drop memoized hash
        self._consumers[nid] = []
        for i in inputs:
            self._consumers[i].append(nid)
        return node

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, nid: int) -> Node:
        return self.nodes[nid]

    def consumers(self, nid: int) -> tuple[int, ...]:
        return tuple(self._consumers[nid])

    @property
    def num_edges(self) -> int:
        return sum(len(n.inputs) for n in self.nodes)

    def operators(self) -> list[Node]:
        """Nodes of type ``operator`` (the compute-bearing subset)."""
        return [n for n in self.nodes if n.node_type == "operator"]

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes if n.node_type == "input"]

    def outputs(self) -> list[Node]:
        return [n for n in self.nodes if n.node_type == "output"]

    def literals(self) -> list[Node]:
        return [n for n in self.nodes if n.node_type == "literal"]

    # ------------------------------------------------------------- invariants
    def validate(self) -> None:
        """Check the structural invariants; raise ``ValueError`` on breakage.

        * ids are dense 0..n-1, unique, and match list position;
        * every edge references an existing node (no dangling operands);
        * every operand id strictly precedes its consumer (topological
          order, which also rules out cycles and self-loops);
        * input/literal nodes have no operands; output nodes have exactly one.

        Feature extraction (:func:`repro.ir.features.graph_features`) and
        the analytical predictor both assume these invariants; callers
        feeding externally-built graphs run this first so a malformed
        DAG fails loudly instead of silently producing garbage features.
        """
        n = len(self.nodes)
        seen: set[int] = set()
        for pos, node in enumerate(self.nodes):
            if node.id in seen:
                raise ValueError(f"duplicate node id %{node.id}")
            seen.add(node.id)
            if node.id != pos:
                raise ValueError(f"node id {node.id} at position {pos}")
            for i in node.inputs:
                if not 0 <= i < n:
                    raise ValueError(f"dangling edge: %{node.id} references "
                                     f"undefined operand %{i}")
                if i == node.id:
                    raise ValueError(f"self-cycle at node %{node.id}")
                if i > node.id:
                    raise ValueError(f"edge %{i} -> %{node.id} breaks "
                                     f"topological order (cycle)")
            if node.node_type in ("input", "literal") and node.inputs:
                raise ValueError(f"{node.node_type} node %{node.id} has operands")
            if node.node_type == "output" and len(node.inputs) != 1:
                raise ValueError(f"output node %{node.id} must have one operand")

    # ---------------------------------------------------------------- queries
    def depths(self) -> list[int]:
        """Longest-path depth of every node from any source (DAGPE input)."""
        depth = [0] * len(self.nodes)
        for node in self.nodes:  # topo order makes a single sweep sufficient
            for i in node.inputs:
                if depth[i] + 1 > depth[node.id]:
                    depth[node.id] = depth[i] + 1
        return depth

    def critical_path_length(self) -> int:
        """Number of nodes on the longest dependency chain."""
        return (max(self.depths()) + 1) if self.nodes else 0

    # --------------------------------------------------------------- rewrites
    def subgraph_without(self, drop: set[int], name: str | None = None) -> "Graph":
        """Rebuild the graph with ``drop`` nodes removed.

        Consumers of a dropped node are rewired to its (single) operand, so
        only *pass-through* nodes — exactly one operand — may be dropped.
        Ids are re-densified; relative order of surviving nodes is kept.
        """
        forward: dict[int, int] = {}
        for nid in drop:
            node = self.nodes[nid]
            if len(node.inputs) != 1:
                raise ValueError(f"cannot drop %{nid}: not a pass-through node")
            forward[nid] = node.inputs[0]

        def resolve(nid: int) -> int:
            while nid in forward:
                nid = forward[nid]
            return nid

        out = Graph(name or self.name)
        remap: dict[int, int] = {}
        for node in self.nodes:
            if node.id in drop:
                continue
            new_inputs = tuple(remap[resolve(i)] for i in node.inputs)
            new = out.add_node(
                node.op, new_inputs, node.out, node.node_type, dict(node.params), node.name
            )
            remap[node.id] = new.id
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name!r}, nodes={len(self.nodes)}, edges={self.num_edges})"
