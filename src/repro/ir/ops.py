"""Operator registry with compute/memory accounting.

Every op that may appear in a stage DAG is registered here with enough
metadata for (a) the Table-I one-hot operator-type feature and (b) the
roofline cost model in :mod:`repro.runtime.opcost`: a FLOP estimator and a
bytes-touched estimator, both functions of the node and its operand specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .graph import Node, TensorSpec

FlopFn = Callable[[Node, Sequence[TensorSpec]], float]


@dataclass(frozen=True)
class OpDef:
    """Static description of one operator type."""

    name: str
    category: str  # contraction | elementwise | reduction | data_movement | gather_scatter
    flops: FlopFn
    prunable: bool = False  # removable by the §IV-B4 pruning pass
    fusable: bool = False  # may be folded into an elementwise fusion group


_REGISTRY: dict[str, OpDef] = {}


def register(opdef: OpDef) -> OpDef:
    if opdef.name in _REGISTRY:
        raise ValueError(f"op {opdef.name!r} already registered")
    _REGISTRY[opdef.name] = opdef
    return opdef


def op_def(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown op {name!r}") from None


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# --------------------------------------------------------------------- FLOPs
def _zero_flops(node: Node, ins: Sequence[TensorSpec]) -> float:
    return 0.0


def _eltwise_flops(factor: float) -> FlopFn:
    def fn(node: Node, ins: Sequence[TensorSpec]) -> float:
        return factor * node.out.size

    return fn


def _reduce_flops(node: Node, ins: Sequence[TensorSpec]) -> float:
    # one accumulate per input element
    return float(ins[0].size) if ins else 0.0


def _dot_general_flops(node: Node, ins: Sequence[TensorSpec]) -> float:
    """2 * batch * M * N * K multiply-accumulates.

    ``K`` is recovered from the contracted extent recorded by the builder
    (``params["contract"]``); batch*M*N is the output size.
    """
    k = int(node.params.get("contract", 1))
    return 2.0 * node.out.size * k


def _gather_flops(node: Node, ins: Sequence[TensorSpec]) -> float:
    # address computation, ~1 op per gathered element
    return float(node.out.size)


def _topk_flops(node: Node, ins: Sequence[TensorSpec]) -> float:
    # partial selection over the routed axis: n log2(k) comparisons
    k = max(int(node.params.get("k", 1)), 2)
    n = ins[0].size if ins else node.out.size
    return float(n) * math.log2(k)


def _ops(*defs: OpDef) -> None:
    for d in defs:
        register(d)


_ops(
    # -- contractions -------------------------------------------------------
    OpDef("dot_general", "contraction", _dot_general_flops),
    # -- elementwise binary -------------------------------------------------
    OpDef("add", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("sub", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("mul", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("div", "elementwise", _eltwise_flops(4), fusable=True),
    OpDef("max", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("min", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("pow", "elementwise", _eltwise_flops(8), fusable=True),
    # -- elementwise unary --------------------------------------------------
    OpDef("neg", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("abs", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("sign", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("exp", "elementwise", _eltwise_flops(8), fusable=True),
    OpDef("log", "elementwise", _eltwise_flops(8), fusable=True),
    OpDef("tanh", "elementwise", _eltwise_flops(10), fusable=True),
    OpDef("erf", "elementwise", _eltwise_flops(10), fusable=True),
    OpDef("logistic", "elementwise", _eltwise_flops(10), fusable=True),
    OpDef("sqrt", "elementwise", _eltwise_flops(4), fusable=True),
    OpDef("rsqrt", "elementwise", _eltwise_flops(4), fusable=True),
    OpDef("compare", "elementwise", _eltwise_flops(1), fusable=True),
    OpDef("select", "elementwise", _eltwise_flops(1), fusable=True),
    # -- reductions ----------------------------------------------------------
    OpDef("reduce_sum", "reduction", _reduce_flops),
    OpDef("reduce_max", "reduction", _reduce_flops),
    OpDef("reduce_min", "reduction", _reduce_flops),
    OpDef("argmax", "reduction", _reduce_flops),
    OpDef("cumsum", "reduction", _reduce_flops),
    # -- data movement -------------------------------------------------------
    OpDef("reshape", "data_movement", _zero_flops, prunable=True),
    OpDef("convert_element_type", "data_movement", _zero_flops, prunable=True),
    OpDef("broadcast_in_dim", "data_movement", _zero_flops, prunable=True),
    OpDef("transpose", "data_movement", _zero_flops),
    OpDef("slice", "data_movement", _zero_flops),
    OpDef("concatenate", "data_movement", _zero_flops),
    OpDef("pad", "data_movement", _zero_flops),
    # -- gather / scatter / indexing ------------------------------------------
    OpDef("gather", "gather_scatter", _gather_flops),
    OpDef("scatter_add", "gather_scatter", _gather_flops),
    OpDef("one_hot", "gather_scatter", _eltwise_flops(1)),
    OpDef("iota", "gather_scatter", _zero_flops),
    OpDef("top_k", "gather_scatter", _topk_flops),
    # -- synthetic: chain of elementwise ops folded into one kernel ------------
    OpDef("fused_elementwise", "elementwise",
          lambda node, ins: float(node.params.get("flops", node.out.size))),
)

#: Canonical op ordering for the Table-I one-hot operator-type feature.
OP_TYPES: tuple[str, ...] = tuple(sorted(_REGISTRY))


def op_index(name: str) -> int:
    """Position of ``name`` in :data:`OP_TYPES`."""
    try:
        return OP_TYPES.index(name)
    except ValueError:
        raise ValueError(f"unknown op {name!r}") from None


# ---------------------------------------------------------------- accounting
def node_flops(node: Node, input_specs: Sequence[TensorSpec]) -> float:
    """FLOPs executed by ``node`` (0 for non-operator nodes)."""
    if node.node_type != "operator":
        return 0.0
    return op_def(node.op).flops(node, input_specs)


def node_bytes(node: Node, input_specs: Sequence[TensorSpec]) -> float:
    """Bytes moved to/from memory by ``node`` (reads + writes)."""
    if node.node_type != "operator":
        return 0.0
    read = sum(s.nbytes for s in input_specs)
    return float(read + node.out.nbytes)
