"""Graph pruning (§IV-B4).

Jaxpr-derived graphs carry many pure data-movement equations —
``reshape``, ``convert_element_type``, ``broadcast_in_dim`` — whose effect
is recoverable from the dtype/shape recorded on the surviving nodes: if two
connected nodes disagree on dtype, a conversion evidently happened between
them.  Removing them keeps graph sizes manageable for the predictor without
losing information.
"""

from __future__ import annotations

from .graph import Graph
from .ops import op_def


def prunable_nodes(graph: Graph) -> set[int]:
    """Ids of operator nodes the §IV-B4 pass removes.

    A node is pruned when its op is registered ``prunable``, it has exactly
    one operand (pass-through), and it is not itself a graph output's
    source... outputs keep their producer so the stage interface is intact.
    """
    protected = {n.inputs[0] for n in graph.outputs()}
    drop: set[int] = set()
    for node in graph.operators():
        if node.id in protected:
            continue
        if len(node.inputs) != 1:
            continue
        if op_def(node.op).prunable:
            drop.add(node.id)
    return drop


def prune_graph(graph: Graph) -> Graph:
    """Return a new graph with redundant data-movement nodes removed.

    The pass iterates to a fixed point (pruning can expose new single-input
    chains only in pathological graphs, but a second sweep is cheap and
    makes the invariant ``prunable_nodes(result) == {}`` unconditional).
    """
    graph.validate()
    out = graph
    while True:
        drop = prunable_nodes(out)
        if not drop:
            return out
        out = out.subgraph_without(drop, name=graph.name + "+pruned")


def pruning_ratio(before: Graph, after: Graph) -> float:
    """Fraction of nodes removed by pruning."""
    if len(before) == 0:
        return 0.0
    return 1.0 - len(after) / len(before)
