"""Reachability and depth computation for DAG-Transformer inputs.

DAGRA (§IV-A) restricts attention of node *v* to nodes with a directed
path to or from *v*; the mask is therefore the symmetrized transitive
closure of the DAG.  DAGPE uses node depth (longest path from any source)
as the positional encoding index.

The closure is computed with a bitset sweep in topological order —
O(V·E/64) — vectorized with numpy's packed-bit arrays so graphs with a few
thousand nodes stay cheap.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph


def ancestor_matrix(graph: Graph) -> np.ndarray:
    """Boolean matrix ``A[u, v] = True`` iff ``u`` is a (strict) ancestor of ``v``."""
    n = len(graph)
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    words = (n + 63) // 64
    anc = np.zeros((n, words), dtype=np.uint64)  # bitset of ancestors per node
    for node in graph.nodes:  # topo order
        row = anc[node.id]
        for i in node.inputs:
            np.bitwise_or(row, anc[i], out=row)
            row[i >> 6] |= np.uint64(1 << (i & 63))
    # unpack to (n, n) bool: A[u, v] == bit u of anc[v]
    bits = np.unpackbits(anc.view(np.uint8), axis=1, bitorder="little")[:, :n]
    return bits.astype(bool).T


def reachability_mask(graph: Graph, k: int | None = None) -> np.ndarray:
    """Symmetric attention mask: ``M[u, v]`` iff a path connects u and v.

    ``k`` bounds the neighbourhood range (hops along the longest path); the
    paper sets ``k = ∞`` (``None`` here) so the whole closure is used.
    Every node may attend to itself.
    """
    anc = ancestor_matrix(graph)
    mask = anc | anc.T
    np.fill_diagonal(mask, True)
    if k is not None:
        depth = np.asarray(graph.depths())
        hop = np.abs(depth[:, None] - depth[None, :])
        mask &= hop <= k
    return mask


def node_depths(graph: Graph) -> np.ndarray:
    """Longest-path depth per node (DAGPE indices), as an int array."""
    return np.asarray(graph.depths(), dtype=np.int64)


def undirected_adjacency(graph: Graph, self_loops: bool = True,
                         normalize: bool = True) -> np.ndarray:
    """Symmetric (optionally GCN-normalized) adjacency for GCN/GAT baselines.

    GCN normalization is D^{-1/2} (A + I) D^{-1/2} (Kipf & Welling).
    """
    n = len(graph)
    adj = np.zeros((n, n), dtype=np.float64)
    for node in graph.nodes:
        for i in node.inputs:
            adj[i, node.id] = 1.0
            adj[node.id, i] = 1.0
    if self_loops:
        np.fill_diagonal(adj, 1.0)
    if normalize:
        deg = adj.sum(axis=1)
        inv_sqrt = np.zeros_like(deg)
        nz = deg > 0
        inv_sqrt[nz] = deg[nz] ** -0.5
        adj = adj * inv_sqrt[:, None] * inv_sqrt[None, :]
    return adj
