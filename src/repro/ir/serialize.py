"""JSON (de)serialization and canonical hashing of stage graphs.

Used by the dataset cache so profiled stage corpora can be written to disk
once and reused across predictor-training runs, and by the intra-op plan
cache, which keys memoized ``optimize_stage`` results on the *structural*
identity of a graph (:func:`canonical_hash`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from .dtypes import dtype
from .graph import Graph, TensorSpec


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    return {
        "name": graph.name,
        "nodes": [
            {
                "op": n.op,
                "inputs": list(n.inputs),
                "shape": list(n.out.shape),
                "dtype": n.out.dtype.name,
                "node_type": n.node_type,
                "params": _encode_params(n.params),
                "label": n.name,
            }
            for n in graph.nodes
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    g = Graph(data.get("name", "graph"))
    for nd in data["nodes"]:
        g.add_node(
            nd["op"],
            nd["inputs"],
            TensorSpec(tuple(nd["shape"]), dtype(nd["dtype"])),
            nd.get("node_type", "operator"),
            _decode_params(nd.get("params", {})),
            nd.get("label", ""),
        )
    g.validate()
    return g


def dumps(graph: Graph) -> str:
    return json.dumps(graph_to_dict(graph))


def loads(text: str) -> Graph:
    return graph_from_dict(json.loads(text))


def canonical_graph_dict(graph: Graph) -> dict[str, Any]:
    """Structure-only encoding: everything the cost models consume.

    Node and graph *names* are deliberately excluded — two slices of a
    model with identical ops, topology, shapes, dtypes, and operator
    params are interchangeable to the intra-op optimizer even when their
    layer labels differ, which is exactly what lets the plan cache share
    work across structurally identical stage slices.
    """
    return {
        "nodes": [
            {
                "op": n.op,
                "inputs": list(n.inputs),
                "shape": list(n.out.shape),
                "dtype": n.out.dtype.name,
                "node_type": n.node_type,
                "params": {k: _encode_params({"v": v})["v"]
                           for k, v in sorted(n.params.items())},
            }
            for n in graph.nodes
        ],
    }


def canonical_hash(graph: Graph) -> str:
    """Hex SHA-256 of the canonical (name-free) graph structure.

    Memoized on the graph object: graphs are append-only, so the digest
    is invalidated only by ``Graph.add_node``.  ``getattr`` keeps this
    working for graph objects deserialized without the memo slot.
    """
    memo = getattr(graph, "_canonical_hash", None)
    if memo is not None:
        return memo
    text = json.dumps(canonical_graph_dict(graph), sort_keys=True,
                      separators=(",", ":"))
    digest = hashlib.sha256(text.encode()).hexdigest()
    try:
        graph._canonical_hash = digest
    except AttributeError:  # slotted/frozen graph stand-ins in tests
        pass
    return digest


def _encode_params(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in params.items():
        out[k] = list(v) if isinstance(v, tuple) else v
    return out


def _decode_params(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for k, v in params.items():
        out[k] = tuple(v) if isinstance(v, list) else v
    return out
