"""Communication-free structure detection over the operator IR.

CFP's observation (PAPERS.md): operator-parallel plan spaces collapse
dramatically when communication-free structures are preserved and solved
once.  Two nodes whose *entire producer context* is structurally
identical — same op/shape/dtype/params, and, recursively, producers with
identical context and identical consumer fan-out — pose *exactly* the
same intra-op subproblem: the DP's forward cost vector over their
strategy tables is bit-for-bit equal, so it only needs to be computed
once per equivalence class and per mesh.

The equivalence classes are **context signatures**: interned integers
assigned bottom-up over the topological order,

    sig(n) = intern( local_key(n),
                     ((sig(p), fanout(p)) for p in n.inputs) )

where ``local_key`` is the same structural key the vectorized DP uses to
share strategy tables (``("op", node_cost_key)`` for operators, the
tensor shape for leaves) and ``fanout(p)`` is the producer's consumer
count (the DP amortizes producer cost as ``cost / fanout``, so fan-out
is part of the subproblem).  Equal signatures therefore imply equal
strategy tables, equal reshard-cost matrices, equal amortization shares
and equal producer cost vectors — by induction, equal forward DP
vectors.  ``parallel.intra_op`` keys its collapse memo on these ids;
``tests/test_dp_collapse.py`` differential-tests the claim bitwise.

Structures this provably collapses on the existing families:

* **parallel twin branches** — Q/K/V projections off one shared
  hidden state, gate/up MLP halves, MoE expert stacks: identical
  subgraphs hanging off the same producer;
* **repeated identical layers across stage slices** — GPT layers
  [0, 3) solved for one pipeline slice share every signature with the
  prefix of the [0, 5) slice solved later (same mesh), so only the
  suffix pays DP work;
* **elementwise/residual chains** — bias+GeLU+dropout tails repeated
  per twin branch.

The remaining helpers (:func:`propagation_free_chains`,
:func:`repeated_blocks`) report the classic CFP shapes — chains whose
sharding propagates resharding-free and periodically repeated layer
blocks — for diagnostics, docs and tests; the collapse memo itself only
needs the signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph
from .ops import is_registered, op_def

#: process-wide signature intern table: structural key -> stable small int.
#: Signatures are mesh-independent (node_cost_key reads no mesh state), so
#: one table serves every mesh; per-mesh memos key off these ids.
_SIG_IDS: dict[tuple, int] = {}


def _intern(key: tuple) -> int:
    sid = _SIG_IDS.get(key)
    if sid is None:
        sid = len(_SIG_IDS)
        _SIG_IDS[key] = sid
    return sid


def clear_signature_intern() -> None:
    """Reset the intern table (tests only — ids leak into per-mesh memos,
    so callers must clear those too; ``clear_table_caches`` does both)."""
    _SIG_IDS.clear()


def _local_key(graph: Graph, node) -> tuple:
    # deferred import: ir is imported by runtime (cycle otherwise), and the
    # key must be *the* node_cost_key the DP's table sharing uses, not a copy
    from ..runtime.opcost import node_cost_key

    if node.node_type in ("input", "literal"):
        return ("leaf", node.out.shape)
    if node.node_type == "output":
        return ("out",)
    return ("op", node_cost_key(
        node, [graph.nodes[i].out for i in node.inputs]))


_OUT_KEY = ("out",)


def context_signatures(graph: Graph) -> list[int]:
    """Interned context-signature id per node, in node-id order.

    Nodes with equal ids are interchangeable intra-op DP subproblems on
    any mesh (see module docstring for the induction).

    The per-node local key deliberately omits input specs (unlike
    ``node_cost_key``): producer signatures already pin every input's
    shape and dtype — operator producers through their own keys, leaves
    through the ``(shape, dtype)`` leaf key — so equal signatures still
    imply equal ``node_cost_key``s, at a fraction of the tuple-building
    cost (this function runs once per graph on the DP solve path).
    """
    from ..runtime.opcost import _freeze  # deferred: runtime imports ir

    sigs: list[int] = [0] * len(graph)
    consumers = graph.consumers
    intern = _SIG_IDS
    for node in graph.nodes:  # topological order by construction
        nt = node.node_type
        out = node.out
        if nt == "operator":
            local = ("op", node.op, out.shape, out.dtype.name,
                     _freeze(node.params))
        elif nt == "output":
            local = _OUT_KEY
        else:
            local = ("leaf", out.shape, out.dtype.name)
        key = (local,
               tuple((sigs[p], len(consumers(p))) for p in node.inputs))
        sid = intern.get(key)
        if sid is None:
            sid = len(intern)
            intern[key] = sid
        sigs[node.id] = sid
    return sigs


def communication_free_groups(graph: Graph) -> list[list[int]]:
    """Signature equivalence classes of size ≥ 2, each sorted by node id.

    Every class is a set of nodes whose DP forward vectors coincide
    bitwise — the subgraphs the collapse pass solves once.  Returned in
    order of first appearance.
    """
    by_sig: dict[int, list[int]] = {}
    for nid, sig in enumerate(context_signatures(graph)):
        by_sig.setdefault(sig, []).append(nid)
    return [nids for nids in by_sig.values() if len(nids) >= 2]


def _propagates_free(graph: Graph, node) -> bool:
    """True when the op preserves layout structure: the optimal sharding
    of its input propagates through without resharding (elementwise ops,
    shape-preserving data movement)."""
    if node.node_type != "operator" or not node.inputs \
            or not is_registered(node.op):
        return False
    d = op_def(node.op)
    if d.category == "elementwise":
        return True
    return (d.category == "data_movement"
            and node.out.shape == graph.nodes[node.inputs[0]].out.shape)


def propagation_free_chains(graph: Graph, min_len: int = 2) -> list[list[int]]:
    """Maximal single-consumer chains of sharding-transparent operators.

    The CFP "communication-free chain": each link is an elementwise (or
    shape-preserving) op whose single operator input feeds only it, so
    one sharding decision covers the whole chain with zero resharding.
    Chains shorter than ``min_len`` are dropped.
    """
    in_chain: set[int] = set()
    chains: list[list[int]] = []
    for node in graph.nodes:
        if node.id in in_chain or not _propagates_free(graph, node):
            continue
        chain = [node.id]
        in_chain.add(node.id)
        cur = node
        while True:
            cons = graph.consumers(cur.id)
            if len(cons) != 1:
                break
            nxt = graph.nodes[cons[0]]
            if not _propagates_free(graph, nxt) or nxt.inputs[0] != cur.id:
                break
            chain.append(nxt.id)
            in_chain.add(nxt.id)
            cur = nxt
        if len(chain) >= min_len:
            chains.append(chain)
    return chains


@dataclass(frozen=True)
class RepeatedBlock:
    """A periodic run of structurally identical layer blocks."""

    start: int  #: node id of the first node of the first repetition
    period: int  #: nodes per repetition
    count: int  #: number of repetitions (≥ 2)

    @property
    def nodes(self) -> range:
        return range(self.start, self.start + self.period * self.count)


def repeated_blocks(graph: Graph, min_count: int = 2) -> list[RepeatedBlock]:
    """Detect repeated identical layers (GPT/BERT/ViT blocks, MoE
    experts) as periodicity in the node sequence.

    Two windows repeat when every node's local structural key *and* its
    input wiring relative to the window start coincide.  Greedy scan for
    the smallest period first, so a 12-layer transformer reports one
    block with ``period = nodes-per-layer`` and ``count = 12`` rather
    than nested multiples.  Purely diagnostic: the collapse memo shares
    work through :func:`context_signatures`, which also catches
    repetitions this positional scan cannot (e.g. interleaved twins).
    """
    n = len(graph)
    shape: list[tuple] = []
    for node in graph.nodes:
        rel = tuple(node.id - p for p in node.inputs)
        shape.append((_local_key(graph, node), rel,
                      len(graph.consumers(node.id))))

    blocks: list[RepeatedBlock] = []
    i = 0
    while i < n:
        found = None
        for period in range(1, (n - i) // 2 + 1):
            count = 1
            while (i + (count + 1) * period <= n
                   and shape[i + count * period:i + (count + 1) * period]
                   == shape[i:i + period]):
                count += 1
            if count >= min_count:
                found = RepeatedBlock(i, period, count)
                break
        if found is not None:
            blocks.append(found)
            i = found.start + found.period * found.count
        else:
            i += 1
    return blocks
