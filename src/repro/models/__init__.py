"""Benchmark model zoo: GPT-3 and GShard-MoE as operator graphs."""

from .clustering import Clustering, cluster_layers, stage_count
from .configs import BENCHMARKS, GPT3_1_3B, MOE_2_6B, ModelConfig, benchmark_config
from .layers import (
    EmbeddingLayer,
    Layer,
    LMHeadLayer,
    MoELayer,
    TransformerLayer,
)
from .model import Model, build_gpt, build_model, build_moe

__all__ = [
    "ModelConfig", "GPT3_1_3B", "MOE_2_6B", "BENCHMARKS", "benchmark_config",
    "Layer", "EmbeddingLayer", "TransformerLayer", "MoELayer", "LMHeadLayer",
    "Model", "build_gpt", "build_moe", "build_model",
    "Clustering", "cluster_layers", "stage_count",
]
