"""Benchmark model zoo: GPT-3, GShard-MoE, BERT, ViT as operator graphs."""

from .clustering import Clustering, cluster_layers, stage_count
from .configs import (
    BENCHMARKS,
    BERT_LARGE,
    GPT3_1_3B,
    MOE_2_6B,
    VIT_L16,
    ModelConfig,
    benchmark_config,
)
from .layers import (
    ClassifierHeadLayer,
    EmbeddingLayer,
    EncoderLayer,
    Layer,
    LMHeadLayer,
    MoELayer,
    PatchEmbedLayer,
    TransformerLayer,
)
from .model import Model, build_bert, build_gpt, build_model, build_moe, build_vit

__all__ = [
    "ModelConfig", "GPT3_1_3B", "MOE_2_6B", "BERT_LARGE", "VIT_L16",
    "BENCHMARKS", "benchmark_config",
    "Layer", "EmbeddingLayer", "TransformerLayer", "EncoderLayer",
    "MoELayer", "LMHeadLayer", "PatchEmbedLayer", "ClassifierHeadLayer",
    "Model", "build_gpt", "build_moe", "build_bert", "build_vit",
    "build_model",
    "Clustering", "cluster_layers", "stage_count",
]
