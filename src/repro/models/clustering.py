"""Layer clustering for stage enumeration.

Alpa first clusters the operator graph into a smaller number of roughly
equal-cost *layer units* and slices stages at unit boundaries; the number
of candidate stages is then ``U·(U+1)/2`` for ``U`` units.  The paper's
corpora (409 GPT-3 stages, 205 MoE stages) correspond to enumerating all
contiguous slices over such a clustering and profiling each slice.

We cluster by balancing per-layer parameter counts (a faithful proxy for
training FLOPs, which are ``~6·params·tokens`` for these models) with a
greedy prefix partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Model


@dataclass(frozen=True)
class Clustering:
    """Partition of a model's layers into contiguous units."""

    model_name: str
    #: unit i covers layers [bounds[i], bounds[i+1])
    bounds: tuple[int, ...]

    @property
    def n_units(self) -> int:
        return len(self.bounds) - 1

    def unit_range(self, u: int) -> tuple[int, int]:
        return self.bounds[u], self.bounds[u + 1]

    def slice_range(self, u_start: int, u_end: int) -> tuple[int, int]:
        """Layer range covered by units ``[u_start, u_end)``."""
        if not 0 <= u_start < u_end <= self.n_units:
            raise ValueError(f"bad unit slice [{u_start}, {u_end})")
        return self.bounds[u_start], self.bounds[u_end]

    def all_slices(self) -> list[tuple[int, int]]:
        """Every contiguous unit slice, as layer ranges (U·(U+1)/2 of them)."""
        out = []
        for i in range(self.n_units):
            for j in range(i + 1, self.n_units + 1):
                out.append(self.slice_range(i, j))
        return out


def cluster_layers(model: Model, n_units: int) -> Clustering:
    """Balanced contiguous partition of layers into exactly ``n_units`` units.

    Each unit's weight is its parameter count (a faithful proxy for
    training FLOPs); the classic linear-partition dynamic program finds
    the partition minimizing the maximum unit weight in O(n²·k).
    """
    n_layers = len(model.layers)
    if not 1 <= n_units <= n_layers:
        raise ValueError(f"n_units must be in [1, {n_layers}], got {n_units}")
    weights = [float(l.param_count()) for l in model.layers]
    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)

    def seg(i: int, j: int) -> float:  # weight of layers [i, j)
        return prefix[j] - prefix[i]

    INF = float("inf")
    # best[k][j]: minimal max-unit-weight partitioning layers [0, j) into k
    best = [[INF] * (n_layers + 1) for _ in range(n_units + 1)]
    back = [[0] * (n_layers + 1) for _ in range(n_units + 1)]
    best[0][0] = 0.0
    for k in range(1, n_units + 1):
        for j in range(k, n_layers + 1):
            for i in range(k - 1, j):
                cand = max(best[k - 1][i], seg(i, j))
                if cand < best[k][j]:
                    best[k][j] = cand
                    back[k][j] = i
    bounds = [n_layers]
    j = n_layers
    for k in range(n_units, 0, -1):
        j = back[k][j]
        bounds.append(j)
    bounds.reverse()
    return Clustering(model.name, tuple(bounds))


def stage_count(n_units: int) -> int:
    """Number of contiguous slices over ``n_units`` units."""
    return n_units * (n_units + 1) // 2
