"""Benchmark model specifications (Table IV) and scaled-down variants.

The paper evaluates two models:

* **GPT-3 1.3B** — seq 1024, hidden 2048, 24 layers, 32 heads, vocab 51200;
* **GShard MoE 2.6B** — seq 1024, hidden 768, 32 layers, 16 heads, vocab
  32000, 16 experts, expert group size 2048.

Two extra families extend the scenario space beyond the paper's corpus
(the schedule-registry grids cover model × schedule cells):

* **BERT-Large** — bidirectional encoder: seq 512, hidden 1024, 24
  layers, 16 heads, vocab 30522 (non-causal attention);
* **ViT-L/16** — vision transformer: 224×224 images in 16×16 patches
  (196 tokens), hidden 1024, 24 layers, 16 heads, 1000 classes.

Because predictor training in pure numpy is the expensive part of the
reproduction, each benchmark also has reduced-depth variants used by the
``smoke``/``fast`` experiment profiles (§ DESIGN.md); widths and the
hidden/head/vocab structure are preserved so the operator mix and shape
distribution match the full models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters shared by both benchmark families."""

    name: str
    family: str  # "gpt" | "moe" | "bert" | "vit"
    seq_len: int
    hidden: int
    n_layers: int
    n_heads: int
    vocab: int
    ffn_mult: int = 4
    #: MoE only: number of experts; 0 disables MoE layers
    n_experts: int = 0
    #: MoE only: expert group size (tokens routed together)
    expert_group: int = 0
    #: MoE only: top-k routing fan-out
    router_topk: int = 2
    #: MoE only: every ``moe_freq``-th block routes its FFN through experts
    #: (GShard alternates, ``2``; Table IV's 2.6B total needs every block, ``1``)
    moe_freq: int = 1
    #: microbatch size used when emitting stage graphs
    microbatch: int = 4
    dtype: str = "float32"
    #: ViT only: classification head width; 0 disables the head
    n_classes: int = 0
    #: ViT only: square input-image resolution and patch size
    image_size: int = 0
    patch_size: int = 0
    in_channels: int = 3

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads:
            raise ValueError("hidden must divide evenly into heads")
        if self.family == "moe" and self.n_experts < 2:
            raise ValueError("MoE config needs n_experts >= 2")
        if self.family == "vit":
            if self.patch_size <= 0 or self.image_size % self.patch_size:
                raise ValueError("ViT needs patch_size dividing image_size")
            if self.seq_len != (self.image_size // self.patch_size) ** 2:
                raise ValueError("ViT seq_len must equal the patch count")
            if self.n_classes < 2:
                raise ValueError("ViT config needs n_classes >= 2")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def ffn(self) -> int:
        return self.hidden * self.ffn_mult

    @property
    def expert_capacity(self) -> int:
        """Tokens per expert per group under top-k routing."""
        if not self.n_experts:
            return 0
        return max(1, self.expert_group * self.router_topk // self.n_experts)

    def scaled(self, n_layers: int, name_suffix: str = "") -> "ModelConfig":
        """Same widths, reduced depth (for cheap experiment profiles)."""
        return replace(self, n_layers=n_layers,
                       name=f"{self.name}{name_suffix or f'-{n_layers}l'}")


#: GPT-3 1.3B (Table IV, left column).
GPT3_1_3B = ModelConfig(
    name="gpt3-1.3b", family="gpt", seq_len=1024, hidden=2048,
    n_layers=24, n_heads=32, vocab=51200,
)

#: GShard MoE 2.6B (Table IV, right column).
MOE_2_6B = ModelConfig(
    name="moe-2.6b", family="moe", seq_len=1024, hidden=768,
    n_layers=32, n_heads=16, vocab=32000,
    n_experts=16, expert_group=2048,
)

#: BERT-Large (Devlin et al.): the encoder-style family.
BERT_LARGE = ModelConfig(
    name="bert-large", family="bert", seq_len=512, hidden=1024,
    n_layers=24, n_heads=16, vocab=30522,
)

#: ViT-L/16 (Dosovitskiy et al.): 224² images, 16² patches → 196 tokens.
VIT_L16 = ModelConfig(
    name="vit-l16", family="vit", seq_len=196, hidden=1024,
    n_layers=24, n_heads=16, vocab=0,
    n_classes=1000, image_size=224, patch_size=16,
)

BENCHMARKS = {"gpt": GPT3_1_3B, "moe": MOE_2_6B,
              "bert": BERT_LARGE, "vit": VIT_L16}


def benchmark_config(family: str, n_layers: int | None = None) -> ModelConfig:
    """Look up a benchmark config, optionally depth-scaled."""
    try:
        cfg = BENCHMARKS[family]
    except KeyError:
        raise ValueError(f"unknown benchmark family {family!r}") from None
    if n_layers is not None and n_layers != cfg.n_layers:
        return cfg.scaled(n_layers)
    return cfg
