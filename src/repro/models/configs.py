"""Benchmark model specifications (Table IV) and scaled-down variants.

The paper evaluates two models:

* **GPT-3 1.3B** — seq 1024, hidden 2048, 24 layers, 32 heads, vocab 51200;
* **GShard MoE 2.6B** — seq 1024, hidden 768, 32 layers, 16 heads, vocab
  32000, 16 experts, expert group size 2048.

Because predictor training in pure numpy is the expensive part of the
reproduction, each benchmark also has reduced-depth variants used by the
``smoke``/``fast`` experiment profiles (§ DESIGN.md); widths and the
hidden/head/vocab structure are preserved so the operator mix and shape
distribution match the full models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters shared by both benchmark families."""

    name: str
    family: str  # "gpt" | "moe"
    seq_len: int
    hidden: int
    n_layers: int
    n_heads: int
    vocab: int
    ffn_mult: int = 4
    #: MoE only: number of experts; 0 disables MoE layers
    n_experts: int = 0
    #: MoE only: expert group size (tokens routed together)
    expert_group: int = 0
    #: MoE only: top-k routing fan-out
    router_topk: int = 2
    #: MoE only: every ``moe_freq``-th block routes its FFN through experts
    #: (GShard alternates, ``2``; Table IV's 2.6B total needs every block, ``1``)
    moe_freq: int = 1
    #: microbatch size used when emitting stage graphs
    microbatch: int = 4
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads:
            raise ValueError("hidden must divide evenly into heads")
        if self.family == "moe" and self.n_experts < 2:
            raise ValueError("MoE config needs n_experts >= 2")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.n_heads

    @property
    def ffn(self) -> int:
        return self.hidden * self.ffn_mult

    @property
    def expert_capacity(self) -> int:
        """Tokens per expert per group under top-k routing."""
        if not self.n_experts:
            return 0
        return max(1, self.expert_group * self.router_topk // self.n_experts)

    def scaled(self, n_layers: int, name_suffix: str = "") -> "ModelConfig":
        """Same widths, reduced depth (for cheap experiment profiles)."""
        return replace(self, n_layers=n_layers,
                       name=f"{self.name}{name_suffix or f'-{n_layers}l'}")


#: GPT-3 1.3B (Table IV, left column).
GPT3_1_3B = ModelConfig(
    name="gpt3-1.3b", family="gpt", seq_len=1024, hidden=2048,
    n_layers=24, n_heads=32, vocab=51200,
)

#: GShard MoE 2.6B (Table IV, right column).
MOE_2_6B = ModelConfig(
    name="moe-2.6b", family="moe", seq_len=1024, hidden=768,
    n_layers=32, n_heads=16, vocab=32000,
    n_experts=16, expert_group=2048,
)

BENCHMARKS = {"gpt": GPT3_1_3B, "moe": MOE_2_6B}


def benchmark_config(family: str, n_layers: int | None = None) -> ModelConfig:
    """Look up a benchmark config, optionally depth-scaled."""
    try:
        cfg = BENCHMARKS[family]
    except KeyError:
        raise ValueError(f"unknown benchmark family {family!r}") from None
    if n_layers is not None and n_layers != cfg.n_layers:
        return cfg.scaled(n_layers)
    return cfg
