"""Layer library: emits tensor-level equations for the benchmark models.

Each :class:`Layer` knows how to trace itself into a
:class:`~repro.ir.builder.GraphBuilder` — the moral equivalent of running
the JAX layer under ``jax.make_jaxpr``.  Stage graphs (§IV-B2) are built by
tracing a contiguous run of layers (see :mod:`repro.models.model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.builder import GraphBuilder, Var
from ..ir.graph import TensorSpec
from .configs import ModelConfig


@dataclass
class Layer:
    """Base class: one pipeline-sliceable unit of the model."""

    cfg: ModelConfig
    index: int
    name: str = field(default="", init=False)

    #: "tokens" for the embedding layer, "hidden" for everything else
    input_kind: str = "hidden"

    def emit(self, b: GraphBuilder, x: Var) -> Var:  # pragma: no cover - abstract
        raise NotImplementedError

    def param_count(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def flops_per_token(self) -> float:
        """Rough forward FLOPs per token (used by layer clustering)."""
        return 2.0 * self.param_count() / max(1, self.cfg.seq_len * 0 + 1)


def _linear(b: GraphBuilder, x: Var, w_name: str, d_in: int, d_out: int,
            dtype: str, bias: bool = True) -> Var:
    w = b.param(w_name, (d_in, d_out), dtype)
    y = b.matmul(x, w, name=w_name)
    if bias:
        bia = b.param(w_name + "_b", (d_out,), dtype)
        y = b.add(y, bia)
    return y


def emit_attention(b: GraphBuilder, x: Var, cfg: ModelConfig, prefix: str,
                   causal: bool = True) -> Var:
    """Multi-head self-attention, traced to primitives.

    ``causal=False`` skips the mask addition (bidirectional encoders:
    BERT, ViT); the rest of the trace is identical.
    """
    B, S, H = x.shape
    nh, dh = cfg.n_heads, cfg.head_dim
    dt = cfg.dtype
    q = _linear(b, x, f"{prefix}.wq", H, H, dt)
    k = _linear(b, x, f"{prefix}.wk", H, H, dt)
    v = _linear(b, x, f"{prefix}.wv", H, H, dt)

    def split_heads(t: Var) -> Var:
        t = b.reshape(t, (B, S, nh, dh))
        return b.transpose(t, (0, 2, 1, 3))

    qh, kh, vh = split_heads(q), split_heads(k), split_heads(v)
    scores = b.einsum_contract(qh, kh, (B, nh, S, S), contract=dh,
                               name=f"{prefix}.qk")
    scale = b.literal((), dt, name="1/sqrt(dh)")
    scores = b.mul(scores, scale)
    if causal:
        mask = b.literal((1, 1, S, S), dt, name="causal_mask")
        scores = b.add(scores, mask)
    attn = b.softmax(scores, axis=-1)
    ctx = b.einsum_contract(attn, vh, (B, nh, S, dh), contract=S,
                            name=f"{prefix}.av")
    ctx = b.transpose(ctx, (0, 2, 1, 3))
    ctx = b.reshape(ctx, (B, S, H))
    return _linear(b, ctx, f"{prefix}.wo", H, H, dt)


def emit_layer_norm(b: GraphBuilder, x: Var, cfg: ModelConfig, prefix: str) -> Var:
    scale = b.param(f"{prefix}.scale", (x.shape[-1],), cfg.dtype)
    bias = b.param(f"{prefix}.bias", (x.shape[-1],), cfg.dtype)
    return b.layer_norm(x, scale, bias)


def emit_mlp(b: GraphBuilder, x: Var, cfg: ModelConfig, prefix: str) -> Var:
    h = _linear(b, x, f"{prefix}.fc1", cfg.hidden, cfg.ffn, cfg.dtype)
    h = b.gelu(h)
    return _linear(b, h, f"{prefix}.fc2", cfg.ffn, cfg.hidden, cfg.dtype)


def emit_moe_ffn(b: GraphBuilder, x: Var, cfg: ModelConfig, prefix: str) -> Var:
    """GShard-style top-k routed expert FFN, traced to primitives."""
    B, S, H = x.shape
    E, kk, dt = cfg.n_experts, cfg.router_topk, cfg.dtype
    tokens = B * S
    cap = max(1, tokens * kk // E)  # per-expert capacity over this microbatch

    # router
    wg = b.param(f"{prefix}.wg", (H, E), dt)
    flat = b.reshape(x, (tokens, H))
    logits = b.matmul(flat, wg, name=f"{prefix}.gate")
    probs = b.softmax(logits, axis=-1)
    vals, idx = b.top_k(probs, kk)
    mask = b.one_hot(idx, E, dt)                       # (tokens, k, E)
    pos = b.cumsum(mask, axis=0)                       # position within expert
    keep = b.compare(pos, b.broadcast_to(b.literal((), dt, name="cap"),
                                         pos.shape), "lt")
    gated = b.mul(mask, b.convert(keep, dt))
    weights = b.mul(gated, b.reshape(vals, (tokens, kk, 1)))

    # dispatch: (E*cap, tokens) x (tokens, H) -> per-expert token slabs
    disp = b.reshape(weights, (tokens, kk * E))
    dispatched = b.einsum_contract(disp, flat, (E, cap, H), contract=tokens,
                                   name=f"{prefix}.dispatch")

    # expert FFN, batched over E
    w1 = b.param(f"{prefix}.w1", (E, H, cfg.ffn), dt)
    h1 = b.einsum_contract(dispatched, w1, (E, cap, cfg.ffn), contract=H,
                           name=f"{prefix}.expert1")
    h1 = b.gelu(h1)
    w2 = b.param(f"{prefix}.w2", (E, cfg.ffn, H), dt)
    h2 = b.einsum_contract(h1, w2, (E, cap, H), contract=cfg.ffn,
                           name=f"{prefix}.expert2")

    # combine back to token order, weighted by gate values
    combined = b.einsum_contract(disp, b.reshape(h2, (E * cap, H)),
                                 (tokens, H), contract=E * cap,
                                 name=f"{prefix}.combine")
    return b.reshape(combined, (B, S, H))


@dataclass
class EmbeddingLayer(Layer):
    input_kind: str = "tokens"

    def __post_init__(self) -> None:
        self.name = "embed"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg = self.cfg
        wte = b.param("wte", (cfg.vocab, cfg.hidden), cfg.dtype)
        wpe = b.param("wpe", (cfg.seq_len, cfg.hidden), cfg.dtype)
        tok = b.gather(wte, x, name="embed_tokens")
        posi = b.emit("iota", (), TensorSpec((cfg.seq_len,), "int32"),
                      name="positions")
        pos = b.gather(wpe, posi, name="embed_positions")
        return b.add(tok, pos)

    def param_count(self) -> int:
        return (self.cfg.vocab + self.cfg.seq_len) * self.cfg.hidden


@dataclass
class TransformerLayer(Layer):
    #: decoder blocks mask attention; encoder subclasses flip this off
    causal = True

    def __post_init__(self) -> None:
        self.name = f"block{self.index}"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg, p = self.cfg, self.name
        h = emit_layer_norm(b, x, cfg, f"{p}.ln1")
        h = emit_attention(b, h, cfg, f"{p}.attn", causal=self.causal)
        x = b.add(x, h)
        h = emit_layer_norm(b, x, cfg, f"{p}.ln2")
        h = emit_mlp(b, h, cfg, f"{p}.mlp")
        return b.add(x, h)

    def param_count(self) -> int:
        cfg = self.cfg
        return 4 * cfg.hidden * cfg.hidden + 2 * cfg.hidden * cfg.ffn + 4 * cfg.hidden


@dataclass
class EncoderLayer(TransformerLayer):
    """Bidirectional transformer block (BERT / ViT): no causal mask."""

    causal = False

    def __post_init__(self) -> None:
        self.name = f"enc{self.index}"


@dataclass
class MoELayer(Layer):
    def __post_init__(self) -> None:
        self.name = f"moe_block{self.index}"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg, p = self.cfg, self.name
        h = emit_layer_norm(b, x, cfg, f"{p}.ln1")
        h = emit_attention(b, h, cfg, f"{p}.attn")
        x = b.add(x, h)
        h = emit_layer_norm(b, x, cfg, f"{p}.ln2")
        h = emit_moe_ffn(b, h, cfg, f"{p}.moe")
        return b.add(x, h)

    def param_count(self) -> int:
        cfg = self.cfg
        return (4 * cfg.hidden * cfg.hidden
                + cfg.n_experts * 2 * cfg.hidden * cfg.ffn
                + cfg.hidden * cfg.n_experts + 4 * cfg.hidden)


@dataclass
class PatchEmbedLayer(Layer):
    """ViT patch embedding: (B, C, H, W) image → (B, N, hidden) tokens."""

    input_kind: str = "image"

    def __post_init__(self) -> None:
        self.name = "patch_embed"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg = self.cfg
        B, C, Hi, Wi = x.shape
        P = cfg.patch_size
        gh, gw = Hi // P, Wi // P
        n_patches = gh * gw
        # space-to-depth: split each axis into (grid, patch) and gather the
        # per-patch pixels contiguously
        t = b.reshape(x, (B, C, gh, P, gw, P))
        t = b.transpose(t, (0, 2, 4, 1, 3, 5))
        t = b.reshape(t, (B, n_patches, C * P * P))
        h = _linear(b, t, "patch_proj", C * P * P, cfg.hidden, cfg.dtype)
        pos = b.param("pos_embed", (1, n_patches, cfg.hidden), cfg.dtype)
        return b.add(h, pos)

    def param_count(self) -> int:
        cfg = self.cfg
        patch_dim = cfg.in_channels * cfg.patch_size ** 2
        return (patch_dim * cfg.hidden + cfg.hidden
                + cfg.seq_len * cfg.hidden)


@dataclass
class ClassifierHeadLayer(Layer):
    """Mean-pool over tokens, then project to class logits (ViT head)."""

    def __post_init__(self) -> None:
        self.name = "cls_head"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg = self.cfg
        h = emit_layer_norm(b, x, cfg, "ln_f")
        pooled = b.reduce_mean(h, (1,))
        return _linear(b, pooled, "cls_head", cfg.hidden, cfg.n_classes,
                       cfg.dtype)

    def param_count(self) -> int:
        cfg = self.cfg
        return cfg.hidden * cfg.n_classes + cfg.n_classes + 2 * cfg.hidden


@dataclass
class LMHeadLayer(Layer):
    def __post_init__(self) -> None:
        self.name = "lm_head"

    def emit(self, b: GraphBuilder, x: Var) -> Var:
        cfg = self.cfg
        h = emit_layer_norm(b, x, cfg, "ln_f")
        w = b.param("lm_head.w", (cfg.hidden, cfg.vocab), cfg.dtype)
        return b.matmul(h, w, name="logits")

    def param_count(self) -> int:
        return self.cfg.hidden * self.cfg.vocab + 2 * self.cfg.hidden
