"""Model = an ordered list of layers + stage-graph tracing.

A *stage* is a contiguous run of layers (inter-operator parallelism slices
the model this way).  :meth:`Model.stage_graph` traces layers
``[start, end)`` into a fresh operator DAG whose input is either token ids
(if the run begins at the embedding) or a hidden-state activation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .configs import ModelConfig
from .layers import (
    ClassifierHeadLayer,
    EmbeddingLayer,
    EncoderLayer,
    Layer,
    LMHeadLayer,
    MoELayer,
    PatchEmbedLayer,
    TransformerLayer,
)


@dataclass
class Model:
    """One benchmark model as a sliceable layer sequence."""

    cfg: ModelConfig
    layers: list[Layer]

    @property
    def name(self) -> str:
        return self.cfg.name

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def param_count(self) -> int:
        return sum(l.param_count() for l in self.layers)

    def stage_graph(self, start: int, end: int,
                    microbatch: int | None = None) -> Graph:
        """Trace layers ``[start, end)`` into a forward stage DAG."""
        if not 0 <= start < end <= len(self.layers):
            raise ValueError(f"bad stage slice [{start}, {end})")
        cfg = self.cfg
        B = microbatch or cfg.microbatch
        b = GraphBuilder(f"{self.name}[{start}:{end}]")
        first = self.layers[start]
        if first.input_kind == "tokens":
            x = b.input("tokens", (B, cfg.seq_len), "int32")
        elif first.input_kind == "image":
            x = b.input("image", (B, cfg.in_channels, cfg.image_size,
                                  cfg.image_size), cfg.dtype)
        else:
            x = b.input("hidden_in", (B, cfg.seq_len, cfg.hidden), cfg.dtype)
        for layer in self.layers[start:end]:
            x = layer.emit(b, x)
        b.output(x, "stage_out")
        return b.build()

    def full_graph(self, microbatch: int | None = None) -> Graph:
        """The whole model as one graph (single-stage execution)."""
        return self.stage_graph(0, len(self.layers), microbatch)

    def activation_bytes(self, microbatch: int | None = None) -> int:
        """Bytes of the activation crossing any stage boundary."""
        cfg = self.cfg
        B = microbatch or cfg.microbatch
        return B * cfg.seq_len * cfg.hidden * 4

    def slice_param_count(self, start: int, end: int) -> int:
        return sum(l.param_count() for l in self.layers[start:end])


def build_gpt(cfg: ModelConfig) -> Model:
    """GPT-3-style decoder stack: embed, N transformer blocks, LM head."""
    layers: list[Layer] = [EmbeddingLayer(cfg, 0)]
    layers += [TransformerLayer(cfg, i + 1) for i in range(cfg.n_layers)]
    layers.append(LMHeadLayer(cfg, cfg.n_layers + 1))
    return Model(cfg, layers)


def build_moe(cfg: ModelConfig) -> Model:
    """GShard-style stack: every other block routes its FFN through experts."""
    layers: list[Layer] = [EmbeddingLayer(cfg, 0)]
    for i in range(cfg.n_layers):
        if i % cfg.moe_freq == cfg.moe_freq - 1:
            layers.append(MoELayer(cfg, i + 1))
        else:
            layers.append(TransformerLayer(cfg, i + 1))
    layers.append(LMHeadLayer(cfg, cfg.n_layers + 1))
    return Model(cfg, layers)


def build_bert(cfg: ModelConfig) -> Model:
    """BERT-style encoder stack: embed, N bidirectional blocks, MLM head."""
    layers: list[Layer] = [EmbeddingLayer(cfg, 0)]
    layers += [EncoderLayer(cfg, i + 1) for i in range(cfg.n_layers)]
    layers.append(LMHeadLayer(cfg, cfg.n_layers + 1))
    return Model(cfg, layers)


def build_vit(cfg: ModelConfig) -> Model:
    """ViT: patch embedding, N bidirectional blocks, classifier head."""
    layers: list[Layer] = [PatchEmbedLayer(cfg, 0)]
    layers += [EncoderLayer(cfg, i + 1) for i in range(cfg.n_layers)]
    layers.append(ClassifierHeadLayer(cfg, cfg.n_layers + 1))
    return Model(cfg, layers)


_BUILDERS = {"gpt": build_gpt, "moe": build_moe,
             "bert": build_bert, "vit": build_vit}


def build_model(cfg: ModelConfig) -> Model:
    """Dispatch on the config family."""
    try:
        return _BUILDERS[cfg.family](cfg)
    except KeyError:
        raise ValueError(f"unknown model family {cfg.family!r}") from None
