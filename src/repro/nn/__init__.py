"""numpy autograd NN framework (the PyTorch stand-in for the predictors)."""

from .functional import gelu, log1p, mae, masked_mean, mse, softmax
from .layers import (
    GATConv,
    GCNConv,
    LayerNorm,
    Linear,
    MaskedMultiHeadAttention,
    Module,
    ReLU,
    Sequential,
    global_add_pool,
    xavier,
)
from .optim import Adam, CosineDecay
from .tensor import Tensor

__all__ = [
    "Tensor",
    "softmax", "gelu", "log1p", "mse", "mae", "masked_mean",
    "Module", "Linear", "LayerNorm", "Sequential", "ReLU",
    "MaskedMultiHeadAttention", "GCNConv", "GATConv", "global_add_pool",
    "xavier",
    "Adam", "CosineDecay",
]
