"""Engine fast-path toggle (``REPRO_NN_FAST``).

The autograd engine has two execution strategies that are differentially
tested to be *bit-identical* (same float ops in the same order, value-equal
gradients and weights):

* **fast** (default) — gradient buffers are stolen from provably-fresh
  temporaries instead of being re-accumulated into ``zeros_like`` scratch,
  constant operands skip their gradient computation entirely, reduction
  backwards hand out broadcast *views* instead of materialized copies, and
  attention layers consume the precomputed additive masks carried on the
  batch;
* **reference** — the original allocate-and-accumulate strategy, kept as
  the oracle for the differential tests and as the baseline side of
  ``benchmarks/bench_train.py``.

``REPRO_NN_FAST=off`` selects the reference strategy for a whole process;
:func:`set_fast` flips it at runtime (tests, A/B benchmarking).  This is a
debugging / benchmarking escape hatch, not a results knob — both paths
produce identical numbers.
"""

from __future__ import annotations

import os

_FAST: bool = os.environ.get("REPRO_NN_FAST", "").strip().lower() not in (
    "off", "0", "false", "no")


def enabled() -> bool:
    """Is the fast execution strategy active?"""
    return _FAST


def set_fast(on: bool) -> bool:
    """Select the strategy at runtime; returns the previous setting."""
    global _FAST
    prev = _FAST
    _FAST = bool(on)
    return prev
