"""Functional ops composed from Tensor primitives."""

from __future__ import annotations

import numpy as np

from .tensor import Array, Tensor


def softmax(x: Tensor, axis: int = -1, mask: Array | None = None) -> Tensor:
    """Numerically-stable softmax with an optional additive mask.

    ``mask`` follows Eqn 1: entries are 0 where attention is allowed and a
    large negative number where it is forbidden.  It is a constant (no
    gradient flows into it).  Rows that are entirely masked produce a
    uniform distribution over the masked row rather than NaNs; callers
    multiply those rows away with node masks.
    """
    if mask is not None:
        x = x + Tensor(mask)
    m = Tensor(x.data.max(axis=axis, keepdims=True))  # constant shift
    e = (x - m).exp()
    z = e.sum(axis=axis, keepdims=True)
    return e / (z + 1e-9)


def gelu(x: Tensor) -> Tensor:
    """tanh-approximation GELU."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = (x + x * x * x * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def log1p(x: Tensor) -> Tensor:
    return (x + 1.0).log()


def mse(pred: Tensor, target: Array) -> Tensor:
    d = pred - Tensor(target)
    return (d * d).mean()


def mae(pred: Tensor, target: Array) -> Tensor:
    return (pred - Tensor(target)).abs().mean()


def masked_mean(x: Tensor, mask: Array, axis: int) -> Tensor:
    """Mean over ``axis`` counting only positions where ``mask`` is 1."""
    m = Tensor(mask)
    total = (x * m).sum(axis=axis)
    count = np.maximum(mask.sum(axis=axis), 1.0)
    return total * Tensor(1.0 / count)
