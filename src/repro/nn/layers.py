"""Neural-network modules (the PyTorch subset the predictors need).

All modules store parameters as :class:`Tensor` with ``requires_grad`` and
expose ``parameters()`` / ``state_dict()`` / ``load_state_dict()`` so the
trainer can snapshot and restore best weights for early stopping
(§IV-B8).  Graph inputs are dense padded batches:

* ``x`` — node features ``(B, N, F)``;
* ``node_mask`` — ``(B, N)`` 1 for real nodes, 0 for padding;
* ``attn_mask`` / ``adj`` — ``(B, N, N)`` reachability / adjacency.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .tensor import Array, Tensor

_NEG = np.float32(-1e9)


class Module:
    """Minimal module base with recursive parameter discovery."""

    def parameters(self) -> list[Tensor]:
        # dedupe by identity: a tied parameter reachable through several
        # attributes must be updated (and zeroed, and counted) exactly once
        out: list[Tensor] = []
        seen: set[int] = set()
        for v in self.__dict__.values():
            for p in _collect(v):
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        # first-visit name wins for tied parameters, mirroring parameters()
        out: list[tuple[str, Tensor]] = []
        seen: set[int] = set()
        for k, v in self.__dict__.items():
            for name, p in _collect_named(v, f"{prefix}{k}"):
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append((name, p))
        return out

    def state_dict(self) -> dict[str, Array]:
        return {k: p.data.copy() for k, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, Array]) -> None:
        params = dict(self.named_parameters())
        if set(params) != set(state):
            missing = set(params) ^ set(state)
            raise KeyError(f"state dict mismatch: {sorted(missing)}")
        for k, p in params.items():
            if p.data.shape != state[k].shape:
                raise ValueError(f"shape mismatch for {k}")
            p.data = state[k].astype(np.float32).copy()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect(v) -> list[Tensor]:
    if isinstance(v, Tensor) and v.requires_grad:
        return [v]
    if isinstance(v, Module):
        return v.parameters()
    if isinstance(v, (list, tuple)):
        out = []
        for item in v:
            out.extend(_collect(item))
        return out
    return []


def _collect_named(v, name: str) -> list[tuple[str, Tensor]]:
    if isinstance(v, Tensor) and v.requires_grad:
        return [(name, v)]
    if isinstance(v, Module):
        return v.named_parameters(prefix=name + ".")
    if isinstance(v, (list, tuple)):
        out = []
        for i, item in enumerate(v):
            out.extend(_collect_named(item, f"{name}.{i}"))
        return out
    return []


def xavier(rng: np.random.Generator, fan_in: int, fan_out: int,
           shape: tuple[int, ...] | None = None) -> Array:
    """Glorot-uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit,
                       size=shape or (fan_in, fan_out)).astype(np.float32)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        self.w = Tensor(xavier(rng, d_in, d_out), requires_grad=True)
        self.b = Tensor(np.zeros(d_out, np.float32), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        y = x @ self.w
        if self.b is not None:
            y = y + self.b
        return y


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.scale = Tensor(np.ones(dim, np.float32), requires_grad=True)
        self.bias = Tensor(np.zeros(dim, np.float32), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.scale + self.bias


class Sequential(Module):
    def __init__(self, *mods: Module) -> None:
        self.mods = list(mods)

    def forward(self, x: Tensor) -> Tensor:
        for m in self.mods:
            x = m(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaskedMultiHeadAttention(Module):
    """Multi-head self-attention restricted by an additive mask (Eqn 1).

    For the DAG Transformer the mask encodes DAGRA reachability; padding
    nodes are masked out of every row.
    """

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator) -> None:
        if dim % n_heads:
            raise ValueError("n_heads must divide dim")
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, dim, rng)
        self.wv = Linear(dim, dim, rng)
        self.wo = Linear(dim, dim, rng)

    def forward(self, x: Tensor, attn_mask: Array) -> Tensor:
        B, N, D = x.shape
        h, hd = self.n_heads, self.head_dim

        def heads(t: Tensor) -> Tensor:
            return t.reshape(B, N, h, hd).transpose(0, 2, 1, 3)

        q, k, v = heads(self.wq(x)), heads(self.wk(x)), heads(self.wv(x))
        scores = (q @ k.swapaxes(-1, -2)) * np.float32(1.0 / np.sqrt(hd))
        if attn_mask.dtype == np.bool_:
            add_mask = np.where(attn_mask[:, None, :, :], np.float32(0.0), _NEG)
        else:
            # precomputed additive bias, already (B, 1, N, N) float32 —
            # bit-identical to the np.where above by construction
            add_mask = attn_mask
        attn = softmax(scores, axis=-1, mask=add_mask)
        ctx = attn @ v
        ctx = ctx.transpose(0, 2, 1, 3).reshape(B, N, D)
        return self.wo(ctx)


class GCNConv(Module):
    """Graph convolution: ``H' = σ(Â H W)`` (Kipf & Welling).

    ``adj`` is the pre-normalized ``(B, N, N)`` adjacency with self-loops
    (:func:`repro.ir.reachability.undirected_adjacency`).
    """

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator) -> None:
        self.lin = Linear(d_in, d_out, rng)

    def forward(self, x: Tensor, adj: Array) -> Tensor:
        return Tensor(adj) @ self.lin(x)


class GATConv(Module):
    """Graph attention convolution (Veličković et al.), single matrix form.

    Attention logits ``e_ij = LeakyReLU(a_src·h_i + a_dst·h_j)`` are
    masked to edges of ``adj`` and softmax-normalized per row.
    """

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator,
                 n_heads: int = 1) -> None:
        if d_out % n_heads:
            raise ValueError("n_heads must divide d_out")
        self.n_heads = n_heads
        self.head_dim = d_out // n_heads
        self.lin = Linear(d_in, d_out, rng, bias=False)
        self.a_src = Tensor(xavier(rng, self.head_dim, 1,
                                   (n_heads, self.head_dim)), requires_grad=True)
        self.a_dst = Tensor(xavier(rng, self.head_dim, 1,
                                   (n_heads, self.head_dim)), requires_grad=True)

    def forward(self, x: Tensor, adj: Array) -> Tensor:
        B, N, _ = x.shape
        h, hd = self.n_heads, self.head_dim
        z = self.lin(x).reshape(B, N, h, hd).transpose(0, 2, 1, 3)  # (B,h,N,hd)
        src = (z * self.a_src.reshape(1, h, 1, hd)).sum(axis=-1)    # (B,h,N)
        dst = (z * self.a_dst.reshape(1, h, 1, hd)).sum(axis=-1)
        logits = (src.reshape(B, h, N, 1) + dst.reshape(B, h, 1, N)).leaky_relu()
        edge = adj[:, None, :, :] > 0
        add_mask = np.where(edge, np.float32(0.0), _NEG)
        alpha = softmax(logits, axis=-1, mask=add_mask)
        out = alpha @ z                                              # (B,h,N,hd)
        return out.transpose(0, 2, 1, 3).reshape(B, N, h * hd)


def global_add_pool(x: Tensor, node_mask: Array) -> Tensor:
    """Eqn 2: graph embedding = sum of (real) node embeddings."""
    return (x * Tensor(node_mask[..., None])).sum(axis=1)
