"""Optimizers and learning-rate schedules (§IV-B6).

Adam with the paper's defaults (β₁ = 0.9, β₂ = 0.999) plus a cosine decay
schedule running from the initial rate to zero over the training budget.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .tensor import Tensor


class Adam:
    """Adam (Kingma & Ba) over a fixed parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.t = 0
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]
        # two reusable scratch buffers per dtype (sized for the largest
        # parameter): the update needs the numerator lr·(m/bias1) and the
        # denominator sqrt(v/bias2)+eps alive at the same time, and fusing
        # them differently would reassociate the float ops and change the
        # trained weights bit-for-bit
        sizes: dict[np.dtype, int] = {}
        for p in self.params:
            dt = p.data.dtype
            sizes[dt] = max(sizes.get(dt, 0), p.data.size)
        self._scratch = {dt: (np.empty(n, dt), np.empty(n, dt))
                         for dt, n in sizes.items()}

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            s1, s2 = self._scratch[p.data.dtype]
            t1 = s1[:g.size].reshape(g.shape)
            t2 = s2[:g.size].reshape(g.shape)
            m *= b1
            np.multiply(g, 1 - b1, out=t1)
            m += t1
            v *= b2
            np.multiply(g, 1 - b2, out=t1)
            t1 *= g
            v += t1
            np.divide(m, bias1, out=t1)
            t1 *= self.lr
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            p.data -= t1

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class CosineDecay:
    """LR decays from ``lr0`` at epoch 0 to 0 at ``total_epochs`` (§IV-B6).

    An optional linear warm-up over the first ``warmup_frac`` of the
    budget precedes the cosine; ``warmup_frac=0`` gives the paper's plain
    cosine.
    """

    def __init__(self, optimizer: Adam, lr0: float, total_epochs: int,
                 warmup_frac: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if not 0.0 <= warmup_frac < 1.0:
            raise ValueError("warmup_frac must be in [0, 1)")
        self.opt = optimizer
        self.lr0 = lr0
        self.total = total_epochs
        self.warmup = int(round(warmup_frac * total_epochs))
        self.epoch = 0
        self.opt.lr = lr0 / max(1, self.warmup) if self.warmup else lr0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch = min(self.epoch + 1, self.total)
        if self.epoch < self.warmup:
            lr = self.lr0 * (self.epoch + 1) / self.warmup
        else:
            t = self.epoch - self.warmup
            span = max(1, self.total - self.warmup)
            lr = 0.5 * self.lr0 * (1.0 + math.cos(math.pi * t / span))
        self.opt.lr = lr
        return lr
