"""Reverse-mode autograd over numpy arrays.

The predictor stack (§IV-B) needs exactly the PyTorch subset used by the
paper: dense linear algebra, broadcasting arithmetic, reductions, softmax
with additive masks, and gradient descent.  This module provides a small
define-by-run :class:`Tensor` with a topologically-ordered backward pass;
everything stores float32 (the BLAS-fast dtype) unless told otherwise.

Design notes (per the HPC guides): all ops are vectorized numpy; gradient
accumulation is in-place (``+=``); broadcasting gradients are reduced with
a single ``sum`` per mismatched axis group; no per-element Python loops
anywhere on the hot path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

import numpy as np

from . import fastpath

Array = np.ndarray

_GRAD_ENABLED = True


@contextmanager
def no_grad():
    """Disable tape construction (evaluation mode).

    Inside the context, results of Tensor ops carry no backward closures,
    so intermediate arrays are freed by reference counting as soon as they
    go out of scope — important for batched evaluation on a small-memory
    host.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _as_array(x, dtype=np.float32) -> Array:
    if isinstance(x, np.ndarray):
        return x.astype(dtype, copy=False)
    return np.asarray(x, dtype=dtype)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus an autograd tape node."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str = "") -> None:
        self.data: Array = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[["Tensor"], None] | None = None
        self._prev: tuple["Tensor", ...] = ()
        self.name = name

    # ----------------------------------------------------------- properties
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def numpy(self) -> Array:
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    # ------------------------------------------------------------- plumbing
    def _make(self, data: Array, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED:
            out.requires_grad = any(p.requires_grad for p in parents)
            if out.requires_grad and backward is not None:
                out._prev = tuple(parents)
                # fast: store the raw closure (it captures only the parents
                # and receives the node as an argument) — no node -> closure
                # -> node reference cycle, so the tape dies by refcounting
                # instead of stressing the cycle GC every training step.
                # reference: the original out-capturing lambda (cyclic).
                out._backward = (backward if fastpath._FAST
                                 else (lambda _node: backward(out)))
        return out

    def _accum(self, grad: Array, own: bool = False) -> None:
        """Accumulate ``grad`` into ``self.grad``.

        ``own=True`` asserts ``grad`` is a freshly-allocated temporary no
        one else aliases (or a pass-through buffer whose previous owner's
        backward has already run), so the first accumulation may *steal*
        it instead of copying into ``zeros_like`` scratch.  Only set it
        for provably fresh arrays — never for views of live buffers.
        The dtype/shape check keeps the legacy cast-and-broadcast
        semantics for mixed-precision gradients (e.g. ``max``'s float64
        tie-splitting mask).
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if (fastpath._FAST and grad.dtype == self.data.dtype
                    and grad.shape == self.data.shape):
                self.grad = grad if own else grad.copy()
            else:
                self.grad = np.zeros_like(self.data)
                self.grad += grad
        else:
            self.grad += grad

    # -------------------------------------------------------------- binary
    # Fast-path notes (gated on ``fastpath._FAST``; the else branches are
    # the reference strategy, bit-identical by the differential tests):
    # constant operands skip their gradient computation entirely — the
    # reference path builds the full gradient array only for ``_accum`` to
    # discard it — and provably-fresh temporaries are handed to ``_accum``
    # with ``own=True``.  A same-shape add/sub passes ``out.grad`` through
    # unchanged; at that point ``out``'s backward has already run (reverse
    # topological order) and nothing reads ``out.grad`` again, so exactly
    # one parent may steal the buffer — any second taker must copy.
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(out: "Tensor") -> None:
            og = out.grad
            if fastpath._FAST:
                taken = False
                if self.requires_grad:
                    g = _unbroadcast(og, self.shape)
                    taken = g is og
                    self._accum(g, own=True)
                if other.requires_grad:
                    g = _unbroadcast(og, other.shape)
                    other._accum(g, own=(g is not og) or not taken)
            else:
                self._accum(_unbroadcast(og, self.shape))
                other._accum(_unbroadcast(og, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(out: "Tensor") -> None:
            og = out.grad
            if fastpath._FAST:
                if self.requires_grad:
                    self._accum(_unbroadcast(og, self.shape), own=True)
                if other.requires_grad:
                    other._accum(_unbroadcast(-og, other.shape), own=True)
            else:
                self._accum(_unbroadcast(og, self.shape))
                other._accum(_unbroadcast(-og, other.shape))

        return self._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(out: "Tensor") -> None:
            og = out.grad
            if fastpath._FAST:
                if self.requires_grad:
                    self._accum(_unbroadcast(og * other.data, self.shape),
                                own=True)
                if other.requires_grad:
                    other._accum(_unbroadcast(og * self.data, other.shape),
                                 own=True)
            else:
                self._accum(_unbroadcast(og * other.data, self.shape))
                other._accum(_unbroadcast(og * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(out: "Tensor") -> None:
            og = out.grad
            if fastpath._FAST:
                if self.requires_grad:
                    self._accum(_unbroadcast(og / other.data, self.shape),
                                own=True)
                if other.requires_grad:
                    other._accum(_unbroadcast(
                        -og * self.data / (other.data * other.data),
                        other.shape), own=True)
            else:
                self._accum(_unbroadcast(og / other.data, self.shape))
                other._accum(_unbroadcast(
                    -og * self.data / (other.data * other.data), other.shape))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accum(-out.grad, own=True)

        return self._make(-self.data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(out: "Tensor") -> None:
            g = out.grad
            if self.requires_grad:
                ga = g @ np.swapaxes(other.data, -1, -2)
                self._accum(_unbroadcast(ga, self.shape), own=True)
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other._accum(_unbroadcast(gb, other.shape), own=True)

        return self._make(self.data @ other.data, (self, other), backward)

    def __pow__(self, p: float) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accum(out.grad * p * self.data ** (p - 1), own=True)

        return self._make(self.data ** p, (self,), backward)

    # --------------------------------------------------------------- unary
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * out.data, own=True)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accum(out.grad / self.data, own=True)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * 0.5 / np.maximum(out.data, 1e-12), own=True)

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * (1.0 - out.data * out.data), own=True)

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * mask, own=True)

        return self._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        pos = self.data > 0
        scale = np.where(pos, 1.0, slope).astype(np.float32)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * scale, own=True)

        return self._make(self.data * scale, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data).astype(np.float32)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad * sign, own=True)

        return self._make(np.abs(self.data), (self,), backward)

    # ---------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: "Tensor") -> None:
            g = out.grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            if fastpath._FAST:
                # hand out the read-only broadcast view: when a gradient
                # already exists (softmax's denominator path) the += reads
                # straight through it, skipping a full materialized copy
                self._accum(np.broadcast_to(g, self.shape))
            else:
                self._accum(np.broadcast_to(g, self.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.size if axis is None else (
            np.prod([self.shape[a] for a in np.atleast_1d(axis)]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == data)
        mask = mask / mask.sum(axis=axis, keepdims=True)
        result = data if keepdims else np.squeeze(data, axis=axis)

        def backward(out: "Tensor") -> None:
            g = out.grad if keepdims else np.expand_dims(out.grad, axis)
            self._accum(g * mask)

        return self._make(result, (self,), backward)

    # --------------------------------------------------------------- shape
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: "Tensor") -> None:
            self._accum(out.grad.reshape(self.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *perm: int) -> "Tensor":
        if len(perm) == 1 and isinstance(perm[0], (tuple, list)):
            perm = tuple(perm[0])
        inv = np.argsort(perm)

        def backward(out: "Tensor") -> None:
            self._accum(out.grad.transpose(inv))

        return self._make(self.data.transpose(perm), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(out: "Tensor") -> None:
            self._accum(np.swapaxes(out.grad, a, b))

        return self._make(np.swapaxes(self.data, a, b), (self,), backward)

    # ------------------------------------------------------------ backward
    def backward(self, grad: Array | None = None) -> None:
        """Run reverse-mode accumulation from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a non-grad tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:  # iterative DFS: deep graphs must not hit the recursion limit
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._prev:
                if id(p) not in visited:
                    stack.append((p, False))
        seed = np.ones_like(self.data) if grad is None else _as_array(grad)
        if seed is grad:
            # the fast path may steal and later mutate the seed buffer;
            # never let that write into a caller-owned array
            seed = seed.copy()
        self.grad = seed
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node)
        # break the tape's reference cycles (closure -> node -> closure) so
        # large intermediates are freed by refcounting, not the cycle GC;
        # leaf parameters keep their grads for the optimizer step
        for node in topo:
            if node._backward is not None:
                node._backward = None
                node._prev = ()
                node.grad = None

    def zero_grad(self) -> None:
        self.grad = None


def stack_params(params: Iterable[Tensor]) -> int:
    """Total number of scalar parameters (diagnostics)."""
    return sum(p.size for p in params)


def take_rows(x: Tensor, idx: Array) -> Tensor:
    """Gather rows ``x[idx]`` with autograd (backward scatter-adds)."""
    data = x.data[idx]
    out = Tensor(data)
    if _GRAD_ENABLED and x.requires_grad:
        def backward(o: "Tensor") -> None:
            g = np.zeros_like(x.data)
            np.add.at(g, idx, o.grad)
            x._accum(g, own=True)

        out.requires_grad = True
        out._prev = (x,)
        out._backward = backward
    return out


def segment_sum(x: Tensor, seg_ids: Array, n_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``n_segments`` buckets by ``seg_ids``."""
    data = np.zeros((n_segments,) + x.data.shape[1:], dtype=x.data.dtype)
    np.add.at(data, seg_ids, x.data)
    out = Tensor(data)
    if _GRAD_ENABLED and x.requires_grad:
        def backward(o: "Tensor") -> None:
            x._accum(o.grad[seg_ids], own=True)

        out.requires_grad = True
        out._prev = (x,)
        out._backward = backward
    return out


def spmm(a_sparse, x: Tensor) -> Tensor:
    """Sparse-constant @ dense-Tensor product with autograd.

    ``a_sparse`` is any scipy.sparse matrix (constant, no gradient); ``x``
    is a 2-D tensor.  Backward propagates ``Aᵀ g``.  DAG adjacencies carry
    ~2 edges per node, so message passing through a block-diagonal sparse
    adjacency is orders of magnitude cheaper than dense batched matmul.
    """
    data = np.asarray(a_sparse @ x.data, dtype=np.float32)
    out = Tensor(data)
    if _GRAD_ENABLED and x.requires_grad:
        at = a_sparse.T.tocsr()

        def backward(o: "Tensor") -> None:
            x._accum(np.asarray(at @ o.grad, dtype=np.float32), own=True)

        out.requires_grad = True
        out._prev = (x,)
        out._backward = backward
    return out
