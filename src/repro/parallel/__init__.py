"""Parallelization substrate: sharding, intra-op and inter-op optimization."""

from .inter_op import LatencyTable, StageLatencySource, slice_stages
from .intra_op import IntraOpPlan, NodeAssignment, optimize_stage
from .plan_cache import PlanCache, cached_optimize_stage, global_plan_cache
from .plans import ParallelPlan, StageAssignment
from .resharding import reshard_time
from .sharding import REPLICATED, ShardingSpec, candidate_specs, iter_axes
from .strategies import Strategy, node_strategies

__all__ = [
    "ShardingSpec", "REPLICATED", "candidate_specs", "iter_axes",
    "reshard_time",
    "Strategy", "node_strategies",
    "IntraOpPlan", "NodeAssignment", "optimize_stage",
    "PlanCache", "cached_optimize_stage", "global_plan_cache",
    "LatencyTable", "StageLatencySource", "slice_stages",
    "ParallelPlan", "StageAssignment",
]
