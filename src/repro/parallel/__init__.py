"""Parallelization substrate: sharding, intra-op and inter-op optimization."""

from .inter_op import LatencyTable, StageLatencySource, slice_stages
from .intra_op import (IntraOpPlan, NodeAssignment, optimize_stage,
                       optimize_stage_reference)
from .plan_cache import PlanCache, cached_optimize_stage, global_plan_cache
from .plans import ParallelPlan, StageAssignment
from .resharding import ReshardCache, reshard_cache, reshard_time
from .sharding import (REPLICATED, ShardingSpec, candidate_specs, intern_spec,
                       iter_axes, spec_by_id, spec_id)
from .handlers import (NodeHandler, ShardingStrategy, describe_handlers,
                       handler_for, iter_handlers, register_handler)
from .strategies import Strategy, legacy_node_strategies, node_strategies

__all__ = [
    "ShardingSpec", "REPLICATED", "candidate_specs", "iter_axes",
    "intern_spec", "spec_id", "spec_by_id",
    "reshard_time", "ReshardCache", "reshard_cache",
    "Strategy", "ShardingStrategy", "node_strategies",
    "legacy_node_strategies",
    "NodeHandler", "register_handler", "handler_for", "iter_handlers",
    "describe_handlers",
    "IntraOpPlan", "NodeAssignment", "optimize_stage",
    "optimize_stage_reference",
    "PlanCache", "cached_optimize_stage", "global_plan_cache",
    "LatencyTable", "StageLatencySource", "slice_stages",
    "ParallelPlan", "StageAssignment",
]
