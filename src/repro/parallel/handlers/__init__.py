"""Per-op strategy-handler registry.

Import order is registration order, and registration order is dispatch
precedence within an op name — the patch-embed handler must register
before the generic movement handlers so it gets first claim on
high-rank reshapes/transposes.
"""

from .base import NodeHandler, ShardingStrategy, Strategy, make_strategy
from .registry import (describe_handlers, handler_for, handler_names,
                       iter_handlers, register_fallback, register_handler)

from . import dot            # noqa: E402,F401  dot_general
from . import embedding      # noqa: E402,F401  gather
from . import conv           # noqa: E402,F401  high-rank reshape/transpose
from . import movement       # noqa: E402,F401  reshape/transpose + fallback
from . import elementwise    # noqa: E402,F401  (fused_)elementwise
from . import reduction      # noqa: E402,F401  reductions
from . import moe            # noqa: E402,F401  top_k/one_hot/scatter_add

__all__ = [
    "NodeHandler", "ShardingStrategy", "Strategy", "make_strategy",
    "register_handler", "register_fallback", "handler_for",
    "iter_handlers", "handler_names", "describe_handlers",
]
