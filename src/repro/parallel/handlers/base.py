"""Handler substrate: strategy dataclasses, the ABC, shared helpers.

A :class:`NodeHandler` generates every SPMD strategy one operator kind
may execute under on a logical mesh — the ColossalAI ``NodeHandler`` /
``StrategiesVector`` shape, adapted to this repo's interned
:class:`~..sharding.ShardingSpec` vocabulary and α-β collective models.
Handlers are stateless singletons registered per op name (exact match)
or per op category (fallback) in :mod:`.registry`; the intra-op DP
consumes their strategy lists through the unchanged
:func:`repro.parallel.strategies.node_strategies` facade.

Strategies carry explicit costs: the work-division ``factor`` (compute),
``comm_time`` (seconds of collectives the strategy itself emits), and
``memory_bytes`` (per-device bytes of the strategy's output).  The DP
prices compute via the roofline model under ``factor`` and adds
``comm_time``; ``memory_bytes`` feeds the executor's memory accounting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from ..sharding import REPLICATED, ShardingSpec, intern_assignments, iter_axes


@dataclass(frozen=True)
class Strategy:
    """One way to execute a node on a logical mesh."""

    name: str
    out: ShardingSpec
    ins: tuple[ShardingSpec, ...]
    #: work division (flops and bytes divided by this)
    factor: int
    #: seconds of collectives the strategy itself performs
    comm_time: float


@dataclass(frozen=True)
class ShardingStrategy(Strategy):
    """A handler-generated strategy with its explicit cost breakdown.

    The compute cost is the roofline kernel time divided by ``factor``
    (computed by the DP, which owns the GPU model); the communication
    cost is ``comm_time``; the memory cost is ``memory_bytes``.
    """

    #: per-device bytes of the output tensor under ``out``
    memory_bytes: float = 0.0


def make_strategy(name: str, out: ShardingSpec,
                  ins: tuple[ShardingSpec, ...], factor: int,
                  comm_time: float, node: Node,
                  mesh: LogicalMesh) -> ShardingStrategy:
    """A :class:`ShardingStrategy` with its memory cost filled in."""
    return ShardingStrategy(name, out, ins, factor, comm_time,
                            node.out.nbytes / out.shard_factor(mesh))


class NodeHandler(ABC):
    """Generates the strategy set of one operator kind.

    Subclasses declare the exact op names (``ops``) and/or op categories
    (``categories``) they serve and are registered with
    :func:`~.registry.register_handler`.  ``matches`` lets a handler
    decline a node (falling through to the next registered handler) so
    specialized handlers — e.g. the patch-embed handler claiming only
    high-rank space-to-depth reshapes — can share an op name with the
    generic one.
    """

    #: exact op names this handler serves (checked before categories)
    ops: tuple[str, ...] = ()
    #: op categories this handler serves when no op-name handler matched
    categories: tuple[str, ...] = ()

    @classmethod
    def matches(cls, node: Node, ins: Sequence[TensorSpec]) -> bool:
        """Whether this handler claims ``node`` (default: always)."""
        return True

    @abstractmethod
    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        """Every strategy ``node`` may execute under on ``mesh``."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def summary(self) -> str:
        doc = (type(self).__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


# ------------------------------------------------------------ shared helpers

def axis_ok(dim: int, axis: str) -> bool:
    """Axis semantics of the Table-III configurations.

    The ``dp`` axis carries *data parallelism*: it may only shard dimension
    0 (the batch dim of activations).  The ``mp`` axis carries *model /
    tensor parallelism*: it shards non-batch dims (features, heads,
    experts) and weight matrices.  This is what distinguishes a (2, 1)
    from a (1, 2) logical view of the same two devices.
    """
    return dim == 0 if axis == "dp" else dim != 0


def align_broadcast(out_spec: ShardingSpec, out: TensorSpec,
                    operand: TensorSpec, mesh: LogicalMesh) -> ShardingSpec:
    """Propagate an output sharding to an elementwise operand.

    Dims are aligned from the right (numpy broadcasting); operand dims
    that are broadcast (absent or size 1) stay replicated on that axis.
    The aligned spec is validated against the operand — a propagated
    assignment may land on a dim the operand's shape does not divide
    evenly (fusion groups and handler-added candidates can misalign) —
    and falls back to replicated rather than emitting an infeasible
    strategy.
    """
    offset = out.rank - operand.rank
    assignments = []
    for d, a in out_spec.assignments:
        di = d - offset
        if di >= 0 and operand.shape[di] == out.shape[d]:
            assignments.append((di, a))
    spec = intern_assignments(tuple(assignments))
    if not spec.valid_for(operand, mesh):
        return REPLICATED
    return spec


def out_candidates(out: TensorSpec, mesh: LogicalMesh,
                   extra_dims: tuple[int, ...] = ()) -> list[ShardingSpec]:
    """Replicated plus axis-semantic shardings over dims {0, 1, last}.

    ``extra_dims`` widens the candidate set (topology-aware handlers add
    interior dims); duplicates and out-of-range dims are dropped.
    """
    cands = [REPLICATED]
    dims = {0, out.rank - 1}
    if out.rank >= 3:
        dims.add(1)
    dims.update(d for d in extra_dims if 0 <= d < out.rank)
    for d in sorted(x for x in dims if x >= 0):
        for a in iter_axes(mesh):
            if not axis_ok(d, a):
                continue
            s = ShardingSpec.shard(d, a)
            if s.valid_for(out, mesh):
                cands.append(s)
    if out.rank >= 2 and mesh.dp > 1 and mesh.mp > 1:
        s = ShardingSpec.shard2(0, "dp", out.rank - 1, "mp")
        if s.valid_for(out, mesh):
            cands.append(s)
    return cands


def reshape_map(src: TensorSpec, dst: TensorSpec) -> dict[int, int]:
    """Best-effort dst dim -> src dim correspondence for common reshapes."""
    mapping: dict[int, int] = {}
    # shared prefix
    p = 0
    while (p < min(src.rank, dst.rank)
           and src.shape[p] == dst.shape[p]):
        mapping[p] = p
        p += 1
    # split last:  (..., H) -> (..., nh, dh)
    if (dst.rank == src.rank + 1 and p == src.rank - 1
            and src.shape[-1] == dst.shape[-2] * dst.shape[-1]):
        mapping[dst.rank - 2] = src.rank - 1
    # merge last:  (..., nh, dh) -> (..., H)
    elif (src.rank == dst.rank + 1 and p == dst.rank - 1
          and dst.shape[-1] == src.shape[-2] * src.shape[-1]):
        mapping[dst.rank - 1] = src.rank - 2
    # flatten leading dims keeping the last:  (B, S, H) -> (B*S, H)
    elif src.shape and dst.shape and src.shape[-1] == dst.shape[-1]:
        mapping[dst.rank - 1] = src.rank - 1
        if dst.rank >= 2 and src.rank >= 2:
            mapping.setdefault(0, 0)
    return mapping
