"""Generic strategy enumerators shared by several handlers.

These are the registry-path ports of the legacy enumerators in
:mod:`repro.parallel.strategies` (kept there as the differential
oracle).  They are module functions rather than handler methods so that
specialized handlers — patch-embed claiming high-rank reshapes, the MoE
dispatch handler claiming ``top_k``/``one_hot``/``scatter_add`` — can
delegate to the generic behavior (bit-identical with topology-aware
search off) and widen it with extra sharding candidates when on.
"""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from ..sharding import REPLICATED, ShardingSpec, intern_assignments, iter_axes
from .base import (Strategy, align_broadcast, axis_ok, make_strategy,
                   out_candidates, reshape_map)


def elementwise_strategies(node: Node, ins: Sequence[TensorSpec],
                           mesh: LogicalMesh,
                           extra_dims: tuple[int, ...] = ()) -> list[Strategy]:
    """Shard the output anywhere; operands follow by broadcasting rules."""
    out = node.out
    strats = []
    for c in out_candidates(out, mesh, extra_dims):
        in_specs = tuple(align_broadcast(c, out, s, mesh) for s in ins)
        strats.append(make_strategy(f"elt[{c}]", c, in_specs,
                                    c.shard_factor(mesh), 0.0, node, mesh))
    return strats


def reduction_strategies(node: Node, ins: Sequence[TensorSpec],
                         mesh: LogicalMesh) -> list[Strategy]:
    """Shard surviving dims only (sharding a reduced dim needs a collective
    the legacy space never priced, so the registry keeps it out too)."""
    src = ins[0]
    axes = tuple(node.params.get("axes", ()))
    keepdims = bool(node.params.get("keepdims", False))
    if keepdims or not axes:
        out_to_in = {d: d for d in range(node.out.rank)}
    else:
        surviving = [d for d in range(src.rank) if d not in axes]
        out_to_in = {i: d for i, d in enumerate(surviving)}
    strats = []
    for c in out_candidates(node.out, mesh):
        ok = True
        in_assign = []
        for d, a in c.assignments:
            di = out_to_in.get(d)
            if di is None:
                ok = False
                break
            in_assign.append((di, a))
        if not ok:
            continue
        in_spec = intern_assignments(tuple(in_assign))
        if not in_spec.valid_for(src, mesh):
            continue
        rest = tuple(REPLICATED for _ in ins[1:])
        strats.append(make_strategy(f"red[{c}]", c, (in_spec,) + rest,
                                    c.shard_factor(mesh), 0.0, node, mesh))
    return strats


def transpose_strategies(node: Node, ins: Sequence[TensorSpec],
                         mesh: LogicalMesh,
                         extra_dims: tuple[int, ...] = ()) -> list[Strategy]:
    """Permute the output sharding back through the transpose."""
    perm = tuple(node.params.get("perm", range(node.out.rank)))
    strats = []
    for c in out_candidates(node.out, mesh, extra_dims):
        in_spec = intern_assignments(
            tuple((perm[d], a) for d, a in c.assignments))
        if in_spec.valid_for(ins[0], mesh):
            strats.append(make_strategy(f"tr[{c}]", c, (in_spec,),
                                        c.shard_factor(mesh), 0.0, node, mesh))
    return strats


def reshape_strategies(node: Node, ins: Sequence[TensorSpec],
                       mesh: LogicalMesh,
                       extra_dims: tuple[int, ...] = ()) -> list[Strategy]:
    """Carry shardings through dims the reshape provably preserves."""
    dmap = reshape_map(ins[0], node.out)
    strats = []
    for c in out_candidates(node.out, mesh, extra_dims):
        in_assign = []
        ok = True
        for d, a in c.assignments:
            di = dmap.get(d)
            if di is None:
                ok = False
                break
            in_assign.append((di, a))
        if not ok:
            continue
        in_spec = intern_assignments(tuple(in_assign))
        if not in_spec.valid_for(ins[0], mesh):
            continue
        strats.append(make_strategy(f"rs[{c}]", c, (in_spec,),
                                    c.shard_factor(mesh), 0.0, node, mesh))
    return strats


def default_strategies(node: Node, ins: Sequence[TensorSpec],
                       mesh: LogicalMesh) -> list[Strategy]:
    """Replicated execution plus batch-dim sharding when shapes allow."""
    strats = [make_strategy("def[R]", REPLICATED,
                            tuple(REPLICATED for _ in ins), 1, 0.0,
                            node, mesh)]
    out = node.out
    if out.rank >= 1:
        for a in iter_axes(mesh):
            if not axis_ok(0, a):
                continue
            c = ShardingSpec.shard(0, a)
            if not c.valid_for(out, mesh):
                continue
            in_specs = []
            ok = True
            for s in ins:
                if s.rank >= 1 and s.shape[0] == out.shape[0]:
                    sp = ShardingSpec.shard(0, a)
                    if not sp.valid_for(s, mesh):
                        ok = False
                        break
                    in_specs.append(sp)
                else:
                    in_specs.append(REPLICATED)
            if ok:
                strats.append(make_strategy(f"def[batch@{a}]", c,
                                            tuple(in_specs),
                                            mesh.axis_size(a), 0.0,
                                            node, mesh))
    return strats
