"""Patch-embed (space-to-depth) strategies for the ViT family.

The patch-embed layer traces to rank-5/6 reshapes and transposes
(``(B, C, H, W) → (B, Hn, ph, Wn, pw, C) → (B, Hn·Wn, ph·pw·C)``).
The generic movement handlers only consider dims {0, 1, last}, which
misses the patch-grid dims; under topology-aware search this handler
widens the candidate set to every interior dim so the spatial grid can
shard over ``mp``.  With the gate off it reproduces the generic
enumeration exactly.

Registered before the generic movement handlers and claiming only
high-rank nodes, it demonstrates the ``matches`` fall-through protocol.
"""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from .base import NodeHandler, Strategy
from .common import (default_strategies, reshape_strategies,
                     transpose_strategies)
from .registry import register_handler


@register_handler
class PatchEmbedHandler(NodeHandler):
    """Space-to-depth movement with patch-grid sharding candidates."""

    ops = ("reshape", "transpose")

    @classmethod
    def matches(cls, node: Node, ins: Sequence[TensorSpec]) -> bool:
        return node.out.rank >= 5 or bool(ins and ins[0].rank >= 5)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        extra = tuple(range(1, node.out.rank - 1)) if mesh.topo_aware else ()
        if node.op == "transpose":
            return transpose_strategies(node, ins, mesh, extra)
        if ins:
            return reshape_strategies(node, ins, mesh, extra)
        return default_strategies(node, ins, mesh)
