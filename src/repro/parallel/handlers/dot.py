"""Contraction (``dot_general``) strategies.

Reproduces the legacy move algebra — batch-parallel, Megatron
column/row weight sharding, and the batch-contraction gradient sync —
and, under topology-aware search, adds the two expert-parallel moves
that only pay off once cross-node links are priced per hop: batching
the expert dim of a batched einsum over the ``mp`` axis, and the GShard
dispatch einsum sharded by expert with an all-to-all token exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...cluster.collectives import allreduce_time, alltoall_time
from ...ir.graph import Node, TensorSpec
from ...cluster.mesh import LogicalMesh
from ..sharding import REPLICATED, ShardingSpec, intern_assignments
from .base import NodeHandler, Strategy, make_strategy
from .registry import register_handler


@dataclass(frozen=True)
class Move:
    """One axis-consuming partitioning choice for a dot_general."""

    label: str
    axis: str                       # "dp" or "mp" (semantics, see axis_ok)
    out_dim: int | None             # output dim sharded, None if partial-sum
    lhs_dim: int | None
    rhs_dim: int | None
    allreduce: bool                 # strategy must all-reduce its output


def dot_moves(lhs: TensorSpec, rhs: TensorSpec, out: TensorSpec,
              topo_aware: bool = False) -> list[Move]:
    moves: list[Move] = []
    # batch-parallel over leading dims shared by lhs/out; the rhs joins the
    # batching only when it is itself batched (rank >= 3 matching the output,
    # e.g. attention score/context einsums, expert-parallel FFNs) — a rank-2
    # rhs is a weight and stays replicated
    rhs_batched = rhs.rank == out.rank and rhs.rank >= 3
    for d in range(min(2, out.rank - 1 if out.rank else 0)):
        if d >= lhs.rank - 1 or lhs.shape[d] != out.shape[d]:
            continue
        if rhs_batched and (d >= rhs.rank - 1 or rhs.shape[d] != out.shape[d]):
            continue
        rhs_dim = d if rhs_batched else None
        axis = "dp" if d == 0 else "mp"
        moves.append(Move(f"batch{d}", axis, d, d, rhs_dim, False))
    # Megatron column-parallel: weight's output features sharded
    if rhs.rank == 2 and out.rank >= 1 and rhs.shape[1] == out.shape[-1]:
        moves.append(Move("col", "mp", out.rank - 1, None, 1, False))
    # Megatron row-parallel: contraction dim sharded, partial sums all-reduced
    if rhs.rank == 2 and lhs.rank >= 1 and lhs.shape[-1] == rhs.shape[0]:
        moves.append(Move("row", "mp", None, lhs.rank - 1, 0, True))
    # contraction over batch dims (weight-gradient matmuls: dW = x^T g);
    # sharding the batch yields partial sums -> the DP gradient all-reduce
    if (lhs.rank == rhs.rank and lhs.rank > out.rank and lhs.rank >= 2
            and lhs.shape[0] == rhs.shape[0]):
        moves.append(Move("gradsync", "dp", None, 0, 0, True))
    # expert parallelism over the leading batch dim of a fully batched
    # einsum (the per-expert FFN matmuls): same tiling as batch0 but on
    # the mp axis, so experts land on the fast intra-node links while dp
    # pays the NIC.  Only enumerated under topology-aware search — with
    # flat pricing it is never distinguishable from batch0@dp.
    if topo_aware and rhs_batched and out.rank >= 3 and lhs.rank >= 3 \
            and lhs.shape[0] == out.shape[0] == rhs.shape[0]:
        moves.append(Move("expert0", "mp", 0, 0, 0, False))
    return moves


@register_handler
class DotGeneralHandler(NodeHandler):
    """Batch / column / row / grad-sync (and expert) contraction shardings."""

    ops = ("dot_general",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        lhs, rhs = ins[0], ins[1]
        out = node.out
        strats = [make_strategy("dot[R]", REPLICATED,
                                (REPLICATED, REPLICATED), 1, 0.0, node, mesh)]
        moves = [m for m in dot_moves(lhs, rhs, out, mesh.topo_aware)
                 if mesh.axis_size(m.axis) > 1]

        def mk(selected: list[Move]) -> Strategy | None:
            out_assign, lhs_assign, rhs_assign = [], [], []
            factor = 1
            out_shard_factor = 1
            names = []
            for mv in selected:
                p = mesh.axis_size(mv.axis)
                factor *= p
                names.append(f"{mv.label}@{mv.axis}")
                if mv.out_dim is not None:
                    out_assign.append((mv.out_dim, mv.axis))
                    out_shard_factor *= p
                if mv.lhs_dim is not None:
                    lhs_assign.append((mv.lhs_dim, mv.axis))
                if mv.rhs_dim is not None:
                    rhs_assign.append((mv.rhs_dim, mv.axis))
            try:
                out_spec = intern_assignments(tuple(out_assign))
                lhs_spec = intern_assignments(tuple(lhs_assign))
                rhs_spec = intern_assignments(tuple(rhs_assign))
            except ValueError:  # a dim or axis mapped twice: incompatible
                return None
            if not (out_spec.valid_for(out, mesh)
                    and lhs_spec.valid_for(lhs, mesh)
                    and rhs_spec.valid_for(rhs, mesh)):
                return None
            comm = 0.0
            for mv in selected:
                if mv.allreduce:
                    p = mesh.axis_size(mv.axis)
                    comm += allreduce_time(mesh.axis_link(mv.axis),
                                           out.nbytes / out_shard_factor, p)
            return make_strategy("dot[" + "+".join(names) + "]", out_spec,
                                 (lhs_spec, rhs_spec), factor, comm,
                                 node, mesh)

        for mv in moves:
            s = mk([mv])
            if s:
                strats.append(s)
        for i, m1 in enumerate(moves):
            for m2 in moves[i + 1:]:
                if m1.axis == m2.axis:
                    continue
                s = mk([m1, m2])
                if s:
                    strats.append(s)
        strats.extend(self._dispatch_strategies(node, lhs, rhs, mesh))
        return strats

    def _dispatch_strategies(self, node: Node, lhs: TensorSpec,
                             rhs: TensorSpec,
                             mesh: LogicalMesh) -> list[Strategy]:
        """GShard dispatch einsum ``(tokens, kE) × (tokens, H) → (E, cap, H)``
        sharded by expert over ``mp``: each device builds its experts' token
        slabs locally, then an all-to-all exchanges tokens between expert
        owners.  Topology-aware only — under flat pricing the legacy space
        must stay bit-identical."""
        out = node.out
        if not (mesh.topo_aware and mesh.mp > 1):
            return []
        if not (out.rank == 3 and lhs.rank == 2 and rhs.rank == 2
                and lhs.shape[0] == rhs.shape[0]          # contract tokens
                and rhs.shape[1] == out.shape[-1]         # model dim carried
                and out.shape[0] >= 2
                and lhs.shape[1] % out.shape[0] == 0):    # kE divisible by E
            return []
        out_spec = ShardingSpec.shard(0, "mp")
        lhs_spec = ShardingSpec.shard(1, "mp")
        if not (out_spec.valid_for(out, mesh)
                and lhs_spec.valid_for(lhs, mesh)):
            return []
        comm = alltoall_time(mesh.axis_link("mp"), out.nbytes, mesh.mp)
        return [make_strategy("dot[dispatch@mp]", out_spec,
                              (lhs_spec, REPLICATED), mesh.mp, comm,
                              node, mesh)]
