"""Elementwise and fused elementwise-chain strategies."""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from .base import NodeHandler, Strategy
from .common import elementwise_strategies
from .registry import register_handler


@register_handler
class FusedElementwiseHandler(NodeHandler):
    """Fused elementwise chain: all dims become sharding candidates.

    A fusion group is bandwidth-bound over its whole iteration space, so
    under topology-aware search every dim is worth considering (interior
    dims often carry the one size that divides a non-power-of-two mesh
    axis).  With the gate off it is exactly the generic elementwise
    enumeration — fusion must not perturb the flat-pricing space.
    """

    ops = ("fused_elementwise",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        extra = tuple(range(1, node.out.rank - 1)) if mesh.topo_aware else ()
        return elementwise_strategies(node, ins, mesh, extra)


@register_handler
class ElementwiseHandler(NodeHandler):
    """Shard the output anywhere; operands follow numpy broadcasting."""

    categories = ("elementwise",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        return elementwise_strategies(node, ins, mesh)
