"""Embedding-lookup (``gather``) strategies.

Reproduces the legacy enumeration — replicated, Megatron column-sharded
embedding dim, and batch-sharded indices — and, under topology-aware
search, adds the vocab-sharded table: each device holds a slice of the
rows, emits zeros for out-of-shard ids, and an all-reduce of the output
merges the partials (Megatron's ``VocabParallelEmbedding``).  Vocab
sharding divides the table's memory by ``mp`` at the price of one
all-reduce, a trade that only prices correctly once the mp axis's hop
path is known.
"""

from __future__ import annotations

from typing import Sequence

from ...cluster.collectives import allreduce_time
from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from ..sharding import REPLICATED, ShardingSpec, iter_axes
from .base import NodeHandler, Strategy, make_strategy
from .registry import register_handler


@register_handler
class EmbeddingHandler(NodeHandler):
    """Replicated / column-sharded / batch-sharded (/ vocab-sharded) gather."""

    ops = ("gather",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        table, idx = ins[0], ins[1] if len(ins) > 1 else ins[0]
        out = node.out
        strats = [make_strategy("gather[R]", REPLICATED,
                                tuple(REPLICATED for _ in ins), 1, 0.0,
                                node, mesh)]
        for a in iter_axes(mesh):
            # shard the embedding dim of the table (model parallelism)
            if (a == "mp" and table.rank == 2 and out.rank >= 1
                    and table.shape[1] == out.shape[-1]):
                s = ShardingSpec.shard(out.rank - 1, a)
                t = ShardingSpec.shard(1, a)
                if s.valid_for(out, mesh) and t.valid_for(table, mesh):
                    strats.append(make_strategy(
                        f"gather[col@{a}]", s,
                        (t,) + tuple(REPLICATED for _ in ins[1:]),
                        mesh.axis_size(a), 0.0, node, mesh))
            # shard the index batch dim (data parallelism)
            if (a == "dp" and len(ins) > 1 and idx.rank >= 1
                    and out.shape[0] == idx.shape[0]):
                s = ShardingSpec.shard(0, a)
                i = ShardingSpec.shard(0, a)
                if s.valid_for(out, mesh) and i.valid_for(idx, mesh):
                    strats.append(make_strategy(
                        f"gather[batch@{a}]", s,
                        (REPLICATED, i) + tuple(REPLICATED for _ in ins[2:]),
                        mesh.axis_size(a), 0.0, node, mesh))
        strats.extend(self._vocab_sharded(node, ins, mesh))
        return strats

    def _vocab_sharded(self, node: Node, ins: Sequence[TensorSpec],
                       mesh: LogicalMesh) -> list[Strategy]:
        """Rows of the table sharded over ``mp``; partial outputs merged by
        one all-reduce.  Topology-aware only — with flat pricing the legacy
        space must stay bit-identical."""
        table = ins[0]
        out = node.out
        if not (mesh.topo_aware and mesh.mp > 1 and table.rank == 2
                and out.rank >= 1 and table.shape[1] == out.shape[-1]):
            return []
        t = ShardingSpec.shard(0, "mp")
        if not t.valid_for(table, mesh):
            return []
        comm = allreduce_time(mesh.axis_link("mp"), out.nbytes, mesh.mp)
        return [make_strategy("gather[vocab@mp]", REPLICATED,
                              (t,) + tuple(REPLICATED for _ in ins[1:]),
                              mesh.mp, comm, node, mesh)]
