"""MoE routing-path (``top_k`` / ``one_hot`` / ``scatter_add``) strategies.

The router's gating chain is cheap but its layouts decide where the
dispatch all-to-all happens.  With topology-aware search off these ops
keep the replicate-or-batch-shard default (bit-identical to the legacy
space); with it on, the handler adds expert-dim candidates:

* ``one_hot`` — shard the class (expert) dim: each device materializes
  its slice of the expert-assignment mask locally, no collective;
* ``scatter_add`` — shard the trailing feature dim: updates land inside
  each device's feature slice, so the combine runs without exchange.
"""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from ..sharding import REPLICATED, ShardingSpec
from .base import NodeHandler, Strategy, make_strategy
from .common import default_strategies
from .registry import register_handler


@register_handler
class MoEDispatchHandler(NodeHandler):
    """Routing-chain ops with expert/feature-dim sharding candidates."""

    ops = ("top_k", "one_hot", "scatter_add")

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        strats = default_strategies(node, ins, mesh)
        if not (mesh.topo_aware and mesh.mp > 1):
            return strats
        out = node.out
        if node.op in ("one_hot", "scatter_add") and out.rank >= 2:
            d = out.rank - 1
            c = ShardingSpec.shard(d, "mp")
            if c.valid_for(out, mesh):
                in_specs = tuple(
                    c if (s.rank == out.rank and s.shape[d] == out.shape[d]
                          and c.valid_for(s, mesh))
                    else REPLICATED
                    for s in ins)
                strats.append(make_strategy(
                    f"{node.op}[expert@mp]", c, in_specs,
                    mesh.mp, 0.0, node, mesh))
        return strats
