"""Generic data-movement handlers and the replicate/batch-shard fallback."""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from .base import NodeHandler, Strategy
from .common import (default_strategies, reshape_strategies,
                     transpose_strategies)
from .registry import register_fallback, register_handler


@register_handler
class TransposeHandler(NodeHandler):
    """Permute the output sharding back through the transpose."""

    ops = ("transpose",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        return transpose_strategies(node, ins, mesh)


@register_handler
class ReshapeHandler(NodeHandler):
    """Carry shardings through dims the reshape provably preserves."""

    ops = ("reshape",)

    @classmethod
    def matches(cls, node: Node, ins: Sequence[TensorSpec]) -> bool:
        return bool(ins)  # a sourceless reshape falls through to the default

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        return reshape_strategies(node, ins, mesh)


@register_fallback
class DefaultHandler(NodeHandler):
    """Replicated execution plus batch-dim sharding when shapes allow."""

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        return default_strategies(node, ins, mesh)
