"""Reduction (sum / max / mean / cumsum / softmax-internals) strategies."""

from __future__ import annotations

from typing import Sequence

from ...cluster.mesh import LogicalMesh
from ...ir.graph import Node, TensorSpec
from .base import NodeHandler, Strategy
from .common import reduction_strategies
from .registry import register_handler


@register_handler
class ReductionHandler(NodeHandler):
    """Shard surviving dims; reduced dims stay local (no collective)."""

    categories = ("reduction",)

    def strategies(self, node: Node, ins: Sequence[TensorSpec],
                   mesh: LogicalMesh) -> list[Strategy]:
        return reduction_strategies(node, ins, mesh)
