"""Handler registration and dispatch.

Resolution order for an operator node:

1. handlers registered for the exact op name, in registration order,
   first one whose ``matches`` accepts the node;
2. handlers registered for the op's category, same rule;
3. the replicate-or-batch-shard :class:`~.movement.DefaultHandler`.

Registration order therefore encodes specificity: a specialized handler
(e.g. patch-embed claiming high-rank reshapes) registers before the
generic handler for the same op and declines everything else via
``matches``.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Type

from ...ir.graph import Node, TensorSpec
from ...ir.ops import op_def
from .base import NodeHandler

_BY_OP: dict[str, list[NodeHandler]] = {}
_BY_CATEGORY: dict[str, list[NodeHandler]] = {}
_HANDLERS: list[NodeHandler] = []
_FALLBACK: NodeHandler | None = None


def register_handler(cls: Type[NodeHandler]) -> Type[NodeHandler]:
    """Class decorator: instantiate and index one handler."""
    inst = cls()
    for op in cls.ops:
        _BY_OP.setdefault(op, []).append(inst)
    for cat in cls.categories:
        _BY_CATEGORY.setdefault(cat, []).append(inst)
    _HANDLERS.append(inst)
    return cls


def register_fallback(cls: Type[NodeHandler]) -> Type[NodeHandler]:
    """The handler of last resort (replicated / batch-shard default)."""
    global _FALLBACK
    register_handler(cls)
    _FALLBACK = _HANDLERS[-1]
    return cls


def handler_for(node: Node, ins: Sequence[TensorSpec]) -> NodeHandler:
    """The handler serving ``node`` (operator nodes only)."""
    for h in _BY_OP.get(node.op, ()):
        if h.matches(node, ins):
            return h
    category = op_def(node.op).category
    for h in _BY_CATEGORY.get(category, ()):
        if h.matches(node, ins):
            return h
    assert _FALLBACK is not None, "no fallback handler registered"
    return _FALLBACK


def iter_handlers() -> Iterator[NodeHandler]:
    """Registered handlers in registration order (CLI listings, tests)."""
    return iter(_HANDLERS)


def handler_names() -> list[str]:
    return [h.name for h in _HANDLERS]


def describe_handlers() -> list[tuple[str, str, str]]:
    """(name, dispatch keys, one-line summary) per registered handler."""
    rows = []
    for h in _HANDLERS:
        keys = ", ".join(h.ops + tuple(f"category:{c}" for c in h.categories))
        rows.append((h.name, keys or "fallback", h.summary))
    return rows
