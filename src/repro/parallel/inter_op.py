"""Inter-operator parallelization: Alpa's stage-slicing dynamic program.

Given per-(slice, submesh) optimal stage latencies — obtained either by
profiling or by PredTOP prediction — choose contiguous unit slices and
submesh assignments minimizing the pipeline latency, by default Eqn 4

``T = Σ t_i + (B-1) · max_j t_j``

over all partitions whose submeshes exactly cover the cluster.  Following
Alpa (OSDI'22 §5.2), the max term is handled by iterating over candidate
``t_max`` values (the distinct stage latencies): for each bound, a DP
minimizes ``Σ t_i`` subject to every stage's latency ≤ ``t_max``; the best
objective over all bounds is optimal.

With a :class:`~repro.runtime.schedules.ScheduleSpec` the DP minimizes
that schedule's closed form instead, through its
``dp_objective(sum_t, max_t, B)`` — any function nondecreasing in both
arguments keeps the t_max-iteration scheme exact, because for a fixed
bound the DP still minimizes ``Σ t_i`` and the per-bound optimum is
``dp_objective(min Σ t, t_max, B)``.  ``schedule=None`` (the default)
preserves the original Eqn-4 arithmetic bit for bit.

``StageLatencySource`` abstracts where latencies come from, so exhaustive
profiling, partial profiling, and PredTOP variants all reuse this DP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from ..cluster.mesh import DeviceMesh
from ..models.clustering import Clustering
from .plans import ParallelPlan, StageAssignment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.schedules import ScheduleSpec

INFEASIBLE = float("inf")


class StageLatencySource(Protocol):
    """Optimal intra-stage latency of unit slice [i, j) on a submesh."""

    def latency(self, unit_start: int, unit_end: int,
                submesh_index: int) -> float: ...


@dataclass
class LatencyTable(StageLatencySource):
    """Dense table implementation backed by a dict."""

    values: dict[tuple[int, int, int], float] = field(default_factory=dict)

    def set(self, i: int, j: int, m: int, value: float) -> None:
        self.values[(i, j, m)] = value

    def latency(self, unit_start: int, unit_end: int,
                submesh_index: int) -> float:
        return self.values.get((unit_start, unit_end, submesh_index),
                               INFEASIBLE)

    def all_latencies(self) -> list[float]:
        return [v for v in self.values.values() if v < INFEASIBLE]


def slice_stages(
    clustering: Clustering,
    submeshes: Sequence[DeviceMesh],
    source: StageLatencySource,
    n_microbatches: int,
    total_devices: int | None = None,
    max_stages: int | None = None,
    schedule: "ScheduleSpec | None" = None,
    jobs: int | None = None,
) -> ParallelPlan:
    """Run the Alpa inter-op DP; returns the best pipeline plan.

    Args:
        clustering: the model's layer units (stage boundaries).
        submeshes: candidate submeshes (sorted arbitrarily; indexed by
            position when querying ``source``).
        source: per-(slice, submesh) optimal stage latency.
        n_microbatches: ``B`` in the pipeline closed form.
        total_devices: devices that must be exactly covered (default: the
            largest submesh's device count).
        max_stages: optional cap on pipeline depth.
        schedule: pipeline schedule whose ``dp_objective`` the DP
            minimizes; ``None`` keeps the original Eqn-4 float
            arithmetic exactly (the 1F1B differential tests pin this).
        jobs: engine workers for the candidate-``t_max`` sweep (None =
            ``REPRO_JOBS``); the per-bound DPs are independent, so they
            fan out in chunks with an in-order reduction that re-applies
            the serial loop's incumbent cutoff — the chosen plan is
            bit-identical to ``jobs=1``, at most ``jobs - 1`` bounds of
            wasted work past the break point.

    Returns:
        The minimizing :class:`ParallelPlan`; its ``iteration_latency`` is
        ``inf`` when no feasible cover exists.
    """
    U = clustering.n_units
    D = total_devices or max(m.num_devices for m in submeshes)
    sizes = [m.num_devices for m in submeshes]

    if schedule is None:
        def objective(total: float, t_max: float) -> float:
            return total + (n_microbatches - 1) * t_max

        def floor(t_max: float) -> float:
            return (n_microbatches - 1) * t_max
    else:
        def objective(total: float, t_max: float) -> float:
            return schedule.dp_objective(total, t_max, n_microbatches)

        def floor(t_max: float) -> float:
            # with sum_t = 0 this is the smallest objective any plan
            # bounded by t_max can reach (dp_objective is nondecreasing)
            return schedule.dp_objective(0.0, t_max, n_microbatches)

    # distinct candidate t_max values, ascending
    candidates = sorted({
        source.latency(i, j, mi)
        for i in range(U) for j in range(i + 1, U + 1)
        for mi in range(len(submeshes))
        if source.latency(i, j, mi) < INFEASIBLE})
    if not candidates:
        return ParallelPlan([], INFEASIBLE, n_microbatches)

    from ..experiments.engine import n_jobs, parallel_map

    best_plan: ParallelPlan | None = None
    best_total = INFEASIBLE
    jobs = n_jobs() if jobs is None else max(1, jobs)
    if jobs <= 1 or len(candidates) <= 2:
        for t_max in candidates:
            # candidates ascend: once the t_max-only term alone exceeds
            # the incumbent, no later bound can win
            if best_plan is not None and floor(t_max) >= best_total:
                break
            total, stages = _dp_min_sum(clustering, submeshes, source, D,
                                        t_max, max_stages)
            if total >= INFEASIBLE:
                continue
            pipeline = objective(total, t_max)
            if pipeline < best_total:
                best_total = pipeline
                best_plan = ParallelPlan(stages, pipeline, n_microbatches)
        return best_plan or ParallelPlan([], INFEASIBLE, n_microbatches)

    for start in range(0, len(candidates), jobs):
        chunk = candidates[start:start + jobs]
        if best_plan is not None and floor(chunk[0]) >= best_total:
            break
        solved = parallel_map(
            _dp_candidate,
            [(clustering, submeshes, source, D, t_max, max_stages)
             for t_max in chunk], jobs)
        stop = False
        for t_max, (total, stages) in zip(chunk, solved):
            # the serial loop's cutoff, re-applied in candidate order —
            # the chunk may hold up to jobs-1 bounds past the break, but
            # their results are discarded so the chosen plan is identical
            if best_plan is not None and floor(t_max) >= best_total:
                stop = True
                break
            if total >= INFEASIBLE:
                continue
            pipeline = objective(total, t_max)
            if pipeline < best_total:
                best_total = pipeline
                best_plan = ParallelPlan(stages, pipeline, n_microbatches)
        if stop:
            break
    return best_plan or ParallelPlan([], INFEASIBLE, n_microbatches)


def _dp_candidate(task: tuple) -> tuple[float, list[StageAssignment]]:
    """One candidate-``t_max`` DP solve (module-level so the engine's
    persistent pool keeps one stable callable across every sweep)."""
    clustering, submeshes, source, D, t_max, max_stages = task
    return _dp_min_sum(clustering, submeshes, source, D, t_max, max_stages)


def sum_lower_bound(source: StageLatencySource, n_units: int,
                    submeshes: Sequence[DeviceMesh], devices: int) -> float:
    """Cheap lower bound on Σ t_i: the single best whole-model stage."""
    best = INFEASIBLE
    for mi, m in enumerate(submeshes):
        if m.num_devices == devices:
            best = min(best, source.latency(0, n_units, mi))
    return 0.0 if best >= INFEASIBLE else best


def _dp_min_sum(
    clustering: Clustering,
    submeshes: Sequence[DeviceMesh],
    source: StageLatencySource,
    total_devices: int,
    t_max: float,
    max_stages: int | None,
) -> tuple[float, list[StageAssignment]]:
    """min Σ t_i covering all units with exactly ``total_devices`` devices,
    every stage latency ≤ t_max."""
    U = clustering.n_units
    sizes = [m.num_devices for m in submeshes]
    S_CAP = max_stages or U

    # F[u][d] = (cost, backpointer): first u units placed using d devices
    F: list[dict[int, tuple[float, tuple | None]]] = [
        {0: (0.0, None)} if u == 0 else {} for u in range(U + 1)]
    for u in range(U):
        for d, (cost, _) in list(F[u].items()):
            if cost >= INFEASIBLE:
                continue
            for j in range(u + 1, U + 1):
                for mi, nd in enumerate(sizes):
                    nd_total = d + nd
                    if nd_total > total_devices:
                        continue
                    t = source.latency(u, j, mi)
                    if t > t_max or t >= INFEASIBLE:
                        continue
                    new_cost = cost + t
                    cur = F[j].get(nd_total)
                    if cur is None or new_cost < cur[0]:
                        F[j][nd_total] = (new_cost, (u, d, mi, t))

    final = F[U].get(total_devices)
    if final is None:
        return INFEASIBLE, []
    # backtrack
    stages: list[StageAssignment] = []
    u, d = U, total_devices
    while u > 0:
        cost, bp = F[u][d]
        if bp is None:
            break
        pu, pd, mi, t = bp
        stages.append(StageAssignment(
            unit_range=(pu, u),
            layer_range=clustering.slice_range(pu, u),
            submesh_index=mi,
            submesh=submeshes[mi],
            latency=t,
        ))
        u, d = pu, pd
    stages.reverse()
    if max_stages is not None and len(stages) > max_stages:
        return INFEASIBLE, []
    return final[0], stages
