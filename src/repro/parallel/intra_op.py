"""Intra-operator parallelization optimizer (the Alpa intra-op pass).

Given a stage's *training* graph and a logical mesh, assign every node an
SPMD strategy minimizing estimated execution time: per-node kernel time
under work division, collectives emitted by the strategies themselves
(e.g. Megatron row-parallel all-reduces, data-parallel gradient
all-reduces appearing as contraction-split backward matmuls), and
resharding on edges whose endpoint shardings disagree.

The optimizer is a two-pass dynamic program over the topological order:

1. **forward sweep** — for every node and strategy, the cheapest way to
   obtain each required input sharding, amortizing producer cost over its
   consumer count (Alpa solves the exact problem as an ILP; the
   amortization is the standard relaxation and is exact on chains);
2. **reverse resolution** — each node commits to one sharding minimizing
   its own table cost plus actual resharding to its already-committed
   consumers, yielding a consistent assignment the executor can cost
   exactly.

Edges out of leaf nodes (stage inputs, parameters) never pay resharding:
parameters are laid out at compile time and stage inputs arrive through
the pipeline already in the sharding the first consumer wants.

Two implementations coexist:

* :func:`optimize_stage` — the production path.  Shardings are interned
  integer ids, kernel times come from the memoized ``op_time_cached``,
  reshard costs from per-mesh :class:`~.resharding.ReshardCache` tables,
  and both DP passes run as numpy min-plus algebra
  (``np.min(share * ptable[:, None] + R, axis=0)`` forward, vectorized
  argmin in reverse).
* :func:`optimize_stage_reference` — the original pure-Python dict-scan
  formulation, kept as the differential-testing oracle.  The vectorized
  path must produce **bit-identical** committed shardings, table costs,
  and DP estimates (every float op is replayed in the same order; min and
  argmin are exact), which ``tests/test_intraop_vectorized.py`` enforces.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass

import numpy as np

from ..cluster.mesh import LogicalMesh
from ..ir.graph import Graph, TensorSpec
from ..ir.structure import clear_signature_intern, context_signatures
from ..runtime.opcost import node_cost_key, op_time, op_time_cached
from .resharding import reshard_cache, reshard_time
from .sharding import (REPLICATED, ShardingSpec, candidate_specs, spec_by_id,
                       spec_id)
from .strategies import Strategy, node_strategies


@dataclass(frozen=True)
class NodeAssignment:
    """Committed strategy for one node."""

    strategy: Strategy

    @property
    def out_spec(self) -> ShardingSpec:
        return self.strategy.out

    @property
    def in_specs(self) -> tuple[ShardingSpec, ...]:
        return self.strategy.ins


@dataclass
class IntraOpPlan:
    """Result of intra-op optimization for (stage graph, logical mesh)."""

    graph: Graph
    mesh: LogicalMesh
    assignments: list[NodeAssignment]
    #: DP estimate of the stage execution time (the executor recomputes the
    #: authoritative value including cross-edge resharding)
    estimated_time: float

    def spec_of(self, nid: int) -> ShardingSpec:
        return self.assignments[nid].out_spec


class _NodeTable:
    """Pre-vectorized per-(node-structure, mesh) DP table.

    Everything the forward sweep needs that does not depend on the
    surrounding graph is computed once and shared by every structurally
    identical node on the same mesh: the strategy tuple, the base cost
    vector (kernel time under each strategy's work division plus its own
    collectives), per-slot required-spec column structure, and the
    grouping of strategies by output sharding.
    """

    __slots__ = ("strats", "assigns", "base", "slots", "out_ids", "out_col")

    def __init__(self, strats: tuple[Strategy, ...], base: np.ndarray) -> None:
        self.strats = strats
        self.assigns = tuple(NodeAssignment(s) for s in strats)
        self.base = base
        base.flags.writeable = False
        # per input slot: (distinct required spec ids, strategy -> column
        # map or None when every strategy requires the same single spec,
        # present mask or None when every strategy has the slot)
        slots = []
        max_arity = max((len(s.ins) for s in strats), default=0)
        for slot in range(max_arity):
            cols: list[int] = []
            col_index: dict[int, int] = {}
            req_of = np.empty(len(strats), dtype=np.intp)
            missing = False
            for i, s in enumerate(strats):
                if slot >= len(s.ins):
                    req_of[i] = -1
                    missing = True
                    continue
                rid = spec_id(s.ins[slot])
                j = col_index.get(rid)
                if j is None:
                    j = len(cols)
                    col_index[rid] = j
                    cols.append(rid)
                req_of[i] = j
            has = req_of >= 0 if missing else None
            if len(cols) == 1 and not missing:
                req_of = None  # scalar broadcast instead of a gather
            slots.append((tuple(cols), req_of, has))
        self.slots = tuple(slots)
        ids: list[int] = []
        gidx: dict[int, int] = {}
        colv = np.empty(len(strats), dtype=np.intp)
        for i, s in enumerate(strats):
            sid = spec_id(s.out)
            j = gidx.get(sid)
            if j is None:
                j = len(ids)
                gidx[sid] = j
                ids.append(sid)
            colv[i] = j
        self.out_ids = tuple(ids)
        # identity grouping (all outputs distinct) skips the scatter-min
        self.out_col = None if len(ids) == len(strats) else colv


#: mesh -> {structure key -> _NodeTable}
_MESH_TABLES: dict[LogicalMesh, dict[tuple, _NodeTable]] = {}

_FALLBACK_NAME = "fallback[R]"


def _mesh_tables(mesh: LogicalMesh) -> dict[tuple, _NodeTable]:
    tabs = _MESH_TABLES.get(mesh)
    if tabs is None:
        tabs = _MESH_TABLES.setdefault(mesh, {})
    return tabs


@dataclass
class CollapseStats:
    """Hit/miss counters for the CFP collapse memo (process-wide)."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


_COLLAPSE_STATS = CollapseStats()

#: mesh -> {context signature -> (forward costs, grouped-by-out-spec costs)}
#: — the CFP collapse memo.  A signature (``ir.structure``) pins every
#: input of a node's forward sweep (its strategy table, reshard matrices,
#: amortization shares, and — inductively — its producers' vectors), so
#: memo entries are bit-identical to a fresh computation on any graph.
_COLLAPSE_MEMO: dict[LogicalMesh, dict[int, tuple[np.ndarray, np.ndarray]]] \
    = {}

#: mesh -> {context signature -> _NodeTable} — the collapse path's table
#: index.  A signature pins ``node_cost_key`` (see ``ir.structure``), so
#: it determines the strategy table; indexing by signature lets a hit
#: node skip the cost-key build and slot-op assembly entirely at prepare
#: time, which is where the cold-solve time actually goes.
_SIG_TABLES: dict[LogicalMesh, dict[int, _NodeTable]] = {}

#: graph -> (n, per-node context signatures); signatures are
#: mesh-independent, so one entry serves every logical view
_GRAPH_SIGS: "weakref.WeakKeyDictionary[Graph, tuple[int, list[int]]]" = \
    weakref.WeakKeyDictionary()


def collapse_stats() -> CollapseStats:
    return _COLLAPSE_STATS


def _collapse_enabled() -> bool:
    return os.environ.get("REPRO_DP_COLLAPSE", "").lower() != "off"


def _collapse_memo(mesh: LogicalMesh) -> dict:
    memo = _COLLAPSE_MEMO.get(mesh)
    if memo is None:
        memo = _COLLAPSE_MEMO.setdefault(mesh, {})
    return memo


def _sig_tables(mesh: LogicalMesh) -> dict:
    tabs = _SIG_TABLES.get(mesh)
    if tabs is None:
        tabs = _SIG_TABLES.setdefault(mesh, {})
    return tabs


def _graph_sigs(graph: Graph) -> list[int]:
    entry = _GRAPH_SIGS.get(graph)
    if entry is None or entry[0] != len(graph):  # graphs are append-only
        entry = (len(graph), context_signatures(graph))
        _GRAPH_SIGS[graph] = entry
    return entry[1]


def clear_table_caches() -> None:
    """Drop the node-table and solve-plan caches (tests and benchmarks)."""
    _MESH_TABLES.clear()
    _SOLVE_PLANS.clear()
    _COLLAPSE_MEMO.clear()
    _SIG_TABLES.clear()
    _GRAPH_SIGS.clear()
    clear_signature_intern()
    _COLLAPSE_STATS.reset()


def _build_table(graph: Graph, node, mesh: LogicalMesh) -> _NodeTable:
    """Strategy table + base costs for an input/literal/operator node."""
    if node.node_type in ("input", "literal"):
        strats = tuple(Strategy(f"leaf[{c}]", c, (), 1, 0.0)
                       for c in candidate_specs(node.out, mesh))
        return _NodeTable(strats, np.zeros(len(strats)))
    in_specs = [graph.nodes[i].out for i in node.inputs]
    gpu = mesh.gpu
    ckey = node_cost_key(node, in_specs)
    strats = tuple(node_strategies(node, in_specs, mesh))
    if not strats:  # always possible: fully replicated execution, and —
        # matching the reference fallback — without input-edge charges
        strats = (Strategy(_FALLBACK_NAME, REPLICATED,
                           tuple(REPLICATED for _ in node.inputs), 1, 0.0),)
        base = np.array([op_time_cached(node, in_specs, gpu, 1.0, ckey)])
        table = _NodeTable(strats, base)
        table.slots = ()
        return table
    base = np.array([op_time_cached(node, in_specs, gpu, float(s.factor), ckey)
                     + s.comm_time for s in strats], dtype=np.float64)
    return _NodeTable(strats, base)


def _output_table(parent_out_ids: tuple[int, ...]) -> _NodeTable:
    """Output nodes adopt their operand's sharding at no cost: one
    strategy per distinct parent out-spec, in parent table order."""
    strats = []
    for sid in parent_out_ids:
        s = spec_by_id(sid)
        strats.append(Strategy(f"out[{s}]", s, (s,), 1, 0.0))
    return _NodeTable(tuple(strats), np.zeros(len(strats)))


class _SolvePlan:
    """Per-(graph, mesh) prepared DP: every lookup the sweep needs that
    depends only on the graph structure and the mesh — node tables, the
    reshard-cost matrix of each non-leaf edge, consumer shares, reverse
    edge lists — prebound so a solve is pure min-plus algebra.

    Leaf edges (stage inputs, parameters) are dropped at prepare time:
    leaf tables cost exactly 0.0 under every candidate sharding, so the
    reference's ``min(share * 0.0 + 0.0) = 0.0`` contribution is the
    float-addition identity here (no ``-0.0`` can arise from these sums).
    """

    __slots__ = ("n", "fwd", "rev")

    def __init__(self, n: int, fwd: list, rev: list) -> None:
        self.n = n
        #: per node: (table, ((pid, share, R, req_of, has), ...))
        self.fwd = fwd
        #: reversed order: (nid, table, nbytes, ((cid, slot), ...), is_sink)
        self.rev = rev


#: graph -> {mesh -> _SolvePlan}; weak so retired graphs free their plans
_SOLVE_PLANS: "weakref.WeakKeyDictionary[Graph, dict]" = \
    weakref.WeakKeyDictionary()


class _PlanTables:
    """Index a plan's forward entries as a node-id -> table mapping."""

    __slots__ = ("fwd",)

    def __init__(self, fwd: list) -> None:
        self.fwd = fwd

    def __getitem__(self, nid: int) -> _NodeTable:
        return self.fwd[nid][0]


def _slot_ops_for(graph: Graph, node, table: _NodeTable, node_tab,
                  rcache) -> tuple:
    """The per-edge forward contractions of one node: (producer id,
    amortization share, reshard matrix, required-spec mapping).  Shared
    by both prepare paths and the lazy completion in ``optimize_stage``
    so the three produce identical tuples."""
    slot_ops = []
    for slot, (cols, req_of, has) in enumerate(table.slots):
        pid = node.inputs[slot]
        pnode = graph.nodes[pid]
        if pnode.node_type in ("input", "literal"):
            continue  # leaf edges reshard for free: exact 0.0 charge
        share = 1.0 / max(1, len(graph.consumers(pid)))
        R = rcache.matrix(node_tab[pid].out_ids, cols, pnode.out.nbytes)
        slot_ops.append((pid, share, R, req_of, has))
    return tuple(slot_ops)


def _prepare(graph: Graph, mesh: LogicalMesh) -> _SolvePlan:
    n = len(graph)
    rcache = reshard_cache(mesh)
    node_tab: list[_NodeTable] = [None] * n  # type: ignore

    fwd: list = []
    if _collapse_enabled():
        # CFP collapse path: tables indexed by context signature.  Equal
        # signatures imply equal ``node_cost_key`` (ir.structure), which
        # determines the strategy table — so a previously seen signature
        # skips the cost-key build, the table construction AND the
        # slot-op assembly; its forward vector comes from the memo at
        # solve time (``slot_ops is None`` marks that expectation, with
        # a lazy rebuild in ``optimize_stage`` as the fallback).
        sigs = _graph_sigs(graph)
        sig_tables = _sig_tables(mesh)
        tables = _mesh_tables(mesh)
        for node in graph.nodes:
            table = sig_tables.get(sigs[node.id])
            if table is not None:
                node_tab[node.id] = table
                fwd.append((table, None))
                continue
            # sig miss: go through the coarser structure-keyed cache so
            # tables stay shared across contexts (a fresh context over a
            # known structure must not rebuild the strategy enumeration)
            if node.node_type == "output":
                key = ("out", node_tab[node.inputs[0]].out_ids)
            elif node.node_type == "operator":
                key = ("op", node_cost_key(
                    node, [graph.nodes[i].out for i in node.inputs]))
            else:
                key = ("leaf", node.out.shape)
            table = tables.get(key)
            if table is None:
                table = (_output_table(key[1]) if node.node_type == "output"
                         else _build_table(graph, node, mesh))
                tables[key] = table
            sig_tables[sigs[node.id]] = table
            node_tab[node.id] = table
            fwd.append((table, _slot_ops_for(graph, node, table, node_tab,
                                             rcache)))
    else:
        tables = _mesh_tables(mesh)
        for node in graph.nodes:
            if node.node_type == "output":
                key = ("out", node_tab[node.inputs[0]].out_ids)
            elif node.node_type == "operator":
                key = ("op", node_cost_key(
                    node, [graph.nodes[i].out for i in node.inputs]))
            else:
                key = ("leaf", node.out.shape)
            table = tables.get(key)
            if table is None:
                table = (_output_table(key[1]) if node.node_type == "output"
                         else _build_table(graph, node, mesh))
                tables[key] = table
            node_tab[node.id] = table
            fwd.append((table, _slot_ops_for(graph, node, table, node_tab,
                                             rcache)))

    rev = []
    for node in reversed(graph.nodes):
        cons = graph.consumers(node.id)
        leaf = node.node_type in ("input", "literal")
        edges = () if leaf else tuple(
            (cid, graph.nodes[cid].inputs.index(node.id)) for cid in cons)
        rev.append((node.id, node_tab[node.id], node.out.nbytes, edges,
                    not cons))
    return _SolvePlan(n, fwd, rev)


def _solve_plan(graph: Graph, mesh: LogicalMesh) -> _SolvePlan:
    per_mesh = _SOLVE_PLANS.get(graph)
    if per_mesh is None:
        per_mesh = _SOLVE_PLANS.setdefault(graph, {})
    plan = per_mesh.get(mesh)
    if plan is None or plan.n != len(graph):  # graphs are append-only
        plan = _prepare(graph, mesh)
        per_mesh[mesh] = plan
    return plan


def optimize_stage(graph: Graph, mesh: LogicalMesh) -> IntraOpPlan:
    """Assign an SPMD strategy to every node of ``graph`` on ``mesh``.

    Vectorized formulation: per node, the forward table is a strategy-cost
    vector; per edge, the cheapest way to obtain each required input
    sharding is one min-plus contraction of the producer's per-spec cost
    vector against a memoized reshard-cost matrix
    (``(share * pcost[:, None] + R).min(axis=0)``).  All float operations
    replay :func:`optimize_stage_reference` in the same order, so results
    are bit-identical — ``tests/test_intraop_vectorized.py`` enforces it.

    Every parent table carries at least one entry (the enumeration ends in
    an explicit replicated fallback), so the reference implementation's
    per-strategy feasibility bookkeeping is vacuous and elided here.

    With the CFP collapse memo on (default; ``REPRO_DP_COLLAPSE=off``
    disables), nodes whose context signature was already solved on this
    mesh — twin branches in this graph, or shared prefixes of previously
    solved graphs — reuse their forward vectors instead of recomputing
    them.  Lossless by construction: a signature pins the strategy table,
    reshard matrices, amortization shares and producer vectors, so the
    memoized arrays are the ones this sweep would produce bit-for-bit
    (``tests/test_dp_collapse.py`` enforces it differentially).
    """
    plan = _solve_plan(graph, mesh)
    rcache = reshard_cache(mesh)
    n = plan.n
    cost_tab: list[np.ndarray] = [None] * n  # type: ignore  # (S,) fwd costs
    #: min forward cost per distinct out spec (the by-spec table)
    group_cost: list[np.ndarray] = [None] * n  # type: ignore

    collapse = _collapse_enabled()
    if collapse:
        memo = _collapse_memo(mesh)
        sigs = _graph_sigs(graph)
        stats = _COLLAPSE_STATS

    for nid, (table, slot_ops) in enumerate(plan.fwd):
        if collapse:
            hit = memo.get(sigs[nid])
            if hit is not None:
                cost_tab[nid], group_cost[nid] = hit
                stats.hits += 1
                continue
        if slot_ops is None:
            # prepared as a collapse hit but solved without one (the gate
            # flipped, or the memo was never filled): complete the entry
            slot_ops = _slot_ops_for(
                graph, graph.nodes[nid], table, _PlanTables(plan.fwd),
                rcache)
            plan.fwd[nid] = (table, slot_ops)
        costs = table.base
        for pid, share, R, req_of, has in slot_ops:
            best = (share * group_cost[pid][:, None] + R).min(axis=0)
            if req_of is None:  # single required spec across all strategies
                costs = costs + best[0]
            elif has is None:
                costs = costs + best[req_of]
            else:
                costs = costs.copy()
                costs[has] += best[req_of[has]]
        cost_tab[nid] = costs
        if table.out_col is None:
            group_cost[nid] = costs
        else:
            gc = np.full(len(table.out_ids), np.inf)
            np.minimum.at(gc, table.out_col, costs)
            group_cost[nid] = gc
        if collapse:
            costs.flags.writeable = False
            group_cost[nid].flags.writeable = False
            memo[sigs[nid]] = (costs, group_cost[nid])
            stats.misses += 1

    # ---- reverse resolution ------------------------------------------------
    assignments: list[NodeAssignment | None] = [None] * n
    estimated = 0.0
    column = rcache.column
    for nid, table, nb, edges, is_sink in plan.rev:
        totals = cost_tab[nid]
        ocol = table.out_col
        for cid, slot in edges:
            strat = assignments[cid].strategy
            if slot < len(strat.ins):
                rcol = column(table.out_ids, spec_id(strat.ins[slot]), nb)
                totals = totals + rcol if ocol is None else totals + rcol[ocol]
        best_idx = totals.argmin()
        assignments[nid] = table.assigns[best_idx]
        if is_sink:  # sink: accumulate DP estimate
            estimated += float(totals[best_idx])

    return IntraOpPlan(graph, mesh, list(assignments), estimated)  # type: ignore[arg-type]


def optimize_stage_reference(graph: Graph, mesh: LogicalMesh) -> IntraOpPlan:
    """The original pure-Python DP — the differential-testing oracle."""
    n = len(graph)
    gpu = mesh.gpu
    # per node: list[(Strategy, table_cost)]
    tables: list[list[tuple[Strategy, float]]] = [None] * n  # type: ignore
    # quick lookup: node -> {out_spec_assignments: best (cost, idx)}
    by_spec: list[dict[tuple, tuple[float, int]]] = [None] * n  # type: ignore

    def leaf_strategies(spec: TensorSpec) -> list[Strategy]:
        return [Strategy(f"leaf[{c}]", c, (), 1, 0.0)
                for c in candidate_specs(spec, mesh)]

    for node in graph.nodes:
        in_specs = [graph.nodes[i].out for i in node.inputs]
        if node.node_type in ("input", "literal"):
            strats = leaf_strategies(node.out)
        elif node.node_type == "output":
            # outputs adopt their operand's sharding at no cost
            seen: set[tuple] = set()
            strats = []
            for s, _ in tables[node.inputs[0]]:
                if s.out.assignments not in seen:
                    seen.add(s.out.assignments)
                    strats.append(Strategy(f"out[{s.out}]", s.out, (s.out,), 1, 0.0))
        else:
            strats = node_strategies(node, in_specs, mesh)

        entries: list[tuple[Strategy, float]] = []
        for strat in strats:
            if node.node_type == "operator":
                cost = op_time(node, in_specs, gpu, float(strat.factor))
                cost += strat.comm_time
            else:
                cost = 0.0
            feasible = True
            for slot, req in enumerate(strat.ins):
                pid = node.inputs[slot]
                ptable = by_spec[pid]
                pnode = graph.nodes[pid]
                leaf_edge = pnode.node_type in ("input", "literal")
                share = 1.0 / max(1, len(graph.consumers(pid)))
                best = None
                for passign, (pcost, _) in ptable.items():
                    rs = 0.0 if leaf_edge else reshard_time(
                        ShardingSpec(passign), req, pnode.out, mesh)
                    c = share * pcost + rs
                    if best is None or c < best:
                        best = c
                if best is None:
                    feasible = False
                    break
                cost += best
            if feasible:
                entries.append((strat, cost))
        if not entries:  # always possible: fully replicated execution
            rep = Strategy("fallback[R]", REPLICATED,
                           tuple(REPLICATED for _ in node.inputs), 1, 0.0)
            cost = (op_time(node, in_specs, gpu, 1.0)
                    if node.node_type == "operator" else 0.0)
            entries = [(rep, cost)]
        tables[node.id] = entries
        spec_map: dict[tuple, tuple[float, int]] = {}
        for idx, (strat, cost) in enumerate(entries):
            key = strat.out.assignments
            if key not in spec_map or cost < spec_map[key][0]:
                spec_map[key] = (cost, idx)
        by_spec[node.id] = spec_map

    # ---- reverse resolution ------------------------------------------------
    assignments: list[NodeAssignment | None] = [None] * n
    estimated = 0.0
    for node in reversed(graph.nodes):
        required: list[ShardingSpec] = []
        for cid in graph.consumers(node.id):
            cons = assignments[cid]
            slot = graph.nodes[cid].inputs.index(node.id)
            if slot < len(cons.in_specs):
                required.append(cons.in_specs[slot])
        best_idx, best_cost = 0, float("inf")
        leaf = node.node_type in ("input", "literal")
        for idx, (strat, cost) in enumerate(tables[node.id]):
            total = cost
            if not leaf:
                for req in required:
                    total += reshard_time(strat.out, req, node.out, mesh)
            if total < best_cost:
                best_cost, best_idx = total, idx
        assignments[node.id] = NodeAssignment(tables[node.id][best_idx][0])
        if not graph.consumers(node.id):  # sink: accumulate DP estimate
            estimated += best_cost

    return IntraOpPlan(graph, mesh, assignments, estimated)  # type: ignore[arg-type]
