"""Intra-operator parallelization optimizer (the Alpa intra-op pass).

Given a stage's *training* graph and a logical mesh, assign every node an
SPMD strategy minimizing estimated execution time: per-node kernel time
under work division, collectives emitted by the strategies themselves
(e.g. Megatron row-parallel all-reduces, data-parallel gradient
all-reduces appearing as contraction-split backward matmuls), and
resharding on edges whose endpoint shardings disagree.

The optimizer is a two-pass dynamic program over the topological order:

1. **forward sweep** — for every node and strategy, the cheapest way to
   obtain each required input sharding, amortizing producer cost over its
   consumer count (Alpa solves the exact problem as an ILP; the
   amortization is the standard relaxation and is exact on chains);
2. **reverse resolution** — each node commits to one sharding minimizing
   its own table cost plus actual resharding to its already-committed
   consumers, yielding a consistent assignment the executor can cost
   exactly.

Edges out of leaf nodes (stage inputs, parameters) never pay resharding:
parameters are laid out at compile time and stage inputs arrive through
the pipeline already in the sharding the first consumer wants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.mesh import LogicalMesh
from ..ir.graph import Graph, TensorSpec
from ..runtime.opcost import op_time
from .resharding import reshard_time
from .sharding import REPLICATED, ShardingSpec, candidate_specs
from .strategies import Strategy, node_strategies


@dataclass(frozen=True)
class NodeAssignment:
    """Committed strategy for one node."""

    strategy: Strategy

    @property
    def out_spec(self) -> ShardingSpec:
        return self.strategy.out

    @property
    def in_specs(self) -> tuple[ShardingSpec, ...]:
        return self.strategy.ins


@dataclass
class IntraOpPlan:
    """Result of intra-op optimization for (stage graph, logical mesh)."""

    graph: Graph
    mesh: LogicalMesh
    assignments: list[NodeAssignment]
    #: DP estimate of the stage execution time (the executor recomputes the
    #: authoritative value including cross-edge resharding)
    estimated_time: float

    def spec_of(self, nid: int) -> ShardingSpec:
        return self.assignments[nid].out_spec


def optimize_stage(graph: Graph, mesh: LogicalMesh) -> IntraOpPlan:
    """Assign an SPMD strategy to every node of ``graph`` on ``mesh``."""
    n = len(graph)
    gpu = mesh.gpu
    # per node: list[(Strategy, table_cost)]
    tables: list[list[tuple[Strategy, float]]] = [None] * n  # type: ignore
    # quick lookup: node -> {out_spec_assignments: best (cost, idx)}
    by_spec: list[dict[tuple, tuple[float, int]]] = [None] * n  # type: ignore

    def leaf_strategies(spec: TensorSpec) -> list[Strategy]:
        return [Strategy(f"leaf[{c}]", c, (), 1, 0.0)
                for c in candidate_specs(spec, mesh)]

    for node in graph.nodes:
        in_specs = [graph.nodes[i].out for i in node.inputs]
        if node.node_type in ("input", "literal"):
            strats = leaf_strategies(node.out)
        elif node.node_type == "output":
            # outputs adopt their operand's sharding at no cost
            seen: set[tuple] = set()
            strats = []
            for s, _ in tables[node.inputs[0]]:
                if s.out.assignments not in seen:
                    seen.add(s.out.assignments)
                    strats.append(Strategy(f"out[{s.out}]", s.out, (s.out,), 1, 0.0))
        else:
            strats = node_strategies(node, in_specs, mesh)

        entries: list[tuple[Strategy, float]] = []
        for strat in strats:
            if node.node_type == "operator":
                cost = op_time(node, in_specs, gpu, float(strat.factor))
                cost += strat.comm_time
            else:
                cost = 0.0
            feasible = True
            for slot, req in enumerate(strat.ins):
                pid = node.inputs[slot]
                ptable = by_spec[pid]
                pnode = graph.nodes[pid]
                leaf_edge = pnode.node_type in ("input", "literal")
                share = 1.0 / max(1, len(graph.consumers(pid)))
                best = None
                for passign, (pcost, _) in ptable.items():
                    rs = 0.0 if leaf_edge else reshard_time(
                        ShardingSpec(passign), req, pnode.out, mesh)
                    c = share * pcost + rs
                    if best is None or c < best:
                        best = c
                if best is None:
                    feasible = False
                    break
                cost += best
            if feasible:
                entries.append((strat, cost))
        if not entries:  # always possible: fully replicated execution
            rep = Strategy("fallback[R]", REPLICATED,
                           tuple(REPLICATED for _ in node.inputs), 1, 0.0)
            cost = (op_time(node, in_specs, gpu, 1.0)
                    if node.node_type == "operator" else 0.0)
            entries = [(rep, cost)]
        tables[node.id] = entries
        spec_map: dict[tuple, tuple[float, int]] = {}
        for idx, (strat, cost) in enumerate(entries):
            key = strat.out.assignments
            if key not in spec_map or cost < spec_map[key][0]:
                spec_map[key] = (cost, idx)
        by_spec[node.id] = spec_map

    # ---- reverse resolution ------------------------------------------------
    assignments: list[NodeAssignment | None] = [None] * n
    estimated = 0.0
    for node in reversed(graph.nodes):
        required: list[ShardingSpec] = []
        for cid in graph.consumers(node.id):
            cons = assignments[cid]
            slot = graph.nodes[cid].inputs.index(node.id)
            if slot < len(cons.in_specs):
                required.append(cons.in_specs[slot])
        best_idx, best_cost = 0, float("inf")
        leaf = node.node_type in ("input", "literal")
        for idx, (strat, cost) in enumerate(tables[node.id]):
            total = cost
            if not leaf:
                for req in required:
                    total += reshard_time(strat.out, req, node.out, mesh)
            if total < best_cost:
                best_cost, best_idx = total, idx
        assignments[node.id] = NodeAssignment(tables[node.id][best_idx][0])
        if not graph.consumers(node.id):  # sink: accumulate DP estimate
            estimated += best_cost

    return IntraOpPlan(graph, mesh, assignments, estimated)  # type: ignore[arg-type]
