"""Memoization tier for the intra-op optimizer.

The Table V/VI grids profile hundreds of (stage slice, mesh) pairs, and
many of those slices are *structurally identical*: a GPT slice covering
layers [2, 5) produces the same training DAG — same ops, topology,
shapes, dtypes, and operator params — as the slice covering [3, 6), only
with different node labels.  ``optimize_stage``'s dynamic program depends
solely on that structure plus the logical mesh, so its result can be
shared across all such twins (the CFP observation: memoize structurally
identical parallelism subproblems).

The cache key is ``(canonical graph hash, logical-mesh key)``; the mesh
key encodes device counts, the GPU model, and the link classes each axis
strides, i.e. every input the strategy/cost models read.  Cached entries
hold the committed assignments and the DP estimate; on a hit they are
rebound to the caller's graph object, so downstream consumers (the
executor, whose measurement noise is keyed on the *name* of the graph)
see exactly the plan the DP would have produced for that graph.

Disable with ``REPRO_PLAN_CACHE=off``.  ``REPRO_INTRAOP=reference``
routes every solve through the pure-Python oracle implementation instead
of the vectorized DP (the two are differentially tested to be
bit-identical, so this is a debugging escape hatch, not a results knob).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from ..cluster.mesh import LogicalMesh
from ..ir.graph import Graph
from ..ir.serialize import canonical_hash
from .intra_op import (IntraOpPlan, NodeAssignment, optimize_stage,
                       optimize_stage_reference)


def _optimize_impl():
    """The intra-op solver selected by ``REPRO_INTRAOP``."""
    if os.environ.get("REPRO_INTRAOP", "").lower() in ("reference", "ref"):
        return optimize_stage_reference
    return optimize_stage


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PlanCache:
    """In-process memo of intra-op DP results keyed by graph structure.

    Thread-safe: the serving daemon profiles and solves from multiple
    threads.  The DP solve itself runs outside the lock (it is the
    expensive part and deterministic per key), so racing threads on one
    cold key each solve and the first insert wins — identical results
    either way.
    """

    _entries: dict[tuple[str, str], tuple[list[NodeAssignment], float]] = \
        field(default_factory=dict)
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False)

    def optimize(self, graph: Graph, mesh: LogicalMesh) -> IntraOpPlan:
        key = (canonical_hash(graph), mesh.key())
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.stats.hits += 1
                assignments, estimated = hit
                return IntraOpPlan(graph, mesh, list(assignments), estimated)
            self.stats.misses += 1
        plan = _optimize_impl()(graph, mesh)
        with self._lock:
            self._entries.setdefault(
                key, (list(plan.assignments), plan.estimated_time))
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = PlanCacheStats()


_GLOBAL: PlanCache | None = None


def global_plan_cache() -> PlanCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = PlanCache()
    return _GLOBAL


def cached_optimize_stage(graph: Graph, mesh: LogicalMesh) -> IntraOpPlan:
    """`optimize_stage` through the global plan cache (env-gated)."""
    if os.environ.get("REPRO_PLAN_CACHE", "").lower() == "off":
        return _optimize_impl()(graph, mesh)
    return global_plan_cache().optimize(graph, mesh)
