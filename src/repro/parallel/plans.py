"""Plan containers shared by the inter-op DP and the search harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.mesh import DeviceMesh


@dataclass(frozen=True)
class StageAssignment:
    """One pipeline stage of a parallelization plan."""

    unit_range: tuple[int, int]     # clustering units [start, end)
    layer_range: tuple[int, int]    # model layers [start, end)
    submesh_index: int
    submesh: DeviceMesh
    latency: float                  # per-microbatch stage latency, seconds

    @property
    def n_devices(self) -> int:
        return self.submesh.num_devices


@dataclass
class ParallelPlan:
    """A full pipeline plan with its estimated iteration latency."""

    stages: list[StageAssignment]
    iteration_latency: float        # Eqn-4 estimate used by the optimizer
    n_microbatches: int
    metadata: dict = field(default_factory=dict)

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def feasible(self) -> bool:
        return self.stages and self.iteration_latency != float("inf")

    def stage_latencies(self) -> list[float]:
        return [s.latency for s in self.stages]

    def total_devices(self) -> int:
        return sum(s.n_devices for s in self.stages)

    def describe(self) -> str:
        """Human-readable plan summary."""
        if not self.stages:
            return "<infeasible plan>"
        rows = [
            f"  stage {i}: units {s.unit_range} layers {s.layer_range} "
            f"on {s.submesh} t={s.latency * 1e3:.1f} ms"
            for i, s in enumerate(self.stages)
        ]
        head = (f"ParallelPlan: {self.n_stages} stages, B={self.n_microbatches}, "
                f"T={self.iteration_latency * 1e3:.1f} ms")
        return "\n".join([head] + rows)
