"""Resharding (layout-conversion) cost between sharding specs.

When a consumer requires a different sharding than its producer emitted,
the SPMD runtime inserts collective ops on that edge.  The cost model:

* identical (normalized) specs — free;
* replicated producer — free (consumers slice locally);
* producer axes that the consumer keeps — free for those axes;
* producer axes the consumer drops — an all-gather per axis, each sized
  on the *progressively reassembled* tensor: the first gather operates
  on the tensor still sharded by the remaining axes, and every later
  gather on a tensor that has already grown by the preceding gathers'
  axis sizes (charging every gather on one fixed size misprices
  multi-axis conversions);
* axes that move to a different dimension — modeled as an all-gather of
  the source axis too (an all-to-all would be slightly cheaper; the
  difference does not change any plan ordering at these sizes).
"""

from __future__ import annotations

import numpy as np

from ..cluster.collectives import allgather_time
from ..cluster.mesh import LogicalMesh
from ..ir.graph import TensorSpec
from .sharding import ShardingSpec, normalized_spec, spec_by_id, spec_id


def reshard_time(
    src: ShardingSpec,
    dst: ShardingSpec,
    tensor: TensorSpec,
    mesh: LogicalMesh,
) -> float:
    """Seconds to convert ``tensor`` from ``src`` to ``dst`` sharding."""
    return _reshard_nbytes(src, dst, tensor.nbytes, mesh)


def _reshard_nbytes(
    src: ShardingSpec,
    dst: ShardingSpec,
    tensor_nbytes: float,
    mesh: LogicalMesh,
) -> float:
    """Cost-model core: the tensor enters only through its byte size."""
    src = normalized_spec(src, mesh)
    dst = normalized_spec(dst, mesh)
    if src.assignments == dst.assignments or src.is_replicated:
        return 0.0
    dst_map = dict(dst.assignments)
    total = 0.0
    kept_factor = 1
    gather_axes = []
    for d, a in src.assignments:
        if dst_map.get(d) == a:
            kept_factor *= mesh.axis_size(a)
        else:
            gather_axes.append(a)
    # Sequential all-gathers over the gathered axes: each gather's result
    # is the tensor reassembled over the axes gathered *so far* (still
    # sharded by the kept axes and by the gather axes yet to run).  The
    # size therefore grows gather by gather — the second all-gather moves
    # a tensor already grown by the first gather's axis size, and must be
    # charged on that grown size, not on one fixed per-gather size.
    remaining = 1
    for a in gather_axes:
        remaining *= mesh.axis_size(a)
    nbytes = tensor_nbytes / kept_factor
    for a in gather_axes:
        p = mesh.axis_size(a)
        remaining //= p
        total += allgather_time(mesh.axis_link(a), nbytes / remaining, p)
    return total


class ReshardCache:
    """Memoized reshard costs for one logical mesh, addressed by spec ids.

    Scalar lookups memoize per ``(src id, dst id, nbytes)``; the vectorized
    DP fetches whole min-plus cost *matrices* (rows = producer out-spec
    ids, columns = consumer required-spec ids), which are themselves
    cached because structurally identical nodes across a grid request the
    same (id-tuple, id-tuple, nbytes) table over and over.
    """

    __slots__ = ("mesh", "_cells", "_columns", "_matrices")

    def __init__(self, mesh: LogicalMesh) -> None:
        self.mesh = mesh
        self._cells: dict[tuple[int, int, float], float] = {}
        self._columns: dict[tuple, np.ndarray] = {}
        self._matrices: dict[tuple, np.ndarray] = {}

    def time(self, src_id: int, dst_id: int, nbytes: float) -> float:
        key = (src_id, dst_id, nbytes)
        t = self._cells.get(key)
        if t is None:
            t = _reshard_nbytes(spec_by_id(src_id), spec_by_id(dst_id),
                                nbytes, self.mesh)
            self._cells[key] = t
        return t

    def column(self, src_ids: tuple[int, ...], dst_id: int,
               nbytes: float) -> np.ndarray:
        """``(len(src_ids),)`` vector of reshard costs into ``dst_id``."""
        key = (src_ids, dst_id, nbytes)
        col = self._columns.get(key)
        if col is None:
            col = np.array([self.time(s, dst_id, nbytes) for s in src_ids],
                           dtype=np.float64)
            col.flags.writeable = False
            self._columns[key] = col
        return col

    def matrix(self, src_ids: tuple[int, ...], dst_ids: tuple[int, ...],
               nbytes: float) -> np.ndarray:
        """``(len(src_ids), len(dst_ids))`` reshard-cost table."""
        key = (src_ids, dst_ids, nbytes)
        mat = self._matrices.get(key)
        if mat is None:
            mat = np.empty((len(src_ids), len(dst_ids)), dtype=np.float64)
            for j, d in enumerate(dst_ids):
                mat[:, j] = self.column(src_ids, d, nbytes)
            mat.flags.writeable = False
            self._matrices[key] = mat
        return mat


_CACHES: dict[LogicalMesh, ReshardCache] = {}


def reshard_cache(mesh: LogicalMesh) -> ReshardCache:
    """The process-wide :class:`ReshardCache` for ``mesh``."""
    cache = _CACHES.get(mesh)
    if cache is None:
        cache = _CACHES.setdefault(mesh, ReshardCache(mesh))
    return cache


def clear_reshard_caches() -> None:
    """Drop all per-mesh caches (tests and benchmarks)."""
    _CACHES.clear()


__all__ = ["reshard_time", "ReshardCache", "reshard_cache",
           "clear_reshard_caches", "spec_id"]
