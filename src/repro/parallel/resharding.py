"""Resharding (layout-conversion) cost between sharding specs.

When a consumer requires a different sharding than its producer emitted,
the SPMD runtime inserts collective ops on that edge.  The cost model:

* identical (normalized) specs — free;
* replicated producer — free (consumers slice locally);
* producer axes that the consumer keeps — free for those axes;
* producer axes the consumer drops — an all-gather per axis;
* axes that move to a different dimension — modeled as an all-gather of
  the source axis too (an all-to-all would be slightly cheaper; the
  difference does not change any plan ordering at these sizes).
"""

from __future__ import annotations

from ..cluster.collectives import allgather_time
from ..cluster.mesh import LogicalMesh
from ..ir.graph import TensorSpec
from .sharding import ShardingSpec


def reshard_time(
    src: ShardingSpec,
    dst: ShardingSpec,
    tensor: TensorSpec,
    mesh: LogicalMesh,
) -> float:
    """Seconds to convert ``tensor`` from ``src`` to ``dst`` sharding."""
    src = src.normalized(mesh)
    dst = dst.normalized(mesh)
    if src.assignments == dst.assignments or src.is_replicated:
        return 0.0
    dst_map = dict(dst.assignments)
    total = 0.0
    kept_factor = 1
    gather_axes = []
    for d, a in src.assignments:
        if dst_map.get(d) == a:
            kept_factor *= mesh.axis_size(a)
        else:
            gather_axes.append(a)
    nbytes = tensor.nbytes / kept_factor
    for a in gather_axes:
        p = mesh.axis_size(a)
        total += allgather_time(mesh.axis_link(a), nbytes, p)
    return total
