"""SPMD sharding specs over a 2-D logical mesh.

A :class:`ShardingSpec` maps tensor dimensions to logical mesh axes
(``"dp"`` / ``"mp"``); unmapped dimensions are replicated.  The vocabulary
is deliberately small — replicate, shard dim 0, shard the last dim, or
shard both on different axes — which covers every strategy the Megatron /
Alpa intra-op space uses for transformer workloads while keeping the
per-node optimization tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..cluster.mesh import LogicalMesh
from ..ir.graph import TensorSpec

AXES = ("dp", "mp")


@dataclass(frozen=True)
class ShardingSpec:
    """Mapping ``tensor dim -> mesh axis``; empty mapping = replicated."""

    assignments: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        dims = [d for d, _ in self.assignments]
        axes = [a for _, a in self.assignments]
        if len(set(dims)) != len(dims):
            raise ValueError(f"dimension mapped twice: {self.assignments}")
        if len(set(axes)) != len(axes):
            raise ValueError(f"mesh axis used twice: {self.assignments}")
        for _, a in self.assignments:
            if a not in AXES:
                raise ValueError(f"unknown mesh axis {a!r}")

    # ------------------------------------------------------------- factories
    @staticmethod
    def replicated() -> "ShardingSpec":
        return ShardingSpec(())

    @staticmethod
    def shard(dim: int, axis: str) -> "ShardingSpec":
        return ShardingSpec(((dim, axis),))

    @staticmethod
    def shard2(dim0: int, axis0: str, dim1: int, axis1: str) -> "ShardingSpec":
        return ShardingSpec(((dim0, axis0), (dim1, axis1)))

    # --------------------------------------------------------------- queries
    @property
    def is_replicated(self) -> bool:
        return not self.assignments

    def axis_of(self, dim: int) -> str | None:
        for d, a in self.assignments:
            if d == dim:
                return a
        return None

    def dim_of(self, axis: str) -> int | None:
        for d, a in self.assignments:
            if a == axis:
                return d
        return None

    def axes_used(self) -> tuple[str, ...]:
        return tuple(a for _, a in self.assignments)

    def shard_factor(self, mesh: LogicalMesh) -> int:
        """Number of shards the tensor is split into on ``mesh``."""
        f = 1
        for _, a in self.assignments:
            f *= mesh.axis_size(a)
        return f

    def valid_for(self, spec: TensorSpec, mesh: LogicalMesh) -> bool:
        """True when every mapped dim exists and divides by its axis size."""
        for d, a in self.assignments:
            if d >= spec.rank:
                return False
            size = mesh.axis_size(a)
            if size > 1 and spec.shape[d] % size != 0:
                return False
        return True

    def normalized(self, mesh: LogicalMesh) -> "ShardingSpec":
        """Drop assignments to size-1 axes (they shard nothing)."""
        kept = tuple((d, a) for d, a in self.assignments if mesh.axis_size(a) > 1)
        return ShardingSpec(kept)

    def local_bytes(self, spec: TensorSpec, mesh: LogicalMesh) -> float:
        """Per-device bytes of a tensor stored under this sharding."""
        return spec.nbytes / self.shard_factor(mesh)

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.assignments:
            return "R"
        return "+".join(f"S{d}@{a}" for d, a in self.assignments)


REPLICATED = ShardingSpec.replicated()


def candidate_specs(spec: TensorSpec, mesh: LogicalMesh) -> list[ShardingSpec]:
    """The sharding vocabulary applicable to one tensor on one mesh.

    Candidates: replicated; dim 0 or the last dim on either axis; and both
    dims on the two different axes.  Invalid (non-dividing) candidates are
    filtered; duplicates collapse when the tensor is rank-1.
    """
    cands: list[ShardingSpec] = [REPLICATED]
    if spec.rank >= 1:
        last = spec.rank - 1
        for a in AXES:
            if mesh.axis_size(a) > 1:
                cands.append(ShardingSpec.shard(0, a))
                if last != 0:
                    cands.append(ShardingSpec.shard(last, a))
        if spec.rank >= 2 and mesh.dp > 1 and mesh.mp > 1:
            cands.append(ShardingSpec.shard2(0, "dp", last, "mp"))
            cands.append(ShardingSpec.shard2(0, "mp", last, "dp"))
    seen: set[tuple] = set()
    out = []
    for c in cands:
        c = c.normalized(mesh)
        if c.assignments in seen:
            continue
        if not c.valid_for(spec, mesh):
            continue
        seen.add(c.assignments)
        out.append(c)
    return out


def iter_axes(mesh: LogicalMesh) -> Iterator[str]:
    """Mesh axes with more than one device."""
    for a in AXES:
        if mesh.axis_size(a) > 1:
            yield a
