"""SPMD sharding specs over a 2-D logical mesh.

A :class:`ShardingSpec` maps tensor dimensions to logical mesh axes
(``"dp"`` / ``"mp"``); unmapped dimensions are replicated.  The vocabulary
is deliberately small — replicate, shard dim 0, shard the last dim, or
shard both on different axes — which covers every strategy the Megatron /
Alpa intra-op space uses for transformer workloads while keeping the
per-node optimization tractable.

Specs are *interned*: the factory functions and
:func:`intern_assignments` return one canonical instance per distinct
assignments tuple, validated exactly once and carrying a stable integer
id (:func:`spec_id`).  The vectorized intra-op DP and the cost-table
caches use those ids as array indices, so the hot loops never rebuild or
re-validate specs.  Ids are process-local: lookups go through the
assignments tuple (never a pickled attribute), so specs that cross
process boundaries re-resolve safely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from ..cluster.mesh import LogicalMesh
from ..ir.graph import TensorSpec

AXES = ("dp", "mp")


@dataclass(frozen=True)
class ShardingSpec:
    """Mapping ``tensor dim -> mesh axis``; empty mapping = replicated."""

    assignments: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        dims = [d for d, _ in self.assignments]
        axes = [a for _, a in self.assignments]
        if len(set(dims)) != len(dims):
            raise ValueError(f"dimension mapped twice: {self.assignments}")
        if len(set(axes)) != len(axes):
            raise ValueError(f"mesh axis used twice: {self.assignments}")
        for _, a in self.assignments:
            if a not in AXES:
                raise ValueError(f"unknown mesh axis {a!r}")

    # ------------------------------------------------------------- factories
    @staticmethod
    def replicated() -> "ShardingSpec":
        return intern_assignments(())

    @staticmethod
    def shard(dim: int, axis: str) -> "ShardingSpec":
        return intern_assignments(((dim, axis),))

    @staticmethod
    def shard2(dim0: int, axis0: str, dim1: int, axis1: str) -> "ShardingSpec":
        return intern_assignments(((dim0, axis0), (dim1, axis1)))

    # --------------------------------------------------------------- queries
    @property
    def is_replicated(self) -> bool:
        return not self.assignments

    def axis_of(self, dim: int) -> str | None:
        for d, a in self.assignments:
            if d == dim:
                return a
        return None

    def dim_of(self, axis: str) -> int | None:
        for d, a in self.assignments:
            if a == axis:
                return d
        return None

    def axes_used(self) -> tuple[str, ...]:
        return tuple(a for _, a in self.assignments)

    def shard_factor(self, mesh: LogicalMesh) -> int:
        """Number of shards the tensor is split into on ``mesh``."""
        f = 1
        for _, a in self.assignments:
            f *= mesh.axis_size(a)
        return f

    def valid_for(self, spec: TensorSpec, mesh: LogicalMesh) -> bool:
        """True when every mapped dim exists and divides by its axis size."""
        for d, a in self.assignments:
            if d >= spec.rank:
                return False
            size = mesh.axis_size(a)
            if size > 1 and spec.shape[d] % size != 0:
                return False
        return True

    def normalized(self, mesh: LogicalMesh) -> "ShardingSpec":
        """Drop assignments to size-1 axes (they shard nothing)."""
        kept = tuple((d, a) for d, a in self.assignments if mesh.axis_size(a) > 1)
        return ShardingSpec(kept)

    def local_bytes(self, spec: TensorSpec, mesh: LogicalMesh) -> float:
        """Per-device bytes of a tensor stored under this sharding."""
        return spec.nbytes / self.shard_factor(mesh)

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.assignments:
            return "R"
        return "+".join(f"S{d}@{a}" for d, a in self.assignments)


# --------------------------------------------------------------- interning

_INTERN_LOCK = threading.Lock()
#: assignments tuple -> the canonical (validated-once) instance
_INTERN: dict[tuple, ShardingSpec] = {}
#: assignments tuple -> stable integer id (index into _SPECS_BY_ID)
_SPEC_IDS: dict[tuple, int] = {}
_SPECS_BY_ID: list[ShardingSpec] = []
#: (spec id, dp > 1, mp > 1) -> interned normalized spec
_NORM_CACHE: dict[tuple[int, bool, bool], ShardingSpec] = {}


def intern_assignments(assignments: tuple[tuple[int, str], ...]) -> ShardingSpec:
    """Canonical :class:`ShardingSpec` for ``assignments``.

    Validation runs once per distinct tuple; repeated calls return the
    same instance.  Invalid assignments raise :class:`ValueError` (and are
    never cached).  Safe to call from multiple threads.
    """
    spec = _INTERN.get(assignments)
    if spec is None:
        with _INTERN_LOCK:
            spec = _INTERN.get(assignments)
            if spec is None:
                spec = ShardingSpec(assignments)
                _SPEC_IDS[assignments] = len(_SPECS_BY_ID)
                _SPECS_BY_ID.append(spec)
                _INTERN[assignments] = spec
    return spec


def intern_spec(spec: ShardingSpec) -> ShardingSpec:
    """The canonical instance equal to ``spec``."""
    return intern_assignments(spec.assignments)


def spec_id(spec: ShardingSpec) -> int:
    """Stable process-local integer id of ``spec`` (interning on demand)."""
    sid = _SPEC_IDS.get(spec.assignments)
    if sid is None:
        intern_assignments(spec.assignments)
        sid = _SPEC_IDS[spec.assignments]
    return sid


def spec_by_id(sid: int) -> ShardingSpec:
    """Inverse of :func:`spec_id`."""
    return _SPECS_BY_ID[sid]


def normalized_spec(spec: ShardingSpec, mesh: LogicalMesh) -> ShardingSpec:
    """Interned ``spec.normalized(mesh)``, cached per (spec, axis-sizes).

    Normalization only depends on which mesh axes have size > 1, so the
    cache key is ``(spec_id, dp > 1, mp > 1)`` and the result is shared
    across every mesh with the same degenerate-axis pattern.
    """
    key = (spec_id(spec), mesh.dp > 1, mesh.mp > 1)
    norm = _NORM_CACHE.get(key)
    if norm is None:
        norm = intern_spec(spec.normalized(mesh))
        _NORM_CACHE[key] = norm
    return norm


def intern_stats() -> dict[str, int]:
    """Cache sizes, for tests and the perf harness."""
    return {"specs": len(_SPECS_BY_ID), "normalized": len(_NORM_CACHE)}


REPLICATED = ShardingSpec.replicated()

#: (tensor shape, dp, mp) -> candidate list; candidate validity/normalization
#: reads only the shape and the axis sizes, so twins share one enumeration
_CANDIDATE_CACHE: dict[tuple, tuple[ShardingSpec, ...]] = {}


def candidate_specs(spec: TensorSpec, mesh: LogicalMesh) -> list[ShardingSpec]:
    """The sharding vocabulary applicable to one tensor on one mesh.

    Candidates: replicated; dim 0 or the last dim on either axis; and both
    dims on the two different axes.  Invalid (non-dividing) candidates are
    filtered; duplicates collapse when the tensor is rank-1.
    """
    ckey = (spec.shape, mesh.dp, mesh.mp)
    cached = _CANDIDATE_CACHE.get(ckey)
    if cached is not None:
        return list(cached)
    cands: list[ShardingSpec] = [REPLICATED]
    if spec.rank >= 1:
        last = spec.rank - 1
        for a in AXES:
            if mesh.axis_size(a) > 1:
                cands.append(ShardingSpec.shard(0, a))
                if last != 0:
                    cands.append(ShardingSpec.shard(last, a))
        if spec.rank >= 2 and mesh.dp > 1 and mesh.mp > 1:
            cands.append(ShardingSpec.shard2(0, "dp", last, "mp"))
            cands.append(ShardingSpec.shard2(0, "mp", last, "dp"))
    seen: set[tuple] = set()
    out = []
    for c in cands:
        c = normalized_spec(c, mesh)
        if c.assignments in seen:
            continue
        if not c.valid_for(spec, mesh):
            continue
        seen.add(c.assignments)
        out.append(c)
    _CANDIDATE_CACHE[ckey] = tuple(out)
    return out


def iter_axes(mesh: LogicalMesh) -> Iterator[str]:
    """Mesh axes with more than one device."""
    for a in AXES:
        if mesh.axis_size(a) > 1:
            yield a
