"""Per-operator SPMD strategy enumeration — registry facade + legacy oracle.

:func:`node_strategies` is the single entry point the intra-op DP, the
signature collapse, and the plan cache consume; since the handler
refactor it dispatches through the per-op registry in
:mod:`repro.parallel.handlers`.  The pre-registry monolithic enumerator
is kept below, verbatim, as :func:`legacy_node_strategies`: the
differential test suite pins the registry path bit-identical to it on
the legacy op set whenever topology-aware pricing is off.

The enumeration reproduces the useful region of Alpa's ILP space for
transformer training graphs: data-parallel batch sharding,
Megatron-style column/row weight sharding, expert parallelism (batched
dims), and gradient all-reduce emerging from contraction-split backward
matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster.collectives import allreduce_time
from ..cluster.mesh import LogicalMesh
from ..ir.graph import Node, TensorSpec
from ..ir.ops import op_def
from .handlers import handler_for
from .handlers.base import ShardingStrategy, Strategy
from .sharding import REPLICATED, ShardingSpec, intern_assignments, iter_axes

__all__ = ["Strategy", "ShardingStrategy", "node_strategies",
           "legacy_node_strategies"]

_LEAF = Strategy("leaf", REPLICATED, (), 1, 0.0)


def node_strategies(node: Node, input_specs: Sequence[TensorSpec],
                    mesh: LogicalMesh) -> list[Strategy]:
    """Enumerate the strategies available to ``node`` on ``mesh``."""
    if node.node_type != "operator":
        return [_LEAF]
    return handler_for(node, input_specs).strategies(node, input_specs, mesh)


# --------------------------------------------------------------------------
# Legacy monolithic enumerator — the differential oracle.  Kept verbatim
# (modulo the `_align_broadcast` validity fix, applied to both paths) so
# the registry can be pinned against it; new strategy kinds land in the
# handlers, never here.
# --------------------------------------------------------------------------

def _axis_ok(dim: int, axis: str) -> bool:
    """Axis semantics of the Table-III configurations.

    The ``dp`` axis carries *data parallelism*: it may only shard dimension
    0 (the batch dim of activations).  The ``mp`` axis carries *model /
    tensor parallelism*: it shards non-batch dims (features, heads,
    experts) and weight matrices.  This is what distinguishes a (2, 1)
    from a (1, 2) logical view of the same two devices.
    """
    return dim == 0 if axis == "dp" else dim != 0


def _align_broadcast(out_spec: ShardingSpec, out: TensorSpec,
                     operand: TensorSpec, mesh: LogicalMesh) -> ShardingSpec:
    """Propagate an output sharding to an elementwise operand.

    Dims are aligned from the right (numpy broadcasting); operand dims that
    are broadcast (absent or size 1) stay replicated on that axis.  The
    aligned spec is validated against the operand — a propagated assignment
    may land on a dim the operand's shape does not divide evenly — and
    falls back to replicated rather than emitting an infeasible strategy.
    """
    offset = out.rank - operand.rank
    assignments = []
    for d, a in out_spec.assignments:
        di = d - offset
        if di >= 0 and operand.shape[di] == out.shape[d]:
            assignments.append((di, a))
    spec = intern_assignments(tuple(assignments))
    if not spec.valid_for(operand, mesh):
        return REPLICATED
    return spec


def _out_candidates(out: TensorSpec, mesh: LogicalMesh) -> list[ShardingSpec]:
    """Replicated plus axis-semantic shardings over dims {0, 1, last}."""
    cands = [REPLICATED]
    dims = {0, out.rank - 1}
    if out.rank >= 3:
        dims.add(1)
    for d in sorted(x for x in dims if x >= 0):
        for a in iter_axes(mesh):
            if not _axis_ok(d, a):
                continue
            s = ShardingSpec.shard(d, a)
            if s.valid_for(out, mesh):
                cands.append(s)
    if out.rank >= 2 and mesh.dp > 1 and mesh.mp > 1:
        s = ShardingSpec.shard2(0, "dp", out.rank - 1, "mp")
        if s.valid_for(out, mesh):
            cands.append(s)
    return cands


def _elementwise(node: Node, ins: Sequence[TensorSpec],
                 mesh: LogicalMesh) -> list[Strategy]:
    out = node.out
    strats = []
    for c in _out_candidates(out, mesh):
        in_specs = tuple(_align_broadcast(c, out, s, mesh) for s in ins)
        strats.append(Strategy(f"elt[{c}]", c, in_specs, c.shard_factor(mesh), 0.0))
    return strats


def _reduction(node: Node, ins: Sequence[TensorSpec],
               mesh: LogicalMesh) -> list[Strategy]:
    src = ins[0]
    axes = tuple(node.params.get("axes", ()))
    keepdims = bool(node.params.get("keepdims", False))
    # map each output dim to its source dim
    if keepdims or not axes:
        out_to_in = {d: d for d in range(node.out.rank)}
    else:
        surviving = [d for d in range(src.rank) if d not in axes]
        out_to_in = {i: d for i, d in enumerate(surviving)}
    strats = []
    for c in _out_candidates(node.out, mesh):
        ok = True
        in_assign = []
        for d, a in c.assignments:
            di = out_to_in.get(d)
            if di is None:
                ok = False
                break
            in_assign.append((di, a))
        if not ok:
            continue
        in_spec = intern_assignments(tuple(in_assign))
        if not in_spec.valid_for(src, mesh):
            continue
        rest = tuple(REPLICATED for _ in ins[1:])
        strats.append(Strategy(f"red[{c}]", c, (in_spec,) + rest,
                               c.shard_factor(mesh), 0.0))
    return strats


def _transpose(node: Node, ins: Sequence[TensorSpec],
               mesh: LogicalMesh) -> list[Strategy]:
    perm = tuple(node.params.get("perm", range(node.out.rank)))
    strats = []
    for c in _out_candidates(node.out, mesh):
        in_spec = intern_assignments(tuple((perm[d], a) for d, a in c.assignments))
        if in_spec.valid_for(ins[0], mesh):
            strats.append(Strategy(f"tr[{c}]", c, (in_spec,),
                                   c.shard_factor(mesh), 0.0))
    return strats


def _reshape_map(src: TensorSpec, dst: TensorSpec) -> dict[int, int]:
    """Best-effort dst dim -> src dim correspondence for common reshapes."""
    mapping: dict[int, int] = {}
    # shared prefix
    p = 0
    while (p < min(src.rank, dst.rank)
           and src.shape[p] == dst.shape[p]):
        mapping[p] = p
        p += 1
    # split last:  (..., H) -> (..., nh, dh)
    if (dst.rank == src.rank + 1 and p == src.rank - 1
            and src.shape[-1] == dst.shape[-2] * dst.shape[-1]):
        mapping[dst.rank - 2] = src.rank - 1
    # merge last:  (..., nh, dh) -> (..., H)
    elif (src.rank == dst.rank + 1 and p == dst.rank - 1
          and dst.shape[-1] == src.shape[-2] * src.shape[-1]):
        mapping[dst.rank - 1] = src.rank - 2
    # flatten leading dims keeping the last:  (B, S, H) -> (B*S, H)
    elif src.shape and dst.shape and src.shape[-1] == dst.shape[-1]:
        mapping[dst.rank - 1] = src.rank - 1
        if dst.rank >= 2 and src.rank >= 2:
            mapping.setdefault(0, 0)
    return mapping


def _reshape(node: Node, ins: Sequence[TensorSpec],
             mesh: LogicalMesh) -> list[Strategy]:
    dmap = _reshape_map(ins[0], node.out)
    strats = []
    for c in _out_candidates(node.out, mesh):
        in_assign = []
        ok = True
        for d, a in c.assignments:
            di = dmap.get(d)
            if di is None:
                ok = False
                break
            in_assign.append((di, a))
        if not ok:
            continue
        in_spec = intern_assignments(tuple(in_assign))
        if not in_spec.valid_for(ins[0], mesh):
            continue
        strats.append(Strategy(f"rs[{c}]", c, (in_spec,),
                               c.shard_factor(mesh), 0.0))
    return strats


@dataclass(frozen=True)
class _Move:
    """One axis-consuming partitioning choice for a dot_general."""

    label: str
    axis: str                       # "dp" or "mp" (semantics, see _axis_ok)
    out_dim: int | None             # output dim sharded, None if partial-sum
    lhs_dim: int | None
    rhs_dim: int | None
    allreduce: bool                 # strategy must all-reduce its output


def _dot_moves(lhs: TensorSpec, rhs: TensorSpec, out: TensorSpec) -> list[_Move]:
    moves: list[_Move] = []
    # batch-parallel over leading dims shared by lhs/out; the rhs joins the
    # batching only when it is itself batched (rank >= 3 matching the output,
    # e.g. attention score/context einsums, expert-parallel FFNs) — a rank-2
    # rhs is a weight and stays replicated
    rhs_batched = rhs.rank == out.rank and rhs.rank >= 3
    for d in range(min(2, out.rank - 1 if out.rank else 0)):
        if d >= lhs.rank - 1 or lhs.shape[d] != out.shape[d]:
            continue
        if rhs_batched and (d >= rhs.rank - 1 or rhs.shape[d] != out.shape[d]):
            continue
        rhs_dim = d if rhs_batched else None
        axis = "dp" if d == 0 else "mp"
        moves.append(_Move(f"batch{d}", axis, d, d, rhs_dim, False))
    # Megatron column-parallel: weight's output features sharded
    if rhs.rank == 2 and out.rank >= 1 and rhs.shape[1] == out.shape[-1]:
        moves.append(_Move("col", "mp", out.rank - 1, None, 1, False))
    # Megatron row-parallel: contraction dim sharded, partial sums all-reduced
    if rhs.rank == 2 and lhs.rank >= 1 and lhs.shape[-1] == rhs.shape[0]:
        moves.append(_Move("row", "mp", None, lhs.rank - 1, 0, True))
    # contraction over batch dims (weight-gradient matmuls: dW = x^T g);
    # sharding the batch yields partial sums -> the DP gradient all-reduce
    if (lhs.rank == rhs.rank and lhs.rank > out.rank and lhs.rank >= 2
            and lhs.shape[0] == rhs.shape[0]):
        moves.append(_Move("gradsync", "dp", None, 0, 0, True))
    return moves


def _dot_general(node: Node, ins: Sequence[TensorSpec],
                 mesh: LogicalMesh) -> list[Strategy]:
    lhs, rhs = ins[0], ins[1]
    out = node.out
    strats = [Strategy("dot[R]", REPLICATED, (REPLICATED, REPLICATED), 1, 0.0)]
    moves = [m for m in _dot_moves(lhs, rhs, out)
             if mesh.axis_size(m.axis) > 1]

    def mk(selected: list[_Move]) -> Strategy | None:
        out_assign, lhs_assign, rhs_assign = [], [], []
        factor = 1
        out_shard_factor = 1
        names = []
        for mv in selected:
            p = mesh.axis_size(mv.axis)
            factor *= p
            names.append(f"{mv.label}@{mv.axis}")
            if mv.out_dim is not None:
                out_assign.append((mv.out_dim, mv.axis))
                out_shard_factor *= p
            if mv.lhs_dim is not None:
                lhs_assign.append((mv.lhs_dim, mv.axis))
            if mv.rhs_dim is not None:
                rhs_assign.append((mv.rhs_dim, mv.axis))
        try:
            out_spec = intern_assignments(tuple(out_assign))
            lhs_spec = intern_assignments(tuple(lhs_assign))
            rhs_spec = intern_assignments(tuple(rhs_assign))
        except ValueError:  # a dim or axis mapped twice: incompatible combo
            return None
        if not (out_spec.valid_for(out, mesh) and lhs_spec.valid_for(lhs, mesh)
                and rhs_spec.valid_for(rhs, mesh)):
            return None
        comm = 0.0
        for mv in selected:
            if mv.allreduce:
                p = mesh.axis_size(mv.axis)
                comm += allreduce_time(mesh.axis_link(mv.axis),
                                       out.nbytes / out_shard_factor, p)
        return Strategy("dot[" + "+".join(names) + "]", out_spec,
                        (lhs_spec, rhs_spec), factor, comm)

    for mv in moves:
        s = mk([mv])
        if s:
            strats.append(s)
    for i, m1 in enumerate(moves):
        for m2 in moves[i + 1:]:
            if m1.axis == m2.axis:
                continue
            s = mk([m1, m2])
            if s:
                strats.append(s)
    return strats


def _gather(node: Node, ins: Sequence[TensorSpec],
            mesh: LogicalMesh) -> list[Strategy]:
    table, idx = ins[0], ins[1] if len(ins) > 1 else ins[0]
    out = node.out
    strats = [Strategy("gather[R]", REPLICATED,
                       tuple(REPLICATED for _ in ins), 1, 0.0)]
    for a in iter_axes(mesh):
        # shard the embedding dim of the table (model parallelism)
        if (a == "mp" and table.rank == 2 and out.rank >= 1
                and table.shape[1] == out.shape[-1]):
            s = ShardingSpec.shard(out.rank - 1, a)
            t = ShardingSpec.shard(1, a)
            if s.valid_for(out, mesh) and t.valid_for(table, mesh):
                strats.append(Strategy(f"gather[col@{a}]", s,
                                       (t,) + tuple(REPLICATED for _ in ins[1:]),
                                       mesh.axis_size(a), 0.0))
        # shard the index batch dim (data parallelism)
        if (a == "dp" and len(ins) > 1 and idx.rank >= 1
                and out.shape[0] == idx.shape[0]):
            s = ShardingSpec.shard(0, a)
            i = ShardingSpec.shard(0, a)
            if s.valid_for(out, mesh) and i.valid_for(idx, mesh):
                strats.append(Strategy(f"gather[batch@{a}]", s,
                                       (REPLICATED, i) + tuple(REPLICATED for _ in ins[2:]),
                                       mesh.axis_size(a), 0.0))
    return strats


def _default(node: Node, ins: Sequence[TensorSpec],
             mesh: LogicalMesh) -> list[Strategy]:
    """Replicated execution plus batch-dim sharding when shapes allow."""
    strats = [Strategy("def[R]", REPLICATED,
                       tuple(REPLICATED for _ in ins), 1, 0.0)]
    out = node.out
    if out.rank >= 1:
        for a in iter_axes(mesh):
            if not _axis_ok(0, a):
                continue
            c = ShardingSpec.shard(0, a)
            if not c.valid_for(out, mesh):
                continue
            in_specs = []
            ok = True
            for s in ins:
                if s.rank >= 1 and s.shape[0] == out.shape[0]:
                    sp = ShardingSpec.shard(0, a)
                    if not sp.valid_for(s, mesh):
                        ok = False
                        break
                    in_specs.append(sp)
                else:
                    in_specs.append(REPLICATED)
            if ok:
                strats.append(Strategy(f"def[batch@{a}]", c, tuple(in_specs),
                                       mesh.axis_size(a), 0.0))
    return strats


def legacy_node_strategies(node: Node, input_specs: Sequence[TensorSpec],
                           mesh: LogicalMesh) -> list[Strategy]:
    """The pre-registry monolithic enumerator (differential oracle)."""
    if node.node_type != "operator":
        return [Strategy("leaf", REPLICATED, (), 1, 0.0)]
    category = op_def(node.op).category
    if node.op == "dot_general":
        return _dot_general(node, input_specs, mesh)
    if node.op == "transpose":
        return _transpose(node, input_specs, mesh)
    if node.op in ("reshape", "broadcast_in_dim", "convert_element_type"):
        if node.op == "reshape" and input_specs:
            return _reshape(node, input_specs, mesh)
        return _default(node, input_specs, mesh)
    if node.op == "gather":
        return _gather(node, input_specs, mesh)
    if category == "elementwise":
        return _elementwise(node, input_specs, mesh)
    if category == "reduction":
        return _reduction(node, input_specs, mesh)
    return _default(node, input_specs, mesh)
