"""Performance instrumentation and micro-benchmark harness.

``repro.perf.timing`` provides scoped wall-clock timers and counters with
percentile summaries; ``repro.perf.microbench`` drives the intra-op DP
micro-benchmark over the active profile's GPT grid and emits the
``BENCH_intraop.json`` artifact (``repro bench micro``);
``repro.perf.trainbench`` drives the predictor-pipeline benchmark (fast
hot path vs the seed baseline, bit-identical by construction) and emits
``BENCH_train.json`` (``repro bench train``);
``repro.perf.servebench`` drives a deterministic synthetic-client fleet
against the serving daemon (chaos-aware via ``REPRO_FAULTS``) and emits
``BENCH_serve.json`` (``repro bench serve``).
"""

from .timing import PerfRecorder, TimingStats, percentile
from .microbench import run_intraop_microbench
from .servebench import run_noisy_neighbor_bench, run_serve_bench
from .trainbench import run_train_microbench

__all__ = ["PerfRecorder", "TimingStats", "percentile",
           "run_intraop_microbench", "run_noisy_neighbor_bench",
           "run_serve_bench", "run_train_microbench"]
