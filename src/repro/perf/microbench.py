"""Intra-op DP micro-benchmark: vectorized solver vs the reference oracle.

The case set is the active profile's GPT grid — every contiguous unit
slice of the layer clustering, crossed with every Table-III logical view
of every Platform-2 mesh — i.e. exactly the (stage, mesh) population the
Table V/VI experiments solve.  For each case the harness

1. verifies the vectorized solver is **identical** to
   :func:`~repro.parallel.intra_op.optimize_stage_reference` (same DP
   estimate, same committed shardings — equality, not tolerance);
2. times both solvers warm (caches populated, as in grid production use)
   and reports p50/p95/throughput per graph-size bucket plus the overall
   speedup.

``repro bench micro`` writes the result as ``BENCH_intraop.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.mesh import LogicalMesh, logical_views
from ..cluster.platforms import PLATFORM2
from ..experiments.profiles import ExperimentProfile, active_profile
from ..ir.graph import Graph
from ..models.clustering import cluster_layers
from ..models.configs import benchmark_config
from ..models.model import build_model
from ..parallel.intra_op import optimize_stage, optimize_stage_reference
from ..runtime.profiler import StageProfiler
from .timing import PerfRecorder, percentile

SCHEMA = "predtop.bench_intraop/v1"

#: graph-size buckets: label -> (lo, hi) node-count bounds, hi exclusive
BUCKETS = (("small<200", 0, 200),
           ("medium<400", 200, 400),
           ("large>=400", 400, 10**9))


@dataclass(frozen=True)
class BenchCase:
    """One (stage training graph, logical mesh) solve."""

    label: str
    graph: Graph
    mesh: LogicalMesh

    @property
    def bucket(self) -> str:
        n = len(self.graph)
        for name, lo, hi in BUCKETS:
            if lo <= n < hi:
                return name
        raise AssertionError(f"no bucket for {n} nodes")


def grid_cases(profile: ExperimentProfile | None = None,
               family: str = "gpt",
               quick: bool = False) -> list[BenchCase]:
    """The profile's (slice, logical view) grid on Platform 2."""
    profile = profile or active_profile()
    layers = {"gpt": profile.gpt_layers, "moe": profile.moe_layers}[family]
    model = build_model(benchmark_config(family, layers))
    clustering = cluster_layers(model, profile.gpt_units if family == "gpt"
                                else profile.moe_units)
    profiler = StageProfiler(model,
                             aggressive_fusion=profile.aggressive_fusion)
    slices = clustering.all_slices()
    views: list[LogicalMesh] = []
    for idx in PLATFORM2.mesh_indices():
        views.extend(logical_views(PLATFORM2.mesh(idx)))
    if quick:  # one slice per distinct length, largest meshes only
        by_len: dict[int, tuple[int, int]] = {}
        for s, e in slices:
            by_len.setdefault(e - s, (s, e))
        slices = sorted(by_len.values())
        views = views[-2:]
    cases = []
    for start, end in slices:
        graph = profiler.training_graph(start, end)
        for mesh in views:
            cases.append(BenchCase(
                f"{family}[{start}:{end}]@{mesh.dp}x{mesh.mp}", graph, mesh))
    return cases


def _check_identical(case: BenchCase) -> bool:
    a = optimize_stage(case.graph, case.mesh)
    b = optimize_stage_reference(case.graph, case.mesh)
    if a.estimated_time != b.estimated_time:
        return False
    for x, y in zip(a.assignments, b.assignments):
        sx, sy = x.strategy, y.strategy
        if (sx.out.assignments != sy.out.assignments
                or tuple(s.assignments for s in sx.ins)
                != tuple(s.assignments for s in sy.ins)
                or sx.factor != sy.factor or sx.comm_time != sy.comm_time):
            return False
    return True


def run_intraop_microbench(profile: ExperimentProfile | None = None,
                           quick: bool = False,
                           repeats: int | None = None,
                           check: bool = True) -> dict:
    """Run the benchmark and return the ``BENCH_intraop.json`` payload."""
    profile = profile or active_profile()
    cases = grid_cases(profile, "gpt", quick=quick)
    repeats = repeats or (2 if quick else 5)

    identical = True
    checked = 0
    if check:
        for case in cases:
            identical = identical and _check_identical(case)
            checked += 1
    else:  # still warm both solvers' caches before timing
        for case in cases:
            optimize_stage(case.graph, case.mesh)
            optimize_stage_reference(case.graph, case.mesh)

    rec = PerfRecorder()
    vec_by_case: dict[str, list[float]] = {}
    ref_by_case: dict[str, list[float]] = {}
    for case in cases:
        for _ in range(repeats):
            with rec.time(f"vec/{case.bucket}"):
                optimize_stage(case.graph, case.mesh)
            vec_by_case.setdefault(case.label, []).append(
                rec.samples[f"vec/{case.bucket}"][-1])
        for _ in range(max(1, repeats // 2)):
            with rec.time(f"ref/{case.bucket}"):
                optimize_stage_reference(case.graph, case.mesh)
            ref_by_case.setdefault(case.label, []).append(
                rec.samples[f"ref/{case.bucket}"][-1])
        rec.count("cases")
        rec.count(f"cases/{case.bucket}")

    def side(prefix: str, bucket: str | None) -> dict:
        keys = [k for k in rec.samples
                if k.startswith(prefix)
                and (bucket is None or k == f"{prefix}{bucket}")]
        xs = [s for k in keys for s in rec.samples[k]]
        return {"ops_per_sec": len(xs) / sum(xs, 0.0),
                "p50_ms": percentile(xs, 50.0) * 1e3,
                "p95_ms": percentile(xs, 95.0) * 1e3}

    # speedup from per-case medians so reps and case mix cancel out
    def median_total(by_case: dict[str, list[float]]) -> float:
        return sum(percentile(xs, 50.0) for xs in by_case.values())

    buckets = {}
    for name, _, _ in BUCKETS:
        n = rec.counters.get(f"cases/{name}", 0)
        if not n:
            continue
        bucket_cases = [c.label for c in cases if c.bucket == name]
        buckets[name] = {
            "n_cases": n,
            "vectorized": side("vec/", name),
            "reference": side("ref/", name),
            "speedup": (
                median_total({k: ref_by_case[k] for k in bucket_cases})
                / median_total({k: vec_by_case[k] for k in bucket_cases})),
        }

    vec_total = median_total(vec_by_case)
    ref_total = median_total(ref_by_case)
    return {
        "schema": SCHEMA,
        "profile": profile.name,
        "quick": quick,
        "repeats": repeats,
        "n_cases": len(cases),
        "differential": {"checked": checked, "identical": identical},
        "buckets": buckets,
        "overall": {
            "vectorized": side("vec/", None),
            "reference": side("ref/", None),
            "vectorized_total_ms": vec_total * 1e3,
            "reference_total_ms": ref_total * 1e3,
            "speedup": ref_total / vec_total,
        },
    }
