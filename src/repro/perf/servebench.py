"""Serving load-test harness (``repro bench serve``).

Hammers one :class:`~repro.serving.server.ReproServer` — booted
in-process by default, or an external daemon via ``--port`` — with a
deterministic fleet of synthetic clients speaking the JSON-lines
protocol over real sockets.  Each client keeps a persistent connection
and draws its request mix (predict / predict_many / whatif / search /
health) from a per-client seeded RNG, so a rerun replays byte-identical
traffic.

Misbehaving clients come from the fault plan (``REPRO_FAULTS``), keyed
on the **global request index** so chaos runs are reproducible:

* ``request_garbage`` — the client sends one of several malformed
  payloads (binary junk, bare JSON arrays, unknown ops) and expects an
  *error response*, not a dropped connection;
* ``conn_drop`` — the client slams its connection shut right after
  writing the request; the daemon must absorb the broken pipe;
* ``slow_client`` — the client dribbles its request bytes slower than
  the server's read timeout (slow-loris) and expects to be reaped with
  an ``invalid_request`` answer.

Well-behaved clients honor backpressure: an ``overloaded`` /
``rate_limited`` / ``draining`` response is retried after the server's
(jittered) ``retry_after_ms`` hint (bounded retries), and only then
recorded as shed.  The robustness contract the bench asserts (and CI
gates on): **zero unanswered requests** — every fully sent request on a
surviving connection gets a response line.

Two scenario modes ride on the same client fleet:

* ``router_replicas=N`` boots N daemon replicas behind a
  :class:`~repro.serving.router.ReproRouter` and aims the fleet at the
  router; a ``replica_down`` fault rule arms the chaos controller,
  which hard-kills one replica once the fleet passes the rule's request
  index and restarts it on the same port — the run must still end with
  zero unanswered requests and the restarted replica back in the ring;
* :func:`run_noisy_neighbor_bench` measures a victim tenant's predict
  p99 solo, then while an "aggressor" tenant floods ``search`` — once
  with per-tenant isolation on (the victim must stay within 2x its solo
  p99) and once without (the contrast the numbers pin).

The result dict (written as ``BENCH_serve.json``) records p50/p99/mean
latency per op, throughput, shed/degraded/error rates, the client-side
fault tallies, the server's closing health snapshot, and every circuit
breaker transition observed.
"""

from __future__ import annotations

import json
import os
import socket
import statistics
import threading
import time

from .. import faults
from .timing import percentile

SCHEMA = "predtop.bench_serve/v2"

#: ops drawn by well-behaved clients, with mix weights
OP_WEIGHTS = (("predict", 55), ("predict_many", 15), ("whatif", 15),
              ("search", 5), ("health", 10))

#: malformed payloads cycled through by ``request_garbage`` clients
GARBAGE_LINES = (
    b"\x00\xff\xfe garbage not json\n",
    b"[1, 2, 3]\n",
    b'{"op": 17}\n',
    b'{"op": "explode"}\n',
    b'{"op": "predict", "params": "not an object"}\n',
    b'{"op": "predict", "deadline_ms": "soon"}\n',
    b'{truncated\n',
)

#: bounded retries a polite client spends on shed/rate-limited answers
MAX_RETRIES = 4

#: error codes a polite client retries after the server's hint
RETRY_CODES = ("overloaded", "rate_limited", "draining")


class _ClientStats:
    """One client's tally (merged single-threaded afterwards)."""

    def __init__(self) -> None:
        self.latencies_ms: dict[str, list[float]] = {}
        self.ok = 0
        #: prediction-shaped answers actually served by the model path
        self.ok_model = 0
        self.degraded = 0
        self.errors: dict[str, int] = {}
        self.shed_retries = 0
        self.shed_final = 0
        self.unanswered = 0
        self.conn_drops = 0
        self.slow_loris = 0
        self.garbage_sent = 0
        self.reconnects = 0


class _Client:
    """One synthetic client: persistent connection, seeded request mix."""

    def __init__(self, cid: int, address: tuple[str, int], n_requests: int,
                 seed: int, requests_per_client: int, quick: bool,
                 read_timeout_s: float, tenant: str | None = None,
                 op_weights: tuple = OP_WEIGHTS,
                 stop: threading.Event | None = None) -> None:
        import random

        self.cid = cid
        self.address = address
        self.n_requests = n_requests
        self.requests_per_client = requests_per_client
        self.quick = quick
        self.read_timeout_s = read_timeout_s
        self.tenant = tenant
        self.op_weights = op_weights
        self.stop = stop
        self.rng = random.Random((seed + 1) * 1_000_003 + cid * 8191)
        self.stats = _ClientStats()
        self.sock: socket.socket | None = None
        self._buf = b""

    # --------------------------------------------------------------- socket
    def _connect(self) -> None:
        self.sock = socket.create_connection(self.address, timeout=5.0)
        self.sock.settimeout(self.read_timeout_s)
        self._buf = b""

    def _close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None
        self._buf = b""

    def _read_line(self) -> bytes | None:
        """One response line, or ``None`` when the server went silent."""
        while b"\n" not in self._buf:
            try:
                chunk = self.sock.recv(65536)
            except (socket.timeout, OSError):
                return None
            if not chunk:
                return None
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return line

    # ------------------------------------------------------------- requests
    def _draw_op(self) -> str:
        total = sum(w for _, w in self.op_weights)
        draw = self.rng.randrange(total)
        for op, w in self.op_weights:
            if draw < w:
                return op
            draw -= w
        return "predict"  # pragma: no cover

    def _build_request(self, op: str, rid: str) -> dict:
        params: dict = {}
        if op == "predict":
            params = {"slice": self.rng.choice([[0, 1], [0, 2], [1, 2]])}
        elif op == "predict_many":
            params = {"slices": [[0, 1], [1, 2], [0, 2]]
                      [: self.rng.randrange(1, 4)]}
        elif op == "whatif":
            params = {"n_stages": self.rng.randrange(1, 3),
                      "n_microbatches": self.rng.choice([2, 4, 8])}
        elif op == "search":
            params = {"stage_counts": [1, 2] if self.quick else [1, 2, 3],
                      "n_microbatches": 4}
        deadline_ms = 60_000.0 if op == "search" else 20_000.0
        request = {"op": op, "id": rid, "params": params,
                   "deadline_ms": deadline_ms}
        if self.tenant is not None:
            request["tenant"] = self.tenant
        return request

    # -------------------------------------------------------------- running
    def run(self) -> None:
        try:
            self._connect()
        except OSError:
            self.stats.unanswered += self.n_requests
            return
        for i in range(self.n_requests):
            if self.stop is not None and self.stop.is_set():
                break
            gidx = self.cid * self.requests_per_client + i
            try:
                self._one_request(i, gidx)
            except OSError:
                self.stats.reconnects += 1
                try:
                    self._connect()
                except OSError:
                    self.stats.unanswered += 1
        self._close()

    def _one_request(self, i: int, gidx: int) -> None:
        st = self.stats
        # ---- misbehaving variants, decided by the fault plan ----
        if faults.check("request_garbage", gidx) is not None:
            st.garbage_sent += 1
            line = GARBAGE_LINES[gidx % len(GARBAGE_LINES)]
            self.sock.sendall(line)
            resp = self._read_answer()
            if resp is None:
                st.unanswered += 1
            else:
                code = (resp.get("error") or {}).get("code", "?")
                st.errors[code] = st.errors.get(code, 0) + 1
            return
        rid = f"c{self.cid}-{i}"
        wire = (json.dumps(self._build_request(self._draw_op(), rid))
                + "\n").encode()
        if faults.check("conn_drop", gidx) is not None:
            # fire-and-vanish: the daemon must absorb the broken pipe
            st.conn_drops += 1
            try:
                self.sock.sendall(wire)
            finally:
                self._close()
            self._connect()
            return
        if faults.check("slow_client", gidx) is not None:
            # slow-loris: dribble a partial line past the read timeout
            st.slow_loris += 1
            self.sock.sendall(wire[: max(1, len(wire) // 2)])
            resp = self._read_answer(extra_timeout=self.read_timeout_s * 3)
            if resp is None:
                st.unanswered += 1
            else:
                code = (resp.get("error") or {}).get("code", "?")
                st.errors[code] = st.errors.get(code, 0) + 1
            # the server closed this connection after reaping it
            self._close()
            self._connect()
            return
        # ---- the polite path, honoring retry_after backpressure ----
        request = json.loads(wire)
        for _attempt in range(MAX_RETRIES + 1):
            t0 = time.monotonic()
            self.sock.sendall(wire)
            resp = self._read_answer()
            if resp is None:
                st.unanswered += 1
                raise OSError("no response")
            dt_ms = (time.monotonic() - t0) * 1e3
            code = (resp.get("error") or {}).get("code")
            if code in RETRY_CODES:
                st.shed_retries += 1
                # the hint is jittered server-side; honoring it keeps
                # shed clients from stampeding back in lockstep
                time.sleep(min(1.0,
                               float(resp.get("retry_after_ms", 50)) / 1e3))
                continue
            if resp.get("ok"):
                st.ok += 1
                op = request["op"]
                if resp.get("degraded"):
                    st.degraded += 1
                elif op != "health":
                    st.ok_model += 1
                st.latencies_ms.setdefault(op, []).append(dt_ms)
            else:
                st.errors[code or "?"] = st.errors.get(code or "?", 0) + 1
            return
        st.shed_final += 1

    def _read_answer(self, extra_timeout: float = 0.0) -> dict | None:
        if extra_timeout:
            self.sock.settimeout(self.read_timeout_s + extra_timeout)
        try:
            line = self._read_line()
        finally:
            if extra_timeout:
                self.sock.settimeout(self.read_timeout_s)
        if line is None:
            return None
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            return None


# ---------------------------------------------------------------- the bench
def _summarize(per_op: dict[str, list[float]]) -> dict:
    out = {}
    for op, xs in sorted(per_op.items()):
        out[op] = {
            "n": len(xs),
            "p50_ms": round(percentile(xs, 50), 3),
            "p99_ms": round(percentile(xs, 99), 3),
            "mean_ms": round(statistics.fmean(xs), 3),
        }
    return out


def _health(address: tuple[str, int]) -> dict | None:
    try:
        sock = socket.create_connection(address, timeout=5.0)
        sock.sendall(b'{"op": "health", "id": "bench-final"}\n')
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                return None
            buf += chunk
        sock.close()
        return json.loads(buf.split(b"\n", 1)[0]).get("result")
    except (OSError, json.JSONDecodeError):
        return None


def _build_runtime(quick: bool, seed: int):
    from ..serving.runtime import PredictorRuntime, RuntimeConfig

    return PredictorRuntime.build(RuntimeConfig(
        layers=2, units=3, sample_fraction=0.6,
        epochs=3 if quick else 6, seed=seed))


def _run_fleet(fleet: list[_Client]) -> float:
    """Run every client to completion; returns the wall seconds."""
    t0 = time.monotonic()
    threads = [threading.Thread(target=c.run, name=f"bench-client-{c.cid}",
                                daemon=True) for c in fleet]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.monotonic() - t0


class _ChaosController:
    """Arms ``replica_down``: kill one replica mid-run, restart it.

    The rule's ``at`` index is the global request count the fleet must
    pass before the kill; ``seed`` picks the victim replica (``seed %
    n_replicas``); ``secs`` (capped at 3 s; the parse default of an hour
    means "use 1 s") is the downtime before the restart.  The restarted
    replica binds the *same* port, so the router's health prober folds
    it back into the ring without any reconfiguration.
    """

    def __init__(self, fleet, servers, router, runtime,
                 journal_root=None) -> None:
        self.fleet = fleet
        self.servers = servers
        self.router = router
        self.runtime = runtime
        self.journal_root = journal_root
        self.events: list[dict] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="bench-chaos", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def finish(self) -> None:
        self._stop.set()
        self._thread.join(timeout=15.0)

    def _progress(self) -> int:
        return sum(c.stats.ok + sum(c.stats.errors.values())
                   + c.stats.shed_final for c in self.fleet)

    def _run(self) -> None:
        from ..serving.server import ReproServer, ServerConfig

        rules = [r for r in faults.active_plan()
                 if r.site == "replica_down"]
        if not rules:
            return
        rule = rules[0]
        trigger = min(rule.at) if rule.at else 0
        victim = rule.seed % len(self.servers)
        while not self._stop.is_set() and self._progress() < trigger:
            time.sleep(0.02)
        if self._stop.is_set():
            return
        old = self.servers[victim]
        host, port = old.address
        old.kill()
        self.events.append({"event": "replica_killed", "replica": victim,
                            "port": port, "after_requests": self._progress()})
        down_s = 1.0 if rule.secs >= 3600.0 else min(rule.secs, 3.0)
        time.sleep(down_s)
        fresh = ReproServer(self.runtime, ServerConfig(
            host=host, port=port, workers=2, read_timeout_s=1.0,
            idle_timeout_s=30.0, replica_ordinal=victim),
            journal_root=self.journal_root)
        try:
            fresh.start()
        except OSError as exc:  # port still in TIME_WAIT etc.
            self.events.append({"event": "restart_failed",
                                "detail": str(exc)})
            return
        self.servers[victim] = fresh
        rejoined = False
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if self.router.replicas[victim].healthy:
                rejoined = True
                break
            time.sleep(0.05)
        self.events.append({"event": "replica_restarted", "replica": victim,
                            "rejoined": rejoined})


def run_serve_bench(quick: bool = False, address: tuple[str, int] | None = None,
                    clients: int | None = None,
                    requests_per_client: int | None = None,
                    seed: int = 0, router_replicas: int = 0,
                    journal_root=None, runtime=None) -> dict:
    """Run the fleet against a daemon; returns the ``BENCH_serve`` dict.

    ``address=None`` boots a small server in-process (own runtime, quiet
    ephemeral port) and drains it afterwards; otherwise the fleet targets
    the external daemon at ``address`` and never touches its lifecycle.
    ``router_replicas=N`` (with ``address=None``) boots N replicas
    behind a :class:`~repro.serving.router.ReproRouter` instead, arms
    the ``replica_down`` chaos controller if the fault plan carries one,
    and reports a ``router`` section.
    """
    from ..serving.router import ReproRouter, RouterConfig
    from ..serving.server import ReproServer, ServerConfig

    clients = clients or (8 if quick else 24)
    requests_per_client = requests_per_client or (12 if quick else 25)

    server = None
    servers: list = []
    router = None
    controller = None
    if address is None:
        if runtime is None:
            runtime = _build_runtime(quick, seed)
        if router_replicas > 0:
            for i in range(router_replicas):
                srv = ReproServer(runtime, ServerConfig(
                    port=0, workers=2, read_timeout_s=1.0,
                    idle_timeout_s=30.0, replica_ordinal=i),
                    journal_root=journal_root)
                srv.start()
                servers.append(srv)
            router = ReproRouter([s.address for s in servers],
                                 RouterConfig(port=0),
                                 journal_root=journal_root)
            router.start()
            address = router.address
        else:
            server = ReproServer(runtime, ServerConfig(
                port=0, workers=2, read_timeout_s=1.0, idle_timeout_s=30.0),
                journal_root=journal_root)
            server.start()
            address = server.address
    read_timeout_s = 30.0

    fleet = [_Client(cid, address, requests_per_client, seed,
                     requests_per_client, quick, read_timeout_s)
             for cid in range(clients)]
    if router is not None:
        controller = _ChaosController(fleet, servers, router, runtime,
                                      journal_root)
        controller.start()
    wall_s = _run_fleet(fleet)

    health = _health(address)
    transitions = []
    router_section = None
    if controller is not None:
        controller.finish()
    if router is not None:
        router_section = {
            "replicas": router_replicas,
            "failovers": router.counters.get("failovers"),
            "counters": router.counters.snapshot(),
            "chaos": controller.events if controller else [],
            "health": health,
        }
        router.stop()
    for srv in ([server] if server is not None else servers):
        if srv is None:
            continue
        for route, breaker in sorted(srv.breakers.items()):
            transitions.extend(
                {"route": route, "from": a, "to": b, "reason": reason}
                for (a, b, reason) in breaker.transitions)
        srv.stop()

    # ---------------------------------------------------------- aggregation
    per_op: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    totals = {"ok": 0, "ok_model": 0, "degraded": 0,
              "shed_retries": 0, "shed_final": 0,
              "unanswered": 0, "conn_drops": 0, "slow_loris": 0,
              "garbage_sent": 0, "reconnects": 0}
    for c in fleet:
        st = c.stats
        for op, xs in st.latencies_ms.items():
            per_op.setdefault(op, []).extend(xs)
        for code, n in st.errors.items():
            errors[code] = errors.get(code, 0) + n
        totals["ok"] += st.ok
        totals["ok_model"] += st.ok_model
        totals["degraded"] += st.degraded
        totals["shed_retries"] += st.shed_retries
        totals["shed_final"] += st.shed_final
        totals["unanswered"] += st.unanswered
        totals["conn_drops"] += st.conn_drops
        totals["slow_loris"] += st.slow_loris
        totals["garbage_sent"] += st.garbage_sent
        totals["reconnects"] += st.reconnects
    sent = clients * requests_per_client
    answered = totals["ok"] + sum(errors.values())
    result = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "in_process": server is not None or bool(servers),
        "faults": os.environ.get(faults.ENV_VAR, ""),
        "config": {"clients": clients,
                   "requests_per_client": requests_per_client,
                   "seed": seed},
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(answered / wall_s, 2) if wall_s else 0.0,
        "requests_sent": sent,
        "answered": answered,
        "totals": totals,
        "zero_unanswered": totals["unanswered"] == 0,
        "error_responses": dict(sorted(errors.items())),
        "latency": _summarize(per_op),
        "breaker_transitions": transitions,
        "server_health": health,
    }
    if router_section is not None:
        result["router"] = router_section
    return result


# --------------------------------------------------------- noisy neighbor
def run_noisy_neighbor_bench(quick: bool = True, seed: int = 0,
                             runtime=None, journal_root=None) -> dict:
    """Victim-tenant predict p99 solo vs. under an aggressor's search
    flood, with and without per-tenant isolation.

    Three phases on a fresh in-process daemon each time the config
    changes: (1) *solo* — victim predicts alone on the isolation-enabled
    daemon (the baseline p99); (2) *isolated* — the aggressor tenant
    floods ``search`` but its policy (tiny token bucket, one in-flight,
    one queue slot) answers nearly all of it ``rate_limited`` inline, so
    the victim's p99 must stay within 2x solo; (3) *unisolated* — same
    flood on a daemon without tenant budgets, pinning the contrast.  The
    ``isolation_holds`` bit is the acceptance gate CI asserts.
    """
    from ..serving.server import ReproServer, ServerConfig
    from ..serving.tenancy import TenancyConfig, TenantPolicy

    runtime = runtime or _build_runtime(quick, seed)
    victim_clients = 2
    victim_requests = 15 if quick else 40
    aggressor_clients = 2

    isolation = TenancyConfig(policies={
        "aggressor": TenantPolicy(rate=0.5, burst=8.0, max_inflight=1,
                                  max_queued=1),
    })

    def phase(server: ReproServer, with_aggressor: bool) -> dict:
        stop = threading.Event()
        aggressors = [
            _Client(100 + k, server.address, 10_000, seed, 10_000, quick,
                    30.0, tenant="aggressor", op_weights=(("search", 1),),
                    stop=stop)
            for k in range(aggressor_clients)]
        agg_threads = [threading.Thread(target=c.run, daemon=True,
                                        name=f"bench-aggressor-{c.cid}")
                       for c in aggressors]
        if with_aggressor:
            for t in agg_threads:
                t.start()
            time.sleep(0.5)  # let the flood build before measuring
        victims = [
            _Client(k, server.address, victim_requests, seed,
                    victim_requests, quick, 30.0, tenant="victim",
                    op_weights=(("predict", 1),))
            for k in range(victim_clients)]
        _run_fleet(victims)
        stop.set()
        if with_aggressor:
            for t in agg_threads:
                t.join(timeout=90.0)
        lat = [x for c in victims
               for x in c.stats.latencies_ms.get("predict", ())]
        agg_errors: dict[str, int] = {}
        for c in aggressors:
            for code, n in c.stats.errors.items():
                agg_errors[code] = agg_errors.get(code, 0) + n
        return {
            "victim_n": len(lat),
            "victim_p50_ms": round(percentile(lat, 50), 3) if lat else None,
            "victim_p99_ms": round(percentile(lat, 99), 3) if lat else None,
            "victim_unanswered": sum(c.stats.unanswered for c in victims),
            "aggressor_ok": sum(c.stats.ok for c in aggressors),
            "aggressor_shed_retries": sum(c.stats.shed_retries
                                          for c in aggressors),
            "aggressor_shed_final": sum(c.stats.shed_final
                                        for c in aggressors),
            "aggressor_errors": dict(sorted(agg_errors.items())),
        }

    iso_server = ReproServer(runtime, ServerConfig(
        port=0, workers=2, read_timeout_s=1.0, idle_timeout_s=30.0,
        tenancy=isolation), journal_root=journal_root)
    iso_server.start()
    # warm the model path so the solo baseline is steady-state
    phase(iso_server, with_aggressor=False)
    solo = phase(iso_server, with_aggressor=False)
    isolated = phase(iso_server, with_aggressor=True)
    iso_server.stop()

    raw_server = ReproServer(runtime, ServerConfig(
        port=0, workers=2, read_timeout_s=1.0, idle_timeout_s=30.0,
        tenancy=TenancyConfig()), journal_root=journal_root)
    raw_server.start()
    unisolated = phase(raw_server, with_aggressor=True)
    raw_server.stop()

    def ratio(p99):
        if not p99 or not solo["victim_p99_ms"]:
            return None
        return round(p99 / solo["victim_p99_ms"], 3)

    return {
        "solo": solo,
        "isolated": isolated,
        "unisolated": unisolated,
        "isolated_p99_ratio": ratio(isolated["victim_p99_ms"]),
        "unisolated_p99_ratio": ratio(unisolated["victim_p99_ms"]),
        "isolation_holds": (ratio(isolated["victim_p99_ms"]) or 99.0) <= 2.0,
        "config": {"victim_clients": victim_clients,
                   "victim_requests": victim_requests,
                   "aggressor_clients": aggressor_clients,
                   "aggressor_policy": {"rate": 0.5, "burst": 8.0,
                                        "max_inflight": 1, "max_queued": 1},
                   "seed": seed},
    }
