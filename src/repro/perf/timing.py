"""Scoped wall-clock timers and counters with percentile summaries.

A :class:`PerfRecorder` accumulates named timing samples (via the
``time(name)`` context manager) and event counts (via ``count``); the
summary reports per-name sample counts, totals, p50/p95 latencies, and
throughput.  Percentiles use linear interpolation between order
statistics, matching ``numpy.percentile``'s default without requiring an
array round-trip for a handful of samples.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass


def percentile(samples: list[float], q: float) -> float:
    """``q``-th percentile (0..100) with linear interpolation."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


@dataclass(frozen=True)
class TimingStats:
    """Summary of one named timer."""

    n: int
    total_s: float
    p50_ms: float
    p95_ms: float

    @property
    def ops_per_sec(self) -> float:
        return self.n / self.total_s if self.total_s > 0 else float("inf")

    def as_dict(self) -> dict:
        return {"n": self.n, "total_s": self.total_s,
                "p50_ms": self.p50_ms, "p95_ms": self.p95_ms,
                "ops_per_sec": self.ops_per_sec}


class PerfRecorder:
    """Accumulates named timing samples and event counters."""

    def __init__(self) -> None:
        self.samples: dict[str, list[float]] = {}
        self.counters: dict[str, int] = {}

    @contextmanager
    def time(self, name: str):
        """Context manager recording one wall-clock sample under ``name``."""
        t0 = _time.perf_counter()
        try:
            yield
        finally:
            self.add_sample(name, _time.perf_counter() - t0)

    def add_sample(self, name: str, seconds: float) -> None:
        self.samples.setdefault(name, []).append(seconds)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def stats(self, name: str) -> TimingStats:
        xs = self.samples[name]
        return TimingStats(
            n=len(xs),
            total_s=sum(xs, 0.0),
            p50_ms=percentile(xs, 50.0) * 1e3,
            p95_ms=percentile(xs, 95.0) * 1e3,
        )

    def summary(self) -> dict:
        """JSON-ready view of every timer and counter."""
        return {
            "timers": {k: self.stats(k).as_dict() for k in self.samples},
            "counters": dict(self.counters),
        }
