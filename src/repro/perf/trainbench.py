"""Predictor-pipeline micro-benchmark: fast hot path vs the seed baseline.

The workload is the fast-profile training corpus — every contiguous unit
slice of the profile's GPT clustering on the Platform-2 two-GPU mesh,
crossed with the profile's microbatch sweep — i.e. the per-search-cell
population one ``search_predtop`` submesh trains and predicts on.  Each
optimization site is timed in isolation and in composition, always
against the *seed* configuration of the same code
(``fastpath.set_fast(False)`` + ``REPRO_ENCODING_CACHE=off`` + serial
ensemble + per-member inference with a per-graph OOD loop):

* ``encoding``     — shared encoding cache (warm) vs fresh re-encoding;
* ``masks``        — precomputed additive attention bias on the batch vs
  the per-forward ``np.where`` mask build;
* ``training``     — one predictor fit, fast autograd engine vs the
  reference engine (covers gradient-buffer stealing, the acyclic tape,
  and the precomputed masks together);
* ``inference``    — one batched ``predict_many`` pass (shared batches +
  vectorized OOD) vs per-member ``predict_graphs`` + a per-graph
  ``ood_score`` loop;
* ``ensemble_fit`` — K member fits fanned across the engine's worker
  pool vs the serial loop (1× by construction on a single core);
* ``dp_collapse``  — cold intra-op DP solves over the corpus (plan
  cache off) with the CFP collapse memo on vs ``REPRO_DP_COLLAPSE=off``,
  always at jobs=1 — the collapse-alone speedup the ISSUE gates on;
* ``end_to_end``   — the full per-cell pipeline (K-member ensemble fit +
  guarded batched prediction over the corpus);
* ``search``       — ``PlanSearcher.search_predtop`` wall time with the
  trust layer on, the headline number.

Every composite A/B doubles as a differential test: losses, weights, and
predictions must be **bit-identical** between the fast and seed modes
(equality, not tolerance).  ``repro bench train`` writes the result as
``BENCH_train.json`` and exits nonzero on any mismatch.
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from contextlib import contextmanager
from dataclasses import replace as dc_replace

import numpy as np

from ..cluster.platforms import PLATFORM2
from ..experiments.profiles import ExperimentProfile, active_profile
from ..models.clustering import cluster_layers
from ..models.configs import benchmark_config
from ..models.model import build_model as build_bench_model
from ..nn import fastpath
from ..predictors.base import LatencyPredictor
from ..predictors.dataset import StageSample, make_batches
from ..predictors.encoding_cache import global_encoding_cache
from ..predictors.trainer import TrainConfig
from ..predictors.trust import EnsemblePredictor, TrustConfig
from ..runtime.profiler import StageProfiler

SCHEMA = "predtop.bench_train/v2"

#: deep-ensemble size of the composite sites (the trust layer's default K)
ENSEMBLE_SIZE = 3

#: training epochs per fit — the fast profile's hyperparameters with the
#: epoch budget scaled down so one bench run times ~20 fits, not ~20
#: early-stopped 150-epoch runs; per-epoch engine cost is what the A/B
#: measures, so the ratio is representative of the full budget
EPOCHS = {"full": 20, "quick": 5}


@contextmanager
def seed_mode():
    """Run the enclosed block in the seed configuration.

    Reference autograd engine + per-forward mask builds
    (``fastpath.set_fast(False)``) and fresh per-call graph encodings
    (``REPRO_ENCODING_CACHE=off``, global cache dropped).  Restores the
    previous configuration on exit; the fast side re-warms its cache.
    """
    prev_fast = fastpath.set_fast(False)
    prev_env = os.environ.get("REPRO_ENCODING_CACHE")
    os.environ["REPRO_ENCODING_CACHE"] = "off"
    global_encoding_cache().clear()
    try:
        yield
    finally:
        fastpath.set_fast(prev_fast)
        if prev_env is None:
            del os.environ["REPRO_ENCODING_CACHE"]
        else:
            os.environ["REPRO_ENCODING_CACHE"] = prev_env


def seed_predict_many(ensemble: EnsemblePredictor, graphs
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The seed inference path: per-member stacking + per-graph OOD loop.

    Reproduces what ``search_predtop`` did before batched inference:
    ``predict_graphs`` per member (each building its own padded batches)
    and one ``ood_score`` call per query graph.
    """
    preds = np.stack([m.predict_graphs(graphs) for m in ensemble.members])
    fs = ensemble.feature_stats
    ood = (np.array([fs.ood_score(g) for g in graphs], np.float64)
           if fs is not None else np.zeros(len(graphs)))
    return preds.mean(axis=0), preds.std(axis=0), ood


def bench_corpus(profile: ExperimentProfile | None = None,
                 quick: bool = False):
    """(graph, latency, stage_id) rows of the fast-profile GPT corpus."""
    profile = profile or active_profile()
    model = build_bench_model(benchmark_config("gpt", profile.gpt_layers))
    profiler = StageProfiler(model,
                             aggressive_fusion=profile.aggressive_fusion)
    clustering = cluster_layers(model, profile.gpt_units)
    mesh = PLATFORM2.mesh(2)
    microbatches = profile.corpus_microbatches
    if quick:
        microbatches = microbatches[:max(1, len(microbatches) // 2)]
    rows = []
    for mb in microbatches:
        for (s, e) in clustering.all_slices():
            p = profiler.profile_stage(s, e, mesh, 2, 1, microbatch=mb)
            rows.append((p.graph, p.latency, f"{p.stage_id}@mb{mb}"))
    return model, clustering, profiler, rows


def _median(fn, repeats: int) -> tuple[float, object]:
    """(median seconds, last return value) of ``repeats`` timed calls."""
    ts, out = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        ts.append(time.perf_counter() - t0)
    return statistics.median(ts), out


def _site(fast_s: float, seed_s: float, *, jobs: int = 1, **extra) -> dict:
    """Site record; ``jobs`` is the worker count the fast side ran with
    (1 for the sites that are serial by construction)."""
    return {"fast_ms": fast_s * 1e3, "seed_ms": seed_s * 1e3,
            "speedup": seed_s / fast_s if fast_s > 0 else float("inf"),
            "jobs": jobs, **extra}


def _state_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def run_train_microbench(profile: ExperimentProfile | None = None,
                         quick: bool = False,
                         repeats: int | None = None,
                         jobs: int | None = None) -> dict:
    """Run the benchmark and return the ``BENCH_train.json`` payload."""
    from ..core.search import PlanSearcher
    from ..experiments.engine import n_jobs

    profile = profile or active_profile()
    repeats = repeats or (1 if quick else 3)
    jobs = jobs or n_jobs()
    epochs = EPOCHS["quick" if quick else "full"]
    cfg = TrainConfig(epochs=epochs, patience=epochs,
                      batch_size=profile.batch_size, lr=profile.lr, seed=0)

    model, clustering, profiler, rows = bench_corpus(profile, quick)
    graphs = [g for (g, _, _) in rows]

    def fresh_samples() -> list[StageSample]:
        return [StageSample(g, lat, sid) for (g, lat, sid) in rows]

    def split(samples):
        rng = np.random.default_rng(0)
        order = rng.permutation(len(samples))
        n_val = max(1, len(samples) // 6)
        return ([samples[i] for i in order[n_val:]],   # train
                [samples[i] for i in order[:n_val]])   # val

    identical = True
    sites: dict[str, dict] = {}

    # ------------------------------------------------- site: encoding cache
    def encode_all():
        for s in fresh_samples():
            s.encode()
            s.sparse_adj()

    encode_all()  # warm the shared cache
    t_fast, _ = _median(encode_all, max(3, repeats))
    cache = global_encoding_cache()
    stats = (len(cache), cache.stats.hits, cache.stats.misses)
    with seed_mode():  # clears the cache on entry — stats snapshot above
        t_seed, _ = _median(encode_all, max(3, repeats))
    sites["encoding"] = _site(t_fast, t_seed, corpus_size=len(rows),
                              cache_entries=stats[0],
                              cache_hits=stats[1],
                              cache_misses=stats[2])

    # ------------------------------------------------------- site: training
    def fit_once():
        samples = fresh_samples()
        train, val = split(samples)
        pred = LatencyPredictor(seed=0)
        res = pred.fit(train, val, cfg)
        return pred, res, pred.predict_graphs(graphs)

    t_fast, (pred_f, res_f, preds_f) = _median(fit_once, repeats)
    with seed_mode():
        t_seed, (pred_r, res_r, preds_r) = _median(fit_once, repeats)
    train_identical = (
        res_f.train_loss == res_r.train_loss
        and res_f.val_loss == res_r.val_loss
        and _state_equal(pred_f.model.state_dict(), pred_r.model.state_dict())
        and np.array_equal(preds_f, preds_r))
    identical &= train_identical
    sites["training"] = _site(t_fast, t_seed, epochs=epochs,
                              identical=train_identical)

    # ---------------------------------------------------------- site: masks
    # same trained model, same padded batches, fast engine on both sides;
    # only the mask site differs: precomputed additive bias on the batch
    # vs the bool-reach path that rebuilds np.where(...) in every
    # attention layer of every forward
    batches = make_batches(fresh_samples(), pred_f.normalizer,
                           cfg.batch_size)
    stripped = [dc_replace(b, attn_bias=None, _ablation_bias=None)
                for b in batches]

    def forward_over(bs):
        return pred_f._forward_batches(bs)

    forward_over(batches)  # warm both paths before timing
    forward_over(stripped)
    t_fast, out_f = _median(lambda: forward_over(batches), max(5, repeats))
    t_seed, out_s = _median(lambda: forward_over(stripped), max(5, repeats))
    masks_identical = np.array_equal(out_f, out_s)
    identical &= masks_identical
    sites["masks"] = _site(t_fast, t_seed, identical=masks_identical)

    # ---------------------------------------------- site: CFP DP collapse
    # cold intra-op solves of the whole corpus on both logical views of
    # the 2-GPU mesh, all caches cleared before every pass so each solve
    # actually runs; "fast" = collapse memo on (default), "seed" =
    # ``REPRO_DP_COLLAPSE=off``.  Both sides are jobs=1 by construction —
    # this site isolates the collapse pass from worker-pool scale-out.
    # GC is paused around the A/B: the memo's long-lived small arrays
    # otherwise trigger collection pauses that dominate the ~50ms passes.
    from ..cluster.mesh import logical_views
    from ..parallel import intra_op

    views = logical_views(PLATFORM2.mesh(2))

    def solve_corpus():
        intra_op.clear_table_caches()
        out = []
        for g in graphs:
            for v in views:
                p = intra_op.optimize_stage(g, v)
                out.append((p.estimated_time,
                            tuple(a.strategy.name for a in p.assignments)))
        return out

    prev_gate = os.environ.pop("REPRO_DP_COLLAPSE", None)
    gc_was = gc.isenabled()
    gc.disable()
    try:
        t_fast, plans_f = _median(solve_corpus, max(3, repeats))
        # snapshot now: the seed passes clear the (live) stats object
        cstats = intra_op.collapse_stats()
        memo_hits, memo_misses = cstats.hits, cstats.misses
        hit_rate = memo_hits / max(1, memo_hits + memo_misses)
        os.environ["REPRO_DP_COLLAPSE"] = "off"
        t_seed, plans_s = _median(solve_corpus, max(3, repeats))
    finally:
        if prev_gate is None:
            os.environ.pop("REPRO_DP_COLLAPSE", None)
        else:
            os.environ["REPRO_DP_COLLAPSE"] = prev_gate
        if gc_was:
            gc.enable()
        intra_op.clear_table_caches()
    collapse_identical = plans_f == plans_s
    identical &= collapse_identical
    sites["dp_collapse"] = _site(t_fast, t_seed,
                                 identical=collapse_identical,
                                 n_solves=len(plans_f),
                                 hit_rate=hit_rate,
                                 memo_hits=memo_hits,
                                 memo_misses=memo_misses)

    # ------------------------------------------------ composite: ensemble
    def ensemble_fit(fit_jobs: int | None):
        samples = fresh_samples()
        train, val = split(samples)
        ens = EnsemblePredictor(seed=0, size=ENSEMBLE_SIZE)
        ens.fit(train, val, cfg, jobs=fit_jobs)
        return ens

    t_par, ens_par = _median(lambda: ensemble_fit(jobs), 1)
    t_ser, ens_ser = _median(lambda: ensemble_fit(1), 1)
    ens_identical = len(ens_par.members) == len(ens_ser.members) and all(
        _state_equal(a.model.state_dict(), b.model.state_dict())
        for a, b in zip(ens_par.members, ens_ser.members))
    identical &= ens_identical
    # "fast" is the parallel fan-out, "seed" the serial member loop
    sites["ensemble_fit"] = _site(t_par, t_ser, jobs=jobs,
                                  members=len(ens_par.members),
                                  identical=ens_identical)

    # ------------------------------------------------------ site: inference
    ens_par.predict_many(graphs)  # warm
    t_fast, many = _median(lambda: ens_par.predict_many(graphs),
                           max(3, repeats))
    with seed_mode():
        seed_predict_many(ens_par, graphs)  # warm
        t_seed, stacked = _median(lambda: seed_predict_many(ens_par, graphs),
                                  max(3, repeats))
    infer_identical = all(np.array_equal(a, b)
                          for a, b in zip(many, stacked))
    identical &= infer_identical
    sites["inference"] = _site(t_fast, t_seed, n_graphs=len(graphs),
                               identical=infer_identical)

    # --------------------------------------------- composite: end to end
    def pipeline(seed_side: bool):
        """One search cell: ensemble fit + guarded batched prediction."""
        ens = ensemble_fit(1 if seed_side else jobs)
        out = (seed_predict_many(ens, graphs) if seed_side
               else ens.predict_many(graphs))
        return out

    t_fast, out_f = _median(lambda: pipeline(False), 1)
    with seed_mode():
        t_seed, out_s = _median(lambda: pipeline(True), 1)
    e2e_identical = all(np.array_equal(a, b) for a, b in zip(out_f, out_s))
    identical &= e2e_identical
    sites["end_to_end"] = _site(t_fast, t_seed, identical=e2e_identical,
                                ensemble_size=ENSEMBLE_SIZE)

    # ----------------------------------------------- headline: plan search
    trust = TrustConfig(enabled=True, ensemble_size=ENSEMBLE_SIZE)

    def search_once(search_jobs: int):
        searcher = PlanSearcher(model, clustering, PLATFORM2.mesh(2),
                                n_microbatches=profile.n_microbatches,
                                profiler=profiler, sample_fraction=0.5,
                                train_config=cfg, seed=0, trust=trust,
                                jobs=search_jobs)
        return searcher.search_predtop()

    search_once(jobs)  # warm the profiler/plan caches on both sides
    t_fast, r_fast = _median(lambda: search_once(jobs), 1)
    with seed_mode():
        orig = EnsemblePredictor.predict_many
        EnsemblePredictor.predict_many = seed_predict_many
        try:
            # the seed side is the pre-pool baseline: one core, serial
            t_seed, r_seed = _median(lambda: search_once(1), 1)
        finally:
            EnsemblePredictor.predict_many = orig

    def plan_sig(r):
        return (r.true_iteration_latency, r.n_table_entries,
                tuple((st.layer_range, st.submesh.key())
                      for st in r.plan.stages))

    search_identical = plan_sig(r_fast) == plan_sig(r_seed)
    identical &= search_identical
    sites["search"] = _site(t_fast, t_seed, jobs=jobs,
                            identical=search_identical,
                            n_table_entries=r_fast.n_table_entries,
                            trusted=r_fast.trust.trusted,
                            suspect=r_fast.trust.suspect)

    return {
        "schema": SCHEMA,
        "profile": profile.name,
        "quick": quick,
        "repeats": repeats,
        "jobs": jobs,
        "config": {
            "epochs": epochs, "batch_size": cfg.batch_size, "lr": cfg.lr,
            "corpus_size": len(rows),
            "node_range": [min(len(g) for g in graphs),
                           max(len(g) for g in graphs)],
            "ensemble_size": ENSEMBLE_SIZE,
        },
        "sites": sites,
        "differential": {"identical": bool(identical)},
        "overall": {
            "headline_search_speedup": sites["search"]["speedup"],
            "pipeline_speedup": sites["end_to_end"]["speedup"],
            "training_speedup": sites["training"]["speedup"],
            "dp_collapse_speedup": sites["dp_collapse"]["speedup"],
        },
    }
