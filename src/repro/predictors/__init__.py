"""Black-box stage-latency predictors: DAG Transformer, GCN, GAT."""

from .analytical import AnalyticalPredictor, analytical_estimate
from .base import PREDICTOR_KINDS, LatencyPredictor, build_model
from .dag_transformer import DAGTransformerLayer, DAGTransformerModel
from .dataset import (
    Batch,
    DatasetSplit,
    Normalizer,
    StageSample,
    make_batches,
    split_dataset,
)
from .encoding_cache import (
    EncodingCache,
    GraphEncoding,
    cached_encoding,
    global_encoding_cache,
)
from .gat import GATModel
from .gcn import GCNModel
from .metrics import mean_absolute_error, mre, rmse
from .serialize import load_predictor, save_predictor
from .trainer import TrainConfig, TrainResult, evaluate_loss, train_model
from .trust import (
    DEFAULT_ALPHA,
    EnsembleFitResult,
    EnsemblePredictor,
    FeatureStats,
    GuardedPrediction,
    TrustConfig,
    TrustStats,
    assess,
)

__all__ = [
    "StageSample", "Normalizer", "DatasetSplit", "split_dataset",
    "Batch", "make_batches",
    "EncodingCache", "GraphEncoding", "cached_encoding",
    "global_encoding_cache",
    "DAGTransformerModel", "DAGTransformerLayer", "GCNModel", "GATModel",
    "TrainConfig", "TrainResult", "train_model", "evaluate_loss",
    "LatencyPredictor", "build_model", "PREDICTOR_KINDS",
    "mre", "mean_absolute_error", "rmse",
    "AnalyticalPredictor", "analytical_estimate",
    "save_predictor", "load_predictor",
    "TrustConfig", "TrustStats", "FeatureStats", "GuardedPrediction",
    "EnsemblePredictor", "EnsembleFitResult", "assess", "DEFAULT_ALPHA",
]
