"""Calibrated analytical (white-box) baseline predictor.

The operator-based white-box approaches in the paper's related work
(Paleo, Habitat's FLOP-scaling mode) estimate latency as a sum of per-op
roofline costs.  This baseline does the same over the stage DAG the
black-box models consume: each node contributes
``max(flops/peak, bytes/bandwidth) + launch_overhead``, and a single
multiplicative factor is calibrated on the training split by least
squares.  It has two uses:

* a **floor** for the learned predictors — anything they add must beat
  this near-zero-cost model;
* a sanity check that the simulated ground truth is *not* trivially the
  analytical sum (intra-op parallelism, collectives, and efficiency
  curves make it deviate).

Note: because this reproduction's ground truth itself comes from a
(richer) analytical simulator, the baseline is *more* competitive here
than it would be against real hardware; EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.gpu import GPUSpec, RTX_A5500
from ..ir.graph import Graph
from ..ir.ops import node_bytes, node_flops
from .dataset import StageSample
from .metrics import mre


def analytical_estimate(graph: Graph, gpu: GPUSpec) -> float:
    """Uncalibrated per-op roofline sum over the stage DAG, in seconds.

    The predictor sees the *forward* stage graph; training executes
    forward + backward + update, so a fixed 3x multiplier approximates
    the training step the profiled latency measures.
    """
    graph.validate()
    total = 0.0
    for node in graph.nodes:
        if node.node_type != "operator":
            continue
        ins = [graph.nodes[i].out for i in node.inputs]
        flops = node_flops(node, ins)
        nbytes = node_bytes(node, ins)
        t = max(flops / gpu.peak_flops, nbytes / gpu.mem_bandwidth)
        total += t + gpu.launch_overhead
    return 3.0 * total


@dataclass
class AnalyticalPredictor:
    """LatencyPredictor-compatible white-box baseline (one learned scalar)."""

    gpu: GPUSpec = RTX_A5500
    scale: float = 1.0
    fitted: bool = field(default=False, init=False)

    def fit(self, train: list[StageSample], val: list[StageSample],
            cfg=None) -> None:
        """Least-squares calibration of the global scale factor."""
        samples = list(train) + list(val)
        if not samples:
            raise ValueError("need at least one sample to calibrate")
        est = np.array([analytical_estimate(s.graph, self.gpu)
                        for s in samples])
        true = np.array([s.latency for s in samples])
        denom = float(np.dot(est, est))
        self.scale = float(np.dot(est, true) / denom) if denom > 0 else 1.0
        self.fitted = True

    def predict_samples(self, samples: list[StageSample]) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("calibrate with fit() first")
        return np.array([self.scale * analytical_estimate(s.graph, self.gpu)
                         for s in samples], dtype=np.float64)

    def predict_graphs(self, graphs: list[Graph]) -> np.ndarray:
        return self.predict_samples([StageSample(g, 1.0) for g in graphs])

    def evaluate_mre(self, samples: list[StageSample]) -> float:
        pred = self.predict_samples(samples)
        true = np.array([s.latency for s in samples])
        return mre(pred, true)
