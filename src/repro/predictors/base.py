"""High-level predictor facade: fit on profiled stages, predict seconds.

:class:`LatencyPredictor` bundles a graph-regression model, its feature /
target normalizer, and the training protocol, keyed by the predictor kind
(``"dag_transformer"`` — PredTOP's choice — or the ``"gcn"`` / ``"gat"``
baselines of §VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir.features import FEATURE_DIM
from ..ir.graph import Graph
from ..nn.tensor import no_grad
from .dag_transformer import DAGTransformerModel
from .dataset import Normalizer, StageSample, make_batches
from .gat import GATModel
from .gcn import GCNModel
from .metrics import mre
from .trainer import TrainConfig, TrainResult, train_model

PREDICTOR_KINDS = ("dag_transformer", "gcn", "gat")


def build_model(kind: str, feature_dim: int = FEATURE_DIM, seed: int = 0,
                **overrides):
    """Instantiate a predictor model with the paper's hyperparameters."""
    if kind == "dag_transformer":
        return DAGTransformerModel(feature_dim, seed=seed, **overrides)
    if kind == "gcn":
        return GCNModel(feature_dim, seed=seed, **overrides)
    if kind == "gat":
        return GATModel(feature_dim, seed=seed, **overrides)
    raise ValueError(f"unknown predictor kind {kind!r}; "
                     f"known: {PREDICTOR_KINDS}")


@dataclass
class LatencyPredictor:
    """Trainable stage-latency predictor for one (mesh, configuration)."""

    kind: str = "dag_transformer"
    seed: int = 0
    target_transform: str = "scaled"
    model_overrides: dict = field(default_factory=dict)
    model: object = None
    normalizer: Normalizer | None = None
    train_result: TrainResult | None = None

    def fit(
        self,
        train: list[StageSample],
        val: list[StageSample],
        cfg: TrainConfig | None = None,
        *,
        checkpoint_path=None,
        resume: bool = False,
        fault_attempt: int = 0,
    ) -> TrainResult:
        """Train from scratch on the given splits.

        ``checkpoint_path`` / ``resume`` pass through to
        :func:`repro.predictors.trainer.train_model`: an interrupted fit
        resumed from its checkpoint reproduces the uninterrupted one
        bit-for-bit (model construction and normalizer fitting are
        deterministic in the seed).  ``fault_attempt`` is the attempt
        coordinate for the ``train_diverge`` chaos site (1 on a
        retraining pass after a detected divergence).
        """
        self.normalizer = Normalizer.fit(train, self.target_transform)
        self.model = build_model(self.kind, seed=self.seed,
                                 **self.model_overrides)
        cfg = cfg or TrainConfig(seed=self.seed)
        self.train_result = train_model(self.model, train, val,
                                        self.normalizer, cfg,
                                        checkpoint_path=checkpoint_path,
                                        resume=resume,
                                        fault_attempt=fault_attempt)
        return self.train_result

    def _ordered_batches(self, samples: list[StageSample], batch_size: int
                         ) -> tuple[list[int], list]:
        """Samples sorted by node count and padded into dense batches."""
        order = sorted(range(len(samples)),
                       key=lambda i: samples[i].encode().n_nodes)
        ordered = [samples[i] for i in order]
        return order, make_batches(ordered, self.normalizer, batch_size)

    def _forward_batches(self, batches: list) -> np.ndarray:
        """Inverse-transformed model outputs over prepared batches."""
        preds: list[np.ndarray] = []
        with no_grad():
            for b in batches:
                preds.append(self.normalizer.inverse(self.model(b).data))
        return np.concatenate(preds)

    def predict_samples(self, samples: list[StageSample],
                        batch_size: int = 32) -> np.ndarray:
        """Predicted latencies (seconds) for encoded samples."""
        if self.model is None or self.normalizer is None:
            raise RuntimeError("predictor is not fitted")
        if not samples:
            return np.empty(0, np.float32)
        order, batches = self._ordered_batches(samples, batch_size)
        flat = self._forward_batches(batches)
        out = np.empty(len(samples), np.float32)
        out[np.asarray(order)] = flat
        # latencies are positive by definition; clamp stray negatives an
        # undertrained linear head can emit
        return np.maximum(out, 1e-6)

    def predict_graphs(self, graphs: list[Graph],
                       batch_size: int = 32) -> np.ndarray:
        """Predicted latencies for bare graphs (latency unknown)."""
        samples = [StageSample(g, latency=1.0) for g in graphs]
        return self.predict_samples(samples, batch_size)

    def predict_many(self, graphs: list[Graph],
                     batch_size: int = 32) -> np.ndarray:
        """Batched inference over all pending graphs at once.

        Alias of :meth:`predict_graphs` (which already buckets into
        padded batches); named entry point for callers that previously
        looped per graph."""
        return self.predict_graphs(graphs, batch_size)

    def evaluate_mre(self, samples: list[StageSample]) -> float:
        """MRE (Eqn 5, %) against the samples' recorded latencies."""
        pred = self.predict_samples(samples)
        true = np.array([s.latency for s in samples], np.float64)
        return mre(pred, true)
