"""DAG Transformer latency predictor (§IV).

Architecture per §IV-B5/B6:

* input projection of Table-I features to the embedding dim;
* **DAGPE** — sinusoidal positional encodings indexed by node *depth*
  (longest path from a source), added to the embeddings;
* 4 DAG Transformer layers: multi-head attention masked by **DAGRA**
  reachability (Eqn 1, k = ∞), residual + LayerNorm, position-wise FFN,
  residual + LayerNorm (Fig 4);
* **global add pool** over nodes (Eqn 2);
* two ReLU linear layers and a scalar output head.
"""

from __future__ import annotations

import numpy as np

from ..nn import fastpath
from ..nn.layers import (
    LayerNorm,
    Linear,
    MaskedMultiHeadAttention,
    Module,
    global_add_pool,
)
from ..nn.tensor import Tensor
from .dataset import Batch

MAX_DEPTH = 4096


def sinusoidal_table(max_len: int, dim: int) -> np.ndarray:
    """Standard transformer sinusoidal position table."""
    pos = np.arange(max_len)[:, None].astype(np.float64)
    i = np.arange(dim)[None, :]
    angle = pos / np.power(10000.0, (2 * (i // 2)) / dim)
    table = np.where(i % 2 == 0, np.sin(angle), np.cos(angle))
    return table.astype(np.float32)


class DAGTransformerLayer(Module):
    """One Fig-4 layer: masked MHA + FFN, both with residual + LayerNorm.

    ``norm_first`` selects pre-LN residual blocks (the stability variant
    standard in modern Transformer implementations) over the original
    post-LN arrangement; both are exposed since the paper's figure shows
    the classic block while training stability on small corpora strongly
    favors pre-LN.
    """

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator,
                 norm_first: bool = True) -> None:
        self.attn = MaskedMultiHeadAttention(dim, n_heads, rng)
        self.ln1 = LayerNorm(dim)
        self.ffn1 = Linear(dim, 2 * dim, rng)
        self.ffn2 = Linear(2 * dim, dim, rng)
        self.ln2 = LayerNorm(dim)
        self.norm_first = norm_first

    def forward(self, x: Tensor, reach: np.ndarray) -> Tensor:
        if self.norm_first:
            x = x + self.attn(self.ln1(x), reach)
            return x + self.ffn2(self.ffn1(self.ln2(x)).relu())
        x = self.ln1(x + self.attn(x, reach))
        h = self.ffn2(self.ffn1(x).relu())
        return self.ln2(x + h)


class DAGTransformerModel(Module):
    """Embedding -> DAGPE -> N DAG Transformer layers -> pool -> MLP head."""

    def __init__(
        self,
        feature_dim: int,
        dim: int = 64,
        n_layers: int = 4,
        n_heads: int = 4,
        seed: int = 0,
        use_dagpe: bool = True,
        use_dagra: bool = True,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.embed = Linear(feature_dim, dim, rng)
        self.layers = [DAGTransformerLayer(dim, n_heads, rng)
                       for _ in range(n_layers)]
        self.head1 = Linear(dim, dim, rng)
        self.head2 = Linear(dim, dim, rng)
        self.out = Linear(dim, 1, rng)
        self.use_dagpe = use_dagpe
        self.use_dagra = use_dagra
        self._pe = sinusoidal_table(MAX_DEPTH, dim)
        #: constant rescaling of the add-pooled embedding: keeps the head's
        #: input O(1) for typical graph sizes so Xavier-initialized heads
        #: start in a trainable regime (the additive Eqn-2 structure is
        #: unchanged — this is a fixed scalar, not a mean pool)
        self.pool_scale = 0.02

    def forward(self, batch: Batch) -> Tensor:
        x = self.embed(Tensor(batch.features))
        if self.use_dagpe:
            depths = np.clip(batch.depths, 0, MAX_DEPTH - 1)
            x = x + Tensor(self._pe[depths])
        if self.use_dagra:
            if fastpath.enabled() and batch.attn_bias is not None:
                reach = batch.attn_bias  # precomputed additive mask
            else:
                reach = batch.reach
        elif fastpath.enabled():
            reach = batch.ablation_bias()
        else:  # ablation: full attention among real nodes
            reach = (batch.node_mask[:, None, :] > 0) | np.eye(
                batch.node_mask.shape[1], dtype=bool)[None]
        for layer in self.layers:
            x = layer(x, reach)
        x = x * Tensor(batch.node_mask[..., None])  # zero out padding
        g = global_add_pool(x, batch.node_mask) * self.pool_scale
        h = self.head1(g).relu()
        h = self.head2(h).relu()
        return self.out(h).reshape(-1)
