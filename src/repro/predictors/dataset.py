"""Stage-latency dataset: graphs + profiled targets, encoded for training.

Each sample is one profiled stage: Table-I node features, the DAGRA
reachability mask, DAGPE depths, the GCN-normalized adjacency, and the
measured latency.  Encodings are computed once per graph and cached on
the sample.

Targets are standardized by default (see :class:`Normalizer`); the raw
seconds are always kept on the batch so MRE (Eqn 5) is computed on the
original scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..ir.graph import Graph
from .encoding_cache import cached_encoding

#: additive-mask fill value for unreachable pairs; must match
#: ``repro.nn.layers._NEG`` so precomputed biases are bit-identical to
#: the per-forward ``np.where`` they replace
_NEG = np.float32(-1e9)


@dataclass
class StageSample:
    """One (stage graph, latency) training example."""

    graph: Graph
    latency: float
    stage_id: str = ""
    features: np.ndarray = field(default=None, repr=False)  # type: ignore
    reach: np.ndarray = field(default=None, repr=False)  # type: ignore
    depths: np.ndarray = field(default=None, repr=False)  # type: ignore
    adj: np.ndarray = field(default=None, repr=False)  # type: ignore
    adj_csr: sp.csr_matrix = field(default=None, repr=False)  # type: ignore

    def encode(self) -> "StageSample":
        if self.features is None:
            # encodings come from the process-wide cache keyed on the
            # canonical structural hash: structurally identical graphs
            # (across ensemble members, train fractions, grid cells)
            # share one frozen set of arrays.  The cache's fresh path
            # validates the graph first, exactly like the old inline code
            enc = cached_encoding(self.graph)
            self.features = enc.features
            self.reach = enc.reach
            self.depths = enc.depths
            self.adj = enc.adj
            if self.adj_csr is None:
                self.adj_csr = enc.adj_csr
        return self

    def sparse_adj(self) -> sp.csr_matrix:
        """CSR view of the normalized adjacency, computed once per sample."""
        if self.adj_csr is None:
            self.encode()
        if self.adj_csr is None:  # encodings were injected by hand
            self.adj_csr = sp.csr_matrix(self.adj)
        return self.adj_csr

    @property
    def n_nodes(self) -> int:
        return len(self.graph)


@dataclass
class Normalizer:
    """Feature standardization + target transform fit on the training split.

    Target transforms:

    * ``"scaled"`` (default) — latency divided by the training-set mean.
      Global add pooling makes the network's output naturally *additive*
      over nodes, which matches latency on a linear scale; scaling keeps
      targets O(1) for optimization.
    * ``"standard"`` — latency standardized by the training-set mean/std.
    * ``"log"`` — log-latency regression (relative-error flavored, but it
      breaks the additive pooling structure).
    * ``"raw"`` — plain seconds.
    """

    feat_mean: np.ndarray
    feat_std: np.ndarray
    target_transform: str = "scaled"
    target_scale: float = 1.0
    target_shift: float = 0.0

    @staticmethod
    def fit(samples: list[StageSample],
            target_transform: str = "scaled") -> "Normalizer":
        if not samples:
            raise ValueError("cannot fit a normalizer on an empty split")
        stacked = np.concatenate([s.encode().features for s in samples], axis=0)
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std < 1e-6] = 1.0
        scale, shift = 1.0, 0.0
        lats = np.array([s.latency for s in samples], np.float64)
        if target_transform == "scaled":
            scale = float(lats.mean()) or 1.0
        elif target_transform == "standard":
            shift = float(lats.mean())
            scale = float(lats.std()) or float(lats.mean()) or 1.0
        return Normalizer(mean.astype(np.float32), std.astype(np.float32),
                          target_transform, scale, shift)

    def features(self, sample: StageSample) -> np.ndarray:
        return (sample.encode().features - self.feat_mean) / self.feat_std

    def target(self, latency: float | np.ndarray) -> np.ndarray:
        y = np.asarray(latency, dtype=np.float32)
        if self.target_transform == "log":
            return np.log(np.maximum(y, 1e-9))
        if self.target_transform == "scaled":
            return y / self.target_scale
        if self.target_transform == "standard":
            return (y - self.target_shift) / self.target_scale
        return y

    def inverse(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float32)
        if self.target_transform == "log":
            return np.exp(y)
        if self.target_transform == "scaled":
            return y * self.target_scale
        if self.target_transform == "standard":
            return y * self.target_scale + self.target_shift
        return y


@dataclass
class DatasetSplit:
    train: list[StageSample]
    val: list[StageSample]
    test: list[StageSample]


def split_dataset(
    samples: list[StageSample],
    train_fraction: float,
    val_fraction: float = 0.1,
    seed: int = 0,
) -> DatasetSplit:
    """§VIII-A protocol: ``train_fraction`` train, 10 % val, rest test."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fractions must leave a test split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(samples))
    n_train = max(1, int(round(train_fraction * len(samples))))
    n_val = max(1, int(round(val_fraction * len(samples))))
    train = [samples[i] for i in order[:n_train]]
    val = [samples[i] for i in order[n_train:n_train + n_val]]
    test = [samples[i] for i in order[n_train + n_val:]]
    if not test:
        raise ValueError("no test samples left after splitting")
    return DatasetSplit(train, val, test)


def _block_diag_csr(csrs: list[sp.csr_matrix], n: int) -> sp.csr_matrix:
    """Block-diagonal CSR of per-sample adjacencies padded to ``n``×``n``.

    Equivalent to densifying each block and calling ``sp.block_diag``,
    but assembled directly from the cached per-sample CSR arrays: O(nnz)
    instead of O(B·n²).  Padding rows/columns (sample smaller than the
    bucket size ``n``) hold no entries, exactly like the zero rows of the
    dense construction.
    """
    B = len(csrs)
    total = sum(c.nnz for c in csrs)
    data = np.empty(total, np.float32)
    indices = np.empty(total, np.int64)
    indptr = np.empty(B * n + 1, np.int64)
    indptr[0] = 0
    pos = 0
    for j, c in enumerate(csrs):
        k, nnz = c.shape[0], c.nnz
        data[pos:pos + nnz] = c.data
        indices[pos:pos + nnz] = c.indices
        indices[pos:pos + nnz] += j * n
        row0 = j * n
        indptr[row0 + 1:row0 + k + 1] = c.indptr[1:]
        indptr[row0 + 1:row0 + k + 1] += pos
        indptr[row0 + k + 1:row0 + n + 1] = pos + nnz
        pos += nnz
    return sp.csr_matrix((data, indices, indptr), shape=(B * n, B * n))


@dataclass
class Batch:
    """Dense padded batch of graphs."""

    features: np.ndarray    # (B, N, F) normalized
    node_mask: np.ndarray   # (B, N) float32
    reach: np.ndarray       # (B, N, N) bool
    adj: np.ndarray         # (B, N, N) float32, GCN-normalized
    depths: np.ndarray      # (B, N) int64
    targets: np.ndarray     # (B,) transformed
    latencies: np.ndarray   # (B,) raw seconds
    #: block-diagonal CSR of the per-graph adjacencies, for sparse message
    #: passing on the flattened (B·N, F) layout
    adj_sparse: sp.csr_matrix = None
    #: precomputed additive DAGRA mask ``np.where(reach, 0, -1e9)`` with the
    #: head axis, (B, 1, N, N) float32 — built once here instead of on every
    #: attention layer of every epoch
    attn_bias: np.ndarray = field(default=None, repr=False)  # type: ignore
    _ablation_bias: np.ndarray = field(default=None, repr=False)  # type: ignore

    @property
    def size(self) -> int:
        return self.features.shape[0]

    def ablation_bias(self) -> np.ndarray:
        """Additive mask for the DAGRA-off ablation (full attention among
        real nodes), lazily built and cached per batch."""
        if self._ablation_bias is None:
            n = self.node_mask.shape[1]
            full = (self.node_mask[:, None, :] > 0) | np.eye(n, dtype=bool)[None]
            self._ablation_bias = np.where(full[:, None, :, :],
                                           np.float32(0.0), _NEG)
        return self._ablation_bias


def make_batches(
    samples: list[StageSample],
    normalizer: Normalizer,
    batch_size: int,
    bucket: bool = True,
) -> list[Batch]:
    """Pad samples into dense batches, bucketing by node count.

    Bucketing sorts by graph size before chunking, which keeps padding
    waste (and the O(N²) attention cost on it) low without changing the
    set of samples seen per epoch.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = sorted(samples, key=lambda s: s.encode().n_nodes) if bucket else samples
    batches: list[Batch] = []
    for i in range(0, len(order), batch_size):
        chunk = [s.encode() for s in order[i:i + batch_size]]
        n = max(s.n_nodes for s in chunk)
        B = len(chunk)
        F = chunk[0].features.shape[1]
        feats = np.zeros((B, n, F), np.float32)
        mask = np.zeros((B, n), np.float32)
        reach = np.zeros((B, n, n), bool)
        adj = np.zeros((B, n, n), np.float32)
        depths = np.zeros((B, n), np.int64)
        lats = np.zeros(B, np.float32)
        for j, s in enumerate(chunk):
            k = s.n_nodes
            feats[j, :k] = normalizer.features(s)
            mask[j, :k] = 1.0
            reach[j, :k, :k] = s.reach
            adj[j, :k, :k] = s.adj
            depths[j, :k] = s.depths
            lats[j] = s.latency
        # padding rows must attend somewhere to avoid NaNs: self-loops
        idx = np.arange(n)
        reach[:, idx, idx] = True
        attn_bias = np.where(reach[:, None, :, :], np.float32(0.0), _NEG)
        adj_sparse = _block_diag_csr([s.sparse_adj() for s in chunk], n)
        batches.append(Batch(feats, mask, reach, adj, depths,
                             normalizer.target(lats), lats, adj_sparse,
                             attn_bias=attn_bias))
    return batches
