"""Shared graph-encoding cache for the predictor hot path.

Every predictor fit re-derives the same per-graph encodings — Table-I
features, the DAGRA reachability closure, DAGPE depths, and the
GCN-normalized adjacency (dense + CSR).  A search grid touches each
distinct stage structure many times: once per ensemble member, per train
fraction, per grid cell.  Like :mod:`repro.parallel.plan_cache` does for
intra-op DP results, this module memoizes the encodings process-wide,
keyed on :func:`repro.ir.serialize.canonical_hash` — a name-free
structural digest, which is sound because none of the encoding arrays
depend on node *names*, only on ops/topology/shapes/params.

Cached arrays are frozen (``writeable=False``) and shared by reference
between all samples whose graphs are structurally identical; consumers
(batch construction, normalizers) only ever read them.  Disable with
``REPRO_ENCODING_CACHE=off`` — the fresh path computes the exact same
arrays with the exact same calls, so the cache is bit-transparent.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..ir.features import graph_features
from ..ir.graph import Graph
from ..ir.reachability import node_depths, reachability_mask, undirected_adjacency
from ..ir.serialize import canonical_hash


@dataclass(frozen=True)
class GraphEncoding:
    """Immutable per-structure encoding bundle.

    ``raw_features`` keeps the float64 output of :func:`graph_features`
    so trust-layer consumers (OOD statistics) see bit-identical inputs;
    ``features`` is the float32 cast the predictors train on.
    """

    raw_features: np.ndarray   # (N, F) float64, as graph_features returns
    features: np.ndarray       # (N, F) float32
    reach: np.ndarray          # (N, N) bool DAGRA closure
    depths: np.ndarray         # (N,) int64 DAGPE depths
    adj: np.ndarray            # (N, N) float32 GCN-normalized
    adj_csr: sp.csr_matrix     # CSR view of ``adj``


def compute_encoding(graph: Graph) -> GraphEncoding:
    """Fresh encoding bundle (validates the graph first, like encode())."""
    graph.validate()
    raw = graph_features(graph)
    feats = raw.astype(np.float32)
    reach = reachability_mask(graph)
    depths = node_depths(graph)
    adj = undirected_adjacency(graph).astype(np.float32)
    adj_csr = sp.csr_matrix(adj)
    for a in (raw, feats, reach, depths, adj):
        a.setflags(write=False)
    adj_csr.data.setflags(write=False)
    return GraphEncoding(raw, feats, reach, depths, adj, adj_csr)


@dataclass
class EncodingCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class EncodingCache:
    """In-process memo of graph encodings keyed by canonical hash.

    Thread-safe: the serving daemon's micro-batcher and executor threads
    hit this cache concurrently.  Lookups and inserts hold a lock;
    encoding computation runs outside it, so two threads racing on the
    same cold key may both compute — the bundles are value-identical and
    the second insert is a no-op, trading a rare duplicate encode for
    never serializing the hot path.
    """

    _entries: dict[str, GraphEncoding] = field(default_factory=dict)
    stats: EncodingCacheStats = field(default_factory=EncodingCacheStats)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False)

    def get(self, graph: Graph) -> GraphEncoding:
        key = canonical_hash(graph)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.stats.hits += 1
                return hit
            self.stats.misses += 1
        enc = compute_encoding(graph)
        with self._lock:
            return self._entries.setdefault(key, enc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = EncodingCacheStats()


_GLOBAL: EncodingCache | None = None


def global_encoding_cache() -> EncodingCache:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = EncodingCache()
    return _GLOBAL


def cached_encoding(graph: Graph) -> GraphEncoding:
    """Encoding through the global cache (``REPRO_ENCODING_CACHE=off`` gates)."""
    if os.environ.get("REPRO_ENCODING_CACHE", "").lower() == "off":
        return compute_encoding(graph)
    return global_encoding_cache().get(graph)
