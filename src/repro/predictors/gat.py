"""GAT baseline predictor (§VII-D): 6 GAT layers, hidden dim 32.

Implemented in edge-list (sparse) form, as real GAT implementations are:
attention logits exist only for actual edges, softmax is normalized per
destination node with a segment-sum, and messages are scatter-added.  DAG
stage graphs average ~2 edges per node, so this is orders of magnitude
cheaper than materializing dense ``(B, N, N)`` logits.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module, global_add_pool, xavier
from ..nn.tensor import Tensor, segment_sum, take_rows
from .dataset import Batch


class SparseGATLayer(Module):
    """One multi-head GAT layer over an explicit edge list."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator,
                 n_heads: int = 4) -> None:
        if d_out % n_heads:
            raise ValueError("n_heads must divide d_out")
        self.n_heads = n_heads
        self.head_dim = d_out // n_heads
        self.lin = Linear(d_in, d_out, rng, bias=False)
        self.a_src = Tensor(xavier(rng, self.head_dim, 1,
                                   (n_heads, self.head_dim)), requires_grad=True)
        self.a_dst = Tensor(xavier(rng, self.head_dim, 1,
                                   (n_heads, self.head_dim)), requires_grad=True)

    def forward(self, x: Tensor, rows: np.ndarray, cols: np.ndarray,
                n_nodes: int) -> Tensor:
        """``x`` is (n_nodes, d_in); edge e goes cols[e] -> rows[e]."""
        h, hd = self.n_heads, self.head_dim
        z = self.lin(x).reshape(n_nodes, h, hd)
        s_src = (z * self.a_src).sum(axis=-1)          # (n, h)
        s_dst = (z * self.a_dst).sum(axis=-1)
        e = (take_rows(s_dst, rows) + take_rows(s_src, cols)).leaky_relu()
        # per-destination softmax with a constant max-shift for stability
        shift = np.zeros((n_nodes,) + e.shape[1:], np.float32)
        np.maximum.at(shift, rows, e.data)
        ex = (e - Tensor(shift[rows])).exp()
        denom = segment_sum(ex, rows, n_nodes) + 1e-9
        alpha = ex / take_rows(denom, rows)            # (E, h)
        msg = take_rows(z, cols) * alpha.reshape(-1, h, 1)
        out = segment_sum(msg, rows, n_nodes)          # (n, h, hd)
        return out.reshape(n_nodes, h * hd)


class GATModel(Module):
    """Stacked sparse GAT -> global add pool -> MLP head."""

    def __init__(self, feature_dim: int, dim: int = 32, n_layers: int = 6,
                 n_heads: int = 4, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        dims = [feature_dim] + [dim] * n_layers
        self.convs = [SparseGATLayer(dims[i], dims[i + 1], rng, n_heads)
                      for i in range(n_layers)]
        self.head = Linear(dim, dim, rng)
        self.out = Linear(dim, 1, rng)
        self.pool_scale = 0.02

    def forward(self, batch: Batch) -> Tensor:
        B, N, F = batch.features.shape
        coo = batch.adj_sparse.tocoo()
        rows = coo.row
        cols = coo.col
        x = Tensor(batch.features).reshape(B * N, F)
        for conv in self.convs:
            x = conv(x, rows, cols, B * N).relu()
        x = x.reshape(B, N, -1) * Tensor(batch.node_mask[..., None])
        g = global_add_pool(x, batch.node_mask) * self.pool_scale
        return self.out(self.head(g).relu()).reshape(-1)
