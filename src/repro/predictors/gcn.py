"""GCN baseline predictor (§VII-D): 6 GCN layers of width 256.

Message passing runs on the flattened ``(B·N, F)`` layout against the
batch's block-diagonal sparse adjacency — DAG adjacencies average ~2
edges/node, so sparse propagation is orders of magnitude cheaper than a
dense batched ``adj @ x`` at width 256.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module, global_add_pool
from ..nn.tensor import Tensor, spmm
from .dataset import Batch


class GCNModel(Module):
    """Stacked GCN -> global add pool -> MLP head."""

    def __init__(self, feature_dim: int, dim: int = 256, n_layers: int = 6,
                 seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        dims = [feature_dim] + [dim] * n_layers
        self.lins = [Linear(dims[i], dims[i + 1], rng)
                     for i in range(n_layers)]
        self.head = Linear(dim, dim // 4, rng)
        self.out = Linear(dim // 4, 1, rng)
        self.pool_scale = 0.02

    def forward(self, batch: Batch) -> Tensor:
        B, N, F = batch.features.shape
        x = Tensor(batch.features).reshape(B * N, F)
        for lin in self.lins:
            x = spmm(batch.adj_sparse, lin(x)).relu()
        x = x.reshape(B, N, -1) * Tensor(batch.node_mask[..., None])
        g = global_add_pool(x, batch.node_mask) * self.pool_scale
        return self.out(self.head(g).relu()).reshape(-1)
