"""Prediction-quality metrics."""

from __future__ import annotations

import numpy as np


def mre(pred: np.ndarray, true: np.ndarray) -> float:
    """Mean relative error in percent (Eqn 5)."""
    pred = np.asarray(pred, dtype=np.float64)
    true = np.asarray(true, dtype=np.float64)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {true.shape}")
    if np.any(true <= 0):
        raise ValueError("true latencies must be positive")
    return float(np.mean(np.abs((pred - true) / true)) * 100.0)


def mean_absolute_error(pred: np.ndarray, true: np.ndarray) -> float:
    return float(np.mean(np.abs(np.asarray(pred) - np.asarray(true))))


def rmse(pred: np.ndarray, true: np.ndarray) -> float:
    d = np.asarray(pred, dtype=np.float64) - np.asarray(true, dtype=np.float64)
    return float(np.sqrt(np.mean(d * d)))
