"""Prediction-quality metrics.

All three metrics validate their inputs the same way: empty inputs and
shape mismatches raise ``ValueError`` instead of silently returning
``nan`` (``np.mean([])``) — a metric over nothing is a harness bug, not
a measurement.
"""

from __future__ import annotations

import numpy as np

#: floor for relative-error denominators: a profiled latency this close
#: to zero is numerically meaningless (real stage latencies are orders
#: of magnitude above it), so MRE divides by at least this much rather
#: than exploding
EPS_LATENCY = 1e-9


def _validated(pred, true) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    true = np.asarray(true, dtype=np.float64)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {true.shape}")
    if pred.size == 0:
        raise ValueError("cannot compute a metric over empty inputs")
    return pred, true


def mre(pred: np.ndarray, true: np.ndarray) -> float:
    """Mean relative error in percent (Eqn 5).

    Negative true latencies are rejected (they cannot come from a
    profiler); exact or near zeros are guarded with :data:`EPS_LATENCY`
    in the denominator so one degenerate measurement cannot turn the
    whole grid cell into ``inf``.
    """
    pred, true = _validated(pred, true)
    if np.any(true < 0):
        raise ValueError("true latencies must be non-negative")
    denom = np.maximum(true, EPS_LATENCY)
    return float(np.mean(np.abs((pred - true) / denom)) * 100.0)


def mean_absolute_error(pred: np.ndarray, true: np.ndarray) -> float:
    pred, true = _validated(pred, true)
    return float(np.mean(np.abs(pred - true)))


def rmse(pred: np.ndarray, true: np.ndarray) -> float:
    pred, true = _validated(pred, true)
    d = pred - true
    return float(np.sqrt(np.mean(d * d)))
