"""Persistence for trained predictors.

A fitted :class:`~repro.predictors.base.LatencyPredictor` is a (model
weights, normalizer, hyperparameter) triple; this module round-trips it
through a single ``.npz`` file so per-mesh predictors trained in the
PredTOP profiling/training phases can be reused across processes — the
moral equivalent of Alpa's on-disk profiling database, but for models.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from .base import LatencyPredictor, build_model
from .dataset import Normalizer

_META_KEY = "__predtop_meta__"
FORMAT_VERSION = 1


def save_predictor(predictor: LatencyPredictor, path: str | os.PathLike) -> Path:
    """Serialize a fitted predictor to ``path`` (.npz)."""
    if predictor.model is None or predictor.normalizer is None:
        raise ValueError("cannot save an unfitted predictor")
    norm = predictor.normalizer
    meta = {
        "version": FORMAT_VERSION,
        "kind": predictor.kind,
        "seed": predictor.seed,
        "target_transform": norm.target_transform,
        "target_scale": norm.target_scale,
        "target_shift": norm.target_shift,
        "model_overrides": predictor.model_overrides,
    }
    arrays = {f"param/{k}": v for k, v in predictor.model.state_dict().items()}
    arrays["norm/feat_mean"] = norm.feat_mean
    arrays["norm/feat_std"] = norm.feat_std
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_predictor(path: str | os.PathLike) -> LatencyPredictor:
    """Load a predictor previously written by :func:`save_predictor`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a saved PredTOP predictor")
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported predictor format {meta.get('version')}")
        state = {k.removeprefix("param/"): data[k]
                 for k in data.files if k.startswith("param/")}
        norm = Normalizer(
            feat_mean=data["norm/feat_mean"],
            feat_std=data["norm/feat_std"],
            target_transform=meta["target_transform"],
            target_scale=float(meta["target_scale"]),
            target_shift=float(meta["target_shift"]),
        )
    predictor = LatencyPredictor(meta["kind"], seed=int(meta["seed"]),
                                 target_transform=meta["target_transform"],
                                 model_overrides=meta["model_overrides"] or {})
    predictor.model = build_model(predictor.kind, seed=predictor.seed,
                                  **predictor.model_overrides)
    predictor.model.load_state_dict(state)
    predictor.normalizer = norm
    return predictor
