"""Training loop with early stopping (§IV-B6–B8) and crash-safe resume.

Protocol per the paper: Adam (β = 0.9/0.999), cosine LR decay from 1e-3 to
0 over the epoch budget, MAE loss (MSE available for the ablation), batch
size 32, up to 500 epochs with early stopping — training halts when the
validation loss has not improved for ``patience`` epochs and the weights
are reset to the best-performing snapshot.

Robustness additions on top of the paper's protocol:

* **divergence guard** — a non-finite train or val loss stops training
  immediately (NaN comparisons would otherwise defeat early stopping and
  burn the remaining budget), restores the best snapshot, and flags the
  run via ``TrainResult.diverged``;
* **epoch-level checkpointing** — ``checkpoint_path=`` atomically
  persists model weights, Adam moments, scheduler position, best
  snapshot, loss history, *and the numpy bit-generator state* after each
  epoch (tmp + fsync + rename, so a crash mid-write never publishes a
  torn checkpoint);
* **resume** — ``resume=True`` replays all of that state, so an
  interrupted-and-resumed run reproduces the uninterrupted run's losses,
  weights, and early-stopping decisions bit-for-bit (wall-clock time is
  accumulated across segments).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import faults
from ..nn.functional import mae, mse
from ..nn.layers import Module
from ..nn.optim import Adam, CosineDecay
from ..nn.tensor import Tensor, no_grad
from .dataset import Batch, Normalizer, StageSample, make_batches

# v2: fingerprint includes the model architecture (parameter names+shapes)
CHECKPOINT_VERSION = 2


@dataclass
class TrainConfig:
    """Hyperparameters (§IV-B6 defaults)."""

    epochs: int = 500
    batch_size: int = 32
    lr: float = 1e-3
    patience: int = 200
    loss: str = "mae"  # "mae" | "mse"
    early_stopping: bool = True
    #: linear LR warm-up over this fraction of the budget (0 = paper's
    #: plain cosine); small warm-ups stabilize the attention layers
    warmup_frac: float = 0.1
    seed: int = 0


@dataclass
class TrainResult:
    """History and bookkeeping of one training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = 0
    epochs_run: int = 0
    wall_seconds: float = 0.0
    stopped_early: bool = False
    #: training hit a non-finite loss and was stopped by the guard
    diverged: bool = False


def _loss_fn(name: str):
    if name == "mae":
        return mae
    if name == "mse":
        return mse
    raise ValueError(f"unknown loss {name!r}")


def evaluate_loss(model: Module, batches: list[Batch], loss_name: str) -> float:
    """Weighted average loss over ``batches`` (no gradients kept)."""
    fn = _loss_fn(loss_name)
    total, count = 0.0, 0
    with no_grad():
        for b in batches:
            pred = model(b)
            total += float(fn(pred, b.targets).data) * b.size
            count += b.size
    return total / max(count, 1)


# ------------------------------------------------------------- checkpointing
def _run_fingerprint(cfg: TrainConfig, n_train: int, n_val: int,
                     model: Module) -> str:
    """Identity of a training run; resuming a different run is an error.

    The model architecture (sorted parameter names + shapes) is part of
    the identity: resuming with a changed ``dim``/``n_layers`` must raise
    the intended "different training run" error up front instead of dying
    late with a confusing shape mismatch inside ``load_state_dict``.
    """
    arch = sorted((name, list(p.data.shape))
                  for name, p in model.named_parameters())
    return json.dumps({"epochs": cfg.epochs, "batch_size": cfg.batch_size,
                       "lr": cfg.lr, "patience": cfg.patience,
                       "loss": cfg.loss, "early": cfg.early_stopping,
                       "warmup": cfg.warmup_frac, "seed": cfg.seed,
                       "n_train": n_train, "n_val": n_val,
                       "arch": arch}, sort_keys=True)


def _reap_stale_tmps(path: Path) -> None:
    """Remove ``<name>.tmp<pid>`` orphans left by crashed writers.

    A crash between ``np.savez`` and ``os.replace`` strands the tmp file
    next to the checkpoint forever; sweep siblings whose writer pid is
    gone (live writers — including ourselves — are left alone)."""
    for tmp in path.parent.glob(path.name + ".tmp*"):
        try:
            pid = int(tmp.name[len(path.name) + 4:])
        except ValueError:
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                tmp.unlink()
            except OSError:
                pass
        except (PermissionError, OSError):
            pass  # pid alive (or unknowable): not ours to reap


def _save_checkpoint(path: Path, *, model: Module, opt: Adam,
                     sched: CosineDecay, rng: np.random.Generator,
                     result: TrainResult, best_val: float,
                     best_state: dict, epoch_next: int, elapsed: float,
                     fingerprint: str, done: bool = False) -> None:
    """Atomically persist full training state after an epoch."""
    meta = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "epoch_next": epoch_next,
        "adam_t": opt.t,
        "lr": opt.lr,
        "sched_epoch": sched.epoch,
        "rng_state": rng.bit_generator.state,
        "best_val": best_val,
        "best_epoch": result.best_epoch,
        "train_loss": result.train_loss,
        "val_loss": result.val_loss,
        "elapsed": elapsed,
        "done": done,
        "stopped_early": result.stopped_early,
        "diverged": result.diverged,
    }
    arrays: dict[str, np.ndarray] = {"meta": np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)}
    for name, value in model.state_dict().items():
        arrays[f"param::{name}"] = value
    for name, value in best_state.items():
        arrays[f"best::{name}"] = value
    for i, m in enumerate(opt.m):
        arrays[f"adam_m::{i}"] = m
    for i, v in enumerate(opt.v):
        arrays[f"adam_v::{i}"] = v
    _reap_stale_tmps(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _load_checkpoint(path: Path, fingerprint: str) -> dict | None:
    """Parsed checkpoint state, or ``None`` when absent/unreadable.

    A checkpoint from a *different* run configuration raises — silently
    grafting mismatched state would corrupt the result — while a
    missing or unreadable file simply means "start from scratch".
    """
    _reap_stale_tmps(path)
    if not path.is_file():
        return None
    try:
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays.pop("meta").tobytes()).decode())
    except Exception as exc:  # noqa: BLE001 - any damage ⇒ fresh start
        import warnings

        warnings.warn(f"ignoring unreadable checkpoint {path}: {exc}",
                      stacklevel=3)
        return None
    if meta.get("version") != CHECKPOINT_VERSION:
        import warnings

        warnings.warn(f"ignoring checkpoint {path} with version "
                      f"{meta.get('version')}", stacklevel=3)
        return None
    if meta.get("fingerprint") != fingerprint:
        raise ValueError(
            f"checkpoint {path} belongs to a different training run "
            f"(config/dataset fingerprint mismatch); refusing to resume")
    params = {name[len("param::"):]: value for name, value in arrays.items()
              if name.startswith("param::")}
    best = {name[len("best::"):]: value for name, value in arrays.items()
            if name.startswith("best::")}
    adam_m = [arrays[f"adam_m::{i}"]
              for i in range(sum(1 for n in arrays if n.startswith("adam_m::")))]
    adam_v = [arrays[f"adam_v::{i}"]
              for i in range(sum(1 for n in arrays if n.startswith("adam_v::")))]
    return {"meta": meta, "params": params, "best": best,
            "adam_m": adam_m, "adam_v": adam_v}


def train_model(
    model: Module,
    train_samples: list[StageSample],
    val_samples: list[StageSample],
    normalizer: Normalizer,
    cfg: TrainConfig | None = None,
    *,
    checkpoint_path: str | os.PathLike | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    fault_attempt: int = 0,
) -> TrainResult:
    """Train ``model`` in place; returns the loss history.

    With ``checkpoint_path`` set, full training state is persisted
    atomically every ``checkpoint_every`` epochs; ``resume=True`` picks
    up from the latest checkpoint (if any) and reproduces the
    uninterrupted run bit-for-bit.

    ``fault_attempt`` is the attempt coordinate the ``train_diverge``
    chaos site is consulted with: a retraining pass after a detected
    divergence passes ``1`` so default fault rules (first attempt only)
    let the retry converge, while ``attempts=*`` rules model a
    persistently diverging configuration.
    """
    cfg = cfg or TrainConfig()
    fn = _loss_fn(cfg.loss)
    rng = np.random.default_rng(cfg.seed)
    train_batches = make_batches(train_samples, normalizer, cfg.batch_size)
    val_batches = make_batches(val_samples, normalizer, cfg.batch_size)

    opt = Adam(model.parameters(), cfg.lr)
    sched = CosineDecay(opt, cfg.lr, cfg.epochs, cfg.warmup_frac)
    result = TrainResult()
    best_val = float("inf")
    best_state = model.state_dict()
    start_epoch = 0
    prior_elapsed = 0.0

    ckpt_path = Path(checkpoint_path) if checkpoint_path is not None else None
    fingerprint = _run_fingerprint(cfg, len(train_samples), len(val_samples),
                                   model)
    if resume and ckpt_path is not None:
        state = _load_checkpoint(ckpt_path, fingerprint)
        if state is not None:
            meta = state["meta"]
            if meta.get("done"):
                # the checkpointed run already finished: reproduce its
                # result instead of training past the recorded stop point
                model.load_state_dict(state["best"])
                result.train_loss = [float(x) for x in meta["train_loss"]]
                result.val_loss = [float(x) for x in meta["val_loss"]]
                result.best_epoch = int(meta["best_epoch"])
                result.stopped_early = bool(meta["stopped_early"])
                result.diverged = bool(meta["diverged"])
                result.epochs_run = len(result.train_loss)
                result.wall_seconds = float(meta["elapsed"])
                return result
            model.load_state_dict(state["params"])
            best_state = {k: v.astype(np.float32).copy()
                          for k, v in state["best"].items()}
            opt.t = int(meta["adam_t"])
            opt.lr = float(meta["lr"])
            for m, saved in zip(opt.m, state["adam_m"]):
                m[...] = saved
            for v, saved in zip(opt.v, state["adam_v"]):
                v[...] = saved
            sched.epoch = int(meta["sched_epoch"])
            rng.bit_generator.state = meta["rng_state"]
            result.train_loss = [float(x) for x in meta["train_loss"]]
            result.val_loss = [float(x) for x in meta["val_loss"]]
            result.best_epoch = int(meta["best_epoch"])
            best_val = float(meta["best_val"])
            start_epoch = int(meta["epoch_next"])
            prior_elapsed = float(meta["elapsed"])

    start = time.perf_counter()

    def _elapsed() -> float:
        return prior_elapsed + (time.perf_counter() - start)

    for epoch in range(start_epoch, cfg.epochs):
        order = rng.permutation(len(train_batches))
        epoch_loss, seen = 0.0, 0
        for bi in order:
            b = train_batches[bi]
            pred = model(b)
            loss = fn(pred, b.targets)
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += float(loss.data) * b.size
            seen += b.size
        sched.step()
        tl = epoch_loss / max(seen, 1)
        if faults.check("train_diverge", epoch, fault_attempt) is not None:
            tl = float("nan")
        result.train_loss.append(tl)

        vl = (evaluate_loss(model, val_batches, cfg.loss)
              if val_batches else result.train_loss[-1])
        result.val_loss.append(vl)
        finished = False
        if not (math.isfinite(tl) and math.isfinite(vl)):
            # NaN/inf defeats the < comparison below, so without this
            # guard a diverged run silently trains through every
            # remaining epoch; stop now and fall back to the best state
            result.diverged = True
            finished = True
        elif vl < best_val - 1e-9:
            best_val = vl
            result.best_epoch = epoch
            best_state = model.state_dict()
        elif (cfg.early_stopping
              and epoch - result.best_epoch >= cfg.patience):
            result.stopped_early = True
            finished = True
        if finished:
            break
        if (ckpt_path is not None
                and (epoch + 1) % max(1, checkpoint_every) == 0):
            _save_checkpoint(ckpt_path, model=model, opt=opt, sched=sched,
                             rng=rng, result=result, best_val=best_val,
                             best_state=best_state, epoch_next=epoch + 1,
                             elapsed=_elapsed(), fingerprint=fingerprint)

    model.load_state_dict(best_state)
    result.epochs_run = len(result.train_loss)
    result.wall_seconds = _elapsed()
    if ckpt_path is not None:
        # terminal checkpoint: a later resume= reproduces this result
        # instead of training past the recorded stop point
        _save_checkpoint(ckpt_path, model=model, opt=opt, sched=sched,
                         rng=rng, result=result, best_val=best_val,
                         best_state=best_state, epoch_next=cfg.epochs,
                         elapsed=result.wall_seconds,
                         fingerprint=fingerprint, done=True)
    return result
