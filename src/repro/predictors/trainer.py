"""Training loop with early stopping (§IV-B6–B8).

Protocol per the paper: Adam (β = 0.9/0.999), cosine LR decay from 1e-3 to
0 over the epoch budget, MAE loss (MSE available for the ablation), batch
size 32, up to 500 epochs with early stopping — training halts when the
validation loss has not improved for ``patience`` epochs and the weights
are reset to the best-performing snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..nn.functional import mae, mse
from ..nn.layers import Module
from ..nn.optim import Adam, CosineDecay
from ..nn.tensor import Tensor, no_grad
from .dataset import Batch, Normalizer, StageSample, make_batches


@dataclass
class TrainConfig:
    """Hyperparameters (§IV-B6 defaults)."""

    epochs: int = 500
    batch_size: int = 32
    lr: float = 1e-3
    patience: int = 200
    loss: str = "mae"  # "mae" | "mse"
    early_stopping: bool = True
    #: linear LR warm-up over this fraction of the budget (0 = paper's
    #: plain cosine); small warm-ups stabilize the attention layers
    warmup_frac: float = 0.1
    seed: int = 0


@dataclass
class TrainResult:
    """History and bookkeeping of one training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = 0
    epochs_run: int = 0
    wall_seconds: float = 0.0
    stopped_early: bool = False


def _loss_fn(name: str):
    if name == "mae":
        return mae
    if name == "mse":
        return mse
    raise ValueError(f"unknown loss {name!r}")


def evaluate_loss(model: Module, batches: list[Batch], loss_name: str) -> float:
    """Weighted average loss over ``batches`` (no gradients kept)."""
    fn = _loss_fn(loss_name)
    total, count = 0.0, 0
    with no_grad():
        for b in batches:
            pred = model(b)
            total += float(fn(pred, b.targets).data) * b.size
            count += b.size
    return total / max(count, 1)


def train_model(
    model: Module,
    train_samples: list[StageSample],
    val_samples: list[StageSample],
    normalizer: Normalizer,
    cfg: TrainConfig | None = None,
) -> TrainResult:
    """Train ``model`` in place; returns the loss history."""
    cfg = cfg or TrainConfig()
    fn = _loss_fn(cfg.loss)
    rng = np.random.default_rng(cfg.seed)
    train_batches = make_batches(train_samples, normalizer, cfg.batch_size)
    val_batches = make_batches(val_samples, normalizer, cfg.batch_size)

    opt = Adam(model.parameters(), cfg.lr)
    sched = CosineDecay(opt, cfg.lr, cfg.epochs, cfg.warmup_frac)
    result = TrainResult()
    best_val = float("inf")
    best_state = model.state_dict()
    start = time.perf_counter()

    for epoch in range(cfg.epochs):
        order = rng.permutation(len(train_batches))
        epoch_loss, seen = 0.0, 0
        for bi in order:
            b = train_batches[bi]
            pred = model(b)
            loss = fn(pred, b.targets)
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += float(loss.data) * b.size
            seen += b.size
        sched.step()
        result.train_loss.append(epoch_loss / max(seen, 1))

        vl = (evaluate_loss(model, val_batches, cfg.loss)
              if val_batches else result.train_loss[-1])
        result.val_loss.append(vl)
        if vl < best_val - 1e-9:
            best_val = vl
            result.best_epoch = epoch
            best_state = model.state_dict()
        elif (cfg.early_stopping
              and epoch - result.best_epoch >= cfg.patience):
            result.stopped_early = True
            break

    model.load_state_dict(best_state)
    result.epochs_run = len(result.train_loss)
    result.wall_seconds = time.perf_counter() - start
    return result
