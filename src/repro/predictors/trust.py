"""Gray-box trust layer: guarded stage-latency predictions.

PredTOP replaces exhaustive stage profiling with black-box predictions
inside the plan search — which is only sound while those predictions are
*detectably* good.  This module turns every raw prediction into a guarded
one:

* **uncertainty** — a small deep ensemble (:class:`EnsemblePredictor`:
  K independently-seeded fits of the same architecture) whose spread
  flags predictions the model family itself cannot agree on;
* **OOD detection** — per-feature ranges of the training corpus are
  recorded at fit time (:class:`FeatureStats`); a query graph whose node
  features fall outside those ranges is outside the sampled training
  distribution and its prediction is suspect regardless of confidence;
* **physical-bounds guards** — the calibrated roofline sum from
  :mod:`repro.predictors.analytical` bounds any physically plausible
  stage latency to ``[analytical/α, analytical·α]``; predictions outside
  the envelope are clamped and flagged (:func:`assess`);
* **escalation bookkeeping** — :class:`TrustStats` records every
  decision so search results and ``repro bench report`` can show how
  often the model was trusted, clamped, or escalated to the analytical
  predictor / re-profiling.

The layer is opt-in (``REPRO_TRUST=1``; :meth:`TrustConfig.from_env`).
With it disabled — the default — the prediction path is bit-identical to
the unguarded one, and an ensemble of size 1 *is* the plain single
predictor (member 0 always uses the caller's exact seed and config).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

import numpy as np

from ..ir.graph import Graph
from .base import LatencyPredictor, build_model
from .dataset import Normalizer, StageSample
from .encoding_cache import cached_encoding
from .trainer import TrainConfig, TrainResult

#: physical-bounds envelope factor: ground truth stays within this factor
#: of the calibrated analytical estimate across the fast-profile corpus
#: (pinned by ``tests/test_analytical_bounds.py``)
DEFAULT_ALPHA = 8.0

#: seed offset for retraining after a detected divergence ("fresh seed")
RETRY_SEED_OFFSET = 1009

#: verdicts :func:`assess` can reach, most severe first
VERDICTS = ("invalid", "ood", "uncertain", "out_of_bounds", "trusted")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "on", "true",
                                                        "yes")


def _env_float(name: str, default: float) -> float:
    env = os.environ.get(name, "")
    if not env:
        return default
    try:
        return float(env)
    except ValueError:
        raise ValueError(f"{name}={env!r} is not a number") from None


@dataclass(frozen=True)
class TrustConfig:
    """Knobs of the trust layer (all overridable via ``REPRO_TRUST_*``)."""

    #: guard predictions at all (``REPRO_TRUST``); disabled keeps the
    #: prediction path bit-identical to the unguarded implementation
    enabled: bool = False
    #: deep-ensemble size K (``REPRO_TRUST_ENSEMBLE``)
    ensemble_size: int = 3
    #: physical-bounds envelope factor α (``REPRO_TRUST_ALPHA``)
    alpha: float = DEFAULT_ALPHA
    #: suspect when ensemble std exceeds this fraction of the mean
    #: (``REPRO_TRUST_CV``)
    cv_threshold: float = 0.5
    #: suspect when this fraction of feature values is out of the
    #: training ranges (``REPRO_TRUST_OOD``)
    ood_threshold: float = 0.25
    #: simulated profiling seconds the escalation policy may spend
    #: re-profiling suspect predictions (``REPRO_TRUST_BUDGET``; 0 =
    #: suspect predictions fall back to the analytical estimate only)
    budget: float = 0.0

    def __post_init__(self) -> None:
        if self.ensemble_size < 1:
            raise ValueError("ensemble_size must be >= 1")
        if self.alpha <= 1.0:
            raise ValueError("alpha must be > 1 (a multiplicative envelope)")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")

    @staticmethod
    def from_env() -> "TrustConfig":
        return TrustConfig(
            enabled=_env_flag("REPRO_TRUST"),
            ensemble_size=max(1, int(_env_float("REPRO_TRUST_ENSEMBLE", 3))),
            alpha=_env_float("REPRO_TRUST_ALPHA", DEFAULT_ALPHA),
            cv_threshold=_env_float("REPRO_TRUST_CV", 0.5),
            ood_threshold=_env_float("REPRO_TRUST_OOD", 0.25),
            budget=_env_float("REPRO_TRUST_BUDGET", 0.0),
        )


# ------------------------------------------------------------ OOD detection
@dataclass
class FeatureStats:
    """Per-feature ranges of the training corpus, recorded at fit time."""

    lo: np.ndarray
    hi: np.ndarray
    n_nodes_lo: int
    n_nodes_hi: int
    #: tolerance widening each range by this fraction of its span
    margin: float = 0.1

    @staticmethod
    def fit(graphs: list[Graph], margin: float = 0.1) -> "FeatureStats":
        if not graphs:
            raise ValueError("cannot record feature stats of an empty corpus")
        # raw (float64) features through the shared encoding cache — the
        # same graphs are encoded again for training right after this
        stacked = np.concatenate([cached_encoding(g).raw_features
                                  for g in graphs], axis=0)
        sizes = [len(g) for g in graphs]
        return FeatureStats(stacked.min(axis=0), stacked.max(axis=0),
                            min(sizes), max(sizes), margin)

    def ood_score(self, graph: Graph) -> float:
        """Fraction of the graph's nodes with any feature value outside
        the recorded ranges (1.0 when the graph size itself is far out
        of range).

        Aggregating per *node* rather than per value matters: most
        feature dimensions are one-hot or zero for most nodes, so a
        graph full of alien operators would still have a tiny fraction
        of out-of-range *values* — but every one of its nodes trips at
        least one dimension.
        """
        n = len(graph)
        if n == 0:
            return 1.0
        if n < self.n_nodes_lo / 2 or n > self.n_nodes_hi * 2:
            return 1.0
        feats = cached_encoding(graph).raw_features
        tol = self.margin * (self.hi - self.lo) + 1e-9
        outside = (feats < self.lo - tol) | (feats > self.hi + tol)
        return float(outside.any(axis=1).mean())

    def ood_scores(self, graphs: list[Graph]) -> np.ndarray:
        """Vector of :meth:`ood_score` over a list of query graphs."""
        return np.array([self.ood_score(g) for g in graphs], np.float64)


# ---------------------------------------------------------------- ensembles
def _normalizers_equal(a: Normalizer | None, b: Normalizer | None) -> bool:
    """Value equality of two fitted normalizers (shared-batch precondition)."""
    return (a is not None and b is not None
            and a.target_transform == b.target_transform
            and a.target_scale == b.target_scale
            and a.target_shift == b.target_shift
            and np.array_equal(a.feat_mean, b.feat_mean)
            and np.array_equal(a.feat_std, b.feat_std))


@dataclass
class EnsembleFitResult:
    """Bookkeeping of one ensemble fit."""

    results: list[TrainResult] = field(default_factory=list)
    #: members whose first fit diverged and were refit with a fresh seed
    retrained: int = 0
    #: members dropped because the retrained fit diverged too
    dropped: int = 0

    @property
    def wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.results)

    @property
    def degraded(self) -> bool:
        """True when no healthy member survived — callers must fall back
        to the analytical predictor."""
        return self.dropped >= len(self.results) and bool(self.results)


class EnsemblePredictor:
    """K independently-seeded :class:`LatencyPredictor` fits.

    Member ``i`` uses model seed ``seed + i`` and training seed
    ``cfg.seed + i``; member 0 therefore reproduces a plain single
    predictor bit-for-bit, so an ensemble of size 1 is a zero-cost
    drop-in.  Fits reuse the trainer's checkpoint/resume machinery —
    member ``i`` checkpoints to ``<path>.k<i>`` — so interrupted
    ensembles resume bit-reproducibly.

    A member whose training diverges (non-finite loss) is refit once
    with a fresh seed (``+ RETRY_SEED_OFFSET``); if that fit diverges
    too the member is dropped from the ensemble.
    """

    def __init__(self, kind: str = "dag_transformer", seed: int = 0,
                 size: int = 3) -> None:
        if size < 1:
            raise ValueError("ensemble size must be >= 1")
        self.kind = kind
        self.seed = seed
        self.size = size
        self.members: list[LatencyPredictor] = []
        self.feature_stats: FeatureStats | None = None
        self.fit_result: EnsembleFitResult | None = None

    @classmethod
    def from_members(cls, members: list[LatencyPredictor],
                     feature_stats: FeatureStats | None = None,
                     ) -> "EnsemblePredictor":
        """Wrap already-fitted predictors (e.g. loaded checkpoints) into
        an ensemble — the serving daemon's load path.

        The members must be fitted; ``feature_stats`` (for OOD scoring)
        can be recorded separately from any representative corpus.
        """
        if not members:
            raise ValueError("need at least one fitted member")
        for m in members:
            if m.model is None or m.normalizer is None:
                raise ValueError("every ensemble member must be fitted")
        out = cls(members[0].kind, seed=members[0].seed, size=len(members))
        out.members = list(members)
        out.feature_stats = feature_stats
        return out

    def fit(
        self,
        train: list[StageSample],
        val: list[StageSample],
        cfg: TrainConfig | None = None,
        *,
        checkpoint_path: str | None = None,
        resume: bool = False,
        retrain_on_divergence: bool = True,
        jobs: int | None = None,
    ) -> EnsembleFitResult:
        """Fit all K members, fanned across the engine's worker pool.

        Members are seeded independently and trained in isolation, so
        the fan-out is bit-identical to the serial loop; ``jobs``
        defaults to the engine's ``REPRO_JOBS`` resolution (serial for
        one member, inside a worker, or when ``REPRO_JOBS=1``).  The
        serial path runs fully in-process and keeps the live fitted
        members — no pool, no state-dict round-trip — so a 1-core
        ensemble fit costs exactly K single-predictor fits.
        """
        from ..experiments.engine import n_jobs, parallel_map

        cfg = cfg or TrainConfig(seed=self.seed)
        self.feature_stats = FeatureStats.fit(
            [s.graph for s in list(train) + list(val)])
        # warm every shared encoding once in the parent so forked member
        # fits inherit them instead of recomputing K times
        for s in list(train) + list(val):
            s.encode()
            s.sparse_adj()

        eff_jobs = n_jobs() if jobs is None else max(1, jobs)
        serial = min(eff_jobs, self.size) <= 1

        def _fit_member(i: int):
            member = LatencyPredictor(self.kind, seed=self.seed + i)
            # member 0 keeps the caller's exact seed, config, and
            # checkpoint path, so a size-1 ensemble IS the plain
            # single-predictor fit, resumable from the same file
            mcfg = cfg if i == 0 else replace(cfg, seed=cfg.seed + i)
            mpath = (checkpoint_path if i == 0 or checkpoint_path is None
                     else f"{checkpoint_path}.k{i}")
            result = member.fit(train, val, mcfg, checkpoint_path=mpath,
                                resume=resume)
            retrained = 0
            if result.diverged and retrain_on_divergence:
                retrained = 1
                member = LatencyPredictor(
                    self.kind, seed=self.seed + i + RETRY_SEED_OFFSET)
                retry_path = None if mpath is None else f"{mpath}.retry"
                retry_cfg = replace(mcfg, seed=mcfg.seed + RETRY_SEED_OFFSET)
                retry = member.fit(train, val, retry_cfg,
                                   checkpoint_path=retry_path, resume=resume,
                                   fault_attempt=1)
                retry.wall_seconds += result.wall_seconds
                result = retry
            if result.diverged:
                return None, result, retrained
            if serial:
                # in-process: the live member is the product, as-is
                member.train_result = result
                return member, result, retrained
            # workers return plain picklable state (Tensor closures are
            # not); the parent reconstructs the member deterministically
            state = (member.seed, member.model.state_dict(),
                     member.normalizer)
            return state, result, retrained

        if serial:
            fitted = [_fit_member(i) for i in range(self.size)]
        else:
            fitted = parallel_map(_fit_member, list(range(self.size)),
                                  eff_jobs)
        out = EnsembleFitResult()
        self.members = []
        for payload, result, retrained in fitted:
            out.retrained += retrained
            if payload is None:
                out.dropped += 1
            elif isinstance(payload, LatencyPredictor):
                self.members.append(payload)
            else:
                seed, weights, normalizer = payload
                member = LatencyPredictor(self.kind, seed=seed)
                member.normalizer = normalizer
                member.model = build_model(self.kind, seed=seed)
                member.model.load_state_dict(weights)
                member.train_result = result
                self.members.append(member)
            out.results.append(result)
        self.fit_result = out
        return out

    def predict_graphs(self, graphs: list[Graph]
                       ) -> tuple[np.ndarray, np.ndarray]:
        """(mean, std) of the healthy members' predictions, in seconds."""
        preds = self._member_predictions(graphs)
        return preds.mean(axis=0), preds.std(axis=0)

    def predict_many(self, graphs: list[Graph]
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, std, ood) for all pending graphs in one batched pass.

        Batch construction is shared across members (their normalizers
        are value-identical — deterministic fits on the same train
        split), so the padded batches are built once instead of K times;
        predictions are bit-identical to per-member
        :meth:`predict_graphs`.  OOD scores reuse the cached encodings.
        """
        preds = self._member_predictions(graphs)
        ood = (self.feature_stats.ood_scores(graphs)
               if self.feature_stats is not None
               else np.zeros(len(graphs)))
        return preds.mean(axis=0), preds.std(axis=0), ood

    def _member_predictions(self, graphs: list[Graph]) -> np.ndarray:
        """(K, n) member predictions with one shared batch construction."""
        if not self.members:
            raise RuntimeError(
                "ensemble has no healthy members (not fitted, or every "
                "member diverged — fall back to the analytical predictor)")
        first = self.members[0]
        if not graphs or any(not _normalizers_equal(first.normalizer,
                                                    m.normalizer)
                             for m in self.members[1:]):
            # hand-built members with differing normalizers (or nothing
            # to predict): the per-member path is the oracle
            return np.stack([m.predict_graphs(graphs)
                             for m in self.members])
        samples = [StageSample(g, latency=1.0) for g in graphs]
        order, batches = first._ordered_batches(samples, 32)
        idx = np.asarray(order)
        rows = []
        for m in self.members:
            flat = m._forward_batches(batches)
            row = np.empty(len(samples), np.float32)
            row[idx] = flat
            rows.append(np.maximum(row, 1e-6))
        return np.stack(rows)


# ------------------------------------------------------------------- guards
@dataclass(frozen=True)
class GuardedPrediction:
    """One prediction after the uncertainty / OOD / bounds guards."""

    #: guard-adjusted value (clamped into the envelope when flagged)
    value: float
    #: the raw ensemble mean
    raw: float
    #: ensemble standard deviation
    std: float
    #: OOD score of the query graph in [0, 1]
    ood: float
    #: physical-bounds envelope [lower, upper]
    lower: float
    upper: float
    #: one of :data:`VERDICTS`
    verdict: str

    @property
    def trusted(self) -> bool:
        return self.verdict == "trusted"


def assess(raw: float, std: float, ood: float, analytical: float,
           cfg: TrustConfig) -> GuardedPrediction:
    """Run one raw prediction through the three guards.

    Severity order: a non-finite/non-positive value is ``invalid``; an
    out-of-distribution query is ``ood``; an ensemble that cannot agree
    is ``uncertain``; a value outside the physical envelope is
    ``out_of_bounds``; everything else is ``trusted``.  Flagged values
    are clamped into ``[analytical/α, analytical·α]`` so even a caller
    without an escalation path never consumes a physically impossible
    number.
    """
    lower = analytical / cfg.alpha
    upper = analytical * cfg.alpha
    raw_f = float(raw)
    finite = math.isfinite(raw_f) and raw_f > 0.0
    if not finite:
        verdict = "invalid"
    elif ood > cfg.ood_threshold:
        verdict = "ood"
    elif std > cfg.cv_threshold * raw_f:
        verdict = "uncertain"
    elif not (lower <= raw_f <= upper):
        verdict = "out_of_bounds"
    else:
        verdict = "trusted"
    if verdict == "trusted":
        value = raw_f
    else:
        value = min(max(raw_f if finite else analytical, lower), upper)
    return GuardedPrediction(value, raw_f, float(std), float(ood),
                             lower, upper, verdict)


# ------------------------------------------------------------------- stats
@dataclass
class TrustStats:
    """Decision accounting for one guarded prediction pass."""

    total: int = 0
    trusted: int = 0
    invalid: int = 0
    ood: int = 0
    uncertain: int = 0
    out_of_bounds: int = 0
    #: suspect predictions replaced by an exact re-profile
    escalated_profiled: int = 0
    #: suspect predictions replaced by the analytical estimate
    escalated_analytical: int = 0
    #: diverged fits retrained with a fresh seed
    retrained: int = 0
    #: predictors that failed wholesale (threw, or diverged twice) and
    #: were replaced by the analytical predictor
    degraded: int = 0
    #: simulated profiling seconds spent by the escalation policy
    budget_spent: float = 0.0

    def record(self, guarded: GuardedPrediction) -> None:
        self.total += 1
        setattr(self, guarded.verdict,
                getattr(self, guarded.verdict) + 1)

    @property
    def suspect(self) -> int:
        return self.invalid + self.ood + self.uncertain + self.out_of_bounds

    def merge(self, other: "TrustStats") -> None:
        for f in ("total", "trusted", "invalid", "ood", "uncertain",
                  "out_of_bounds", "escalated_profiled",
                  "escalated_analytical", "retrained", "degraded"):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.budget_spent += other.budget_spent

    def as_dict(self) -> dict:
        return {
            "total": self.total, "trusted": self.trusted,
            "invalid": self.invalid, "ood": self.ood,
            "uncertain": self.uncertain,
            "out_of_bounds": self.out_of_bounds,
            "escalated_profiled": self.escalated_profiled,
            "escalated_analytical": self.escalated_analytical,
            "retrained": self.retrained, "degraded": self.degraded,
            "budget_spent": round(self.budget_spent, 3),
        }

    def summary(self) -> str:
        if self.total == 0 and not (self.degraded or self.retrained):
            return "trust: no guarded predictions"
        return (f"trust: {self.trusted}/{self.total} trusted, "
                f"{self.suspect} suspect "
                f"(invalid {self.invalid}, ood {self.ood}, "
                f"uncertain {self.uncertain}, "
                f"out-of-bounds {self.out_of_bounds}); "
                f"escalated {self.escalated_profiled} profiled / "
                f"{self.escalated_analytical} analytical "
                f"({self.budget_spent:.1f}s budget), "
                f"{self.retrained} retrained, {self.degraded} degraded")
