"""Runtime simulation: op costs, stage execution, pipeline schedules."""

from .executor import StageProfile, execute_plan
from .noise import NOISE_SIGMA, measurement_factor, stable_seed
from .opcost import graph_bytes, graph_flops, op_time
from .pipeline import (
    PipelineEvent,
    PipelineSchedule,
    PipelineSimulator,
    event_sort_key,
    simulated_latency,
    whitebox_latency,
)
from .profiler import ProfiledStage, StageProfiler, profiling_cost
from .schedules import (
    ScheduleSpec,
    WorkItem,
    get_schedule,
    register_schedule,
    schedule_names,
    simulate_items,
)

__all__ = [
    "op_time", "graph_flops", "graph_bytes",
    "StageProfile", "execute_plan",
    "measurement_factor", "stable_seed", "NOISE_SIGMA",
    "whitebox_latency", "simulated_latency", "PipelineSimulator",
    "PipelineSchedule", "PipelineEvent", "event_sort_key",
    "ScheduleSpec", "WorkItem", "simulate_items",
    "get_schedule", "register_schedule", "schedule_names",
    "StageProfiler", "ProfiledStage", "profiling_cost",
]
