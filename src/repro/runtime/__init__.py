"""Runtime simulation: op costs, stage execution, pipeline schedules."""

from .executor import StageProfile, execute_plan
from .noise import NOISE_SIGMA, measurement_factor, stable_seed
from .opcost import graph_bytes, graph_flops, op_time
from .pipeline import (
    PipelineSchedule,
    PipelineSimulator,
    simulated_latency,
    whitebox_latency,
)
from .profiler import ProfiledStage, StageProfiler, profiling_cost

__all__ = [
    "op_time", "graph_flops", "graph_bytes",
    "StageProfile", "execute_plan",
    "measurement_factor", "stable_seed", "NOISE_SIGMA",
    "whitebox_latency", "simulated_latency", "PipelineSimulator",
    "PipelineSchedule",
    "StageProfiler", "ProfiledStage", "profiling_cost",
]
