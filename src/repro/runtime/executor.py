"""Stage executor: authoritative simulated latency of an intra-op plan.

Executes the plan's nodes in topological order on a single device stream
(how XLA programs run per device), charging:

* per-node kernel time under the assigned work division;
* collectives emitted by strategies (row-parallel / gradient all-reduce);
* resharding collectives on edges whose endpoint shardings disagree
  (edges out of leaves are free — parameters are laid out at compile time).

The total is scaled by the deterministic measurement-noise factor keyed on
(stage, mesh) so repeated "profiling" of the same configuration returns
the same value, like a warmed-up median measurement would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.intra_op import IntraOpPlan
from ..parallel.resharding import reshard_cache
from ..parallel.sharding import spec_id
from .noise import measurement_factor
from .opcost import op_time_cached


@dataclass(frozen=True)
class StageProfile:
    """One simulated stage measurement."""

    latency: float          # seconds, noise included
    compute_time: float     # kernel time (no collectives)
    comm_time: float        # strategy collectives
    reshard_time: float     # edge resharding collectives
    memory_bytes: float     # peak per-device memory estimate
    n_nodes: int

    @property
    def comm_fraction(self) -> float:
        total = self.compute_time + self.comm_time + self.reshard_time
        return (self.comm_time + self.reshard_time) / total if total else 0.0


#: bytes per trainable parameter element held on-device during training
#: (fp32 weight + gradient + two Adam moments)
TRAIN_STATE_BYTES_PER_PARAM = 16


def execute_plan(plan: IntraOpPlan, noise: bool = True) -> StageProfile:
    """Simulate one execution of ``plan`` and return its profile.

    Per-node kernel times and per-edge reshard costs are gathered through
    the memoized cost tables (``op_time_cached``, the per-mesh
    :class:`~repro.parallel.resharding.ReshardCache`) and reduced with
    Python's left-to-right ``sum`` — the identical sequence of float adds
    as a running accumulator, so totals stay bit-identical to the original
    formulation (the golden ``results/fast`` artifacts pin them).
    """
    graph, mesh = plan.graph, plan.mesh
    gpu = mesh.gpu
    rcache = reshard_cache(mesh)
    compute_terms: list[float] = []
    comm_terms: list[float] = []
    reshard_terms: list[float] = []
    param_bytes = 0.0
    act_bytes = 0.0

    for node in graph.nodes:
        assign = plan.assignments[node.id]
        strat = assign.strategy
        if node.node_type == "operator":
            in_specs = [graph.nodes[i].out for i in node.inputs]
            compute_terms.append(
                op_time_cached(node, in_specs, gpu, float(strat.factor)))
            comm_terms.append(strat.comm_time)
            is_forward = not (node.name.startswith("grad")
                              or node.name.startswith("adam")
                              or node.name == "loss")
            if is_forward:
                act_bytes += node.out.nbytes / max(1, strat.out.shard_factor(mesh))
        elif node.node_type == "literal" and node.params.get("trainable"):
            local = strat.out.local_bytes(node.out, mesh)
            param_bytes += local / node.out.dtype.itemsize * TRAIN_STATE_BYTES_PER_PARAM

        # edge resharding
        for slot, pid in enumerate(node.inputs):
            pnode = graph.nodes[pid]
            if pnode.node_type in ("input", "literal"):
                continue
            if slot >= len(strat.ins):
                continue
            src = plan.assignments[pid].out_spec
            dst = strat.ins[slot]
            reshard_terms.append(
                rcache.time(spec_id(src), spec_id(dst), pnode.out.nbytes))

    compute = sum(compute_terms, 0.0)
    comm = sum(comm_terms, 0.0)
    reshard = sum(reshard_terms, 0.0)
    total = compute + comm + reshard
    if noise:
        total *= measurement_factor(graph.name, mesh.key())
    # activations for the backward pass are the dominant transient; keep a
    # conservative half of the forward outputs as live working set
    memory = param_bytes + 0.5 * act_bytes
    return StageProfile(
        latency=total,
        compute_time=compute,
        comm_time=comm,
        reshard_time=reshard,
        memory_bytes=memory,
        n_nodes=len(graph),
    )
