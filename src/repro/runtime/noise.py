"""Deterministic measurement noise.

Real profiled latencies include device-specific systematic effects the
cost model does not capture (clock behaviour, cache state, allocator
layout).  We model them as a multiplicative log-normal factor drawn from a
generator seeded by a stable hash of the measurement identity (stage name,
mesh, configuration) — *deterministic* so experiments are reproducible,
*unpredictable from node features* so predictors face an honest error
floor (~σ = 1.5 %, putting the best attainable MRE near the paper's
1.3–2 % DAG-Transformer results).
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Log-scale standard deviation of the measurement factor.
NOISE_SIGMA = 0.015


def stable_seed(*parts: object) -> int:
    """64-bit seed from a stable hash of the identity parts."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def measurement_factor(*parts: object, sigma: float = NOISE_SIGMA) -> float:
    """Multiplicative noise factor for one measurement identity."""
    rng = np.random.default_rng(stable_seed(*parts))
    return float(np.exp(rng.normal(0.0, sigma)))
