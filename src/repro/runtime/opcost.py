"""Per-operator device-time model (roofline with GPU-specific effects).

For one operator executing on one GPU, the kernel time is

``t = launch_overhead + max(t_compute, t_memory)``

* ``t_compute = flops / (peak_flops · efficiency)`` — efficiency for
  contractions models tile quantization and occupancy
  (:meth:`repro.cluster.gpu.GPUSpec.matmul_efficiency`); other categories
  run at a fixed fraction of peak;
* ``t_memory = bytes / achieved_bandwidth`` — streaming kernels rarely
  reach peak DRAM bandwidth at small sizes
  (:meth:`~repro.cluster.gpu.GPUSpec.elementwise_bandwidth`).

This is the "profiler" the reproduction substitutes for real hardware: it
is deterministic, shape-sensitive, and nonlinear in ways a latency
predictor must actually learn (launch-bound small ops, bandwidth-bound
elementwise ops, efficiency cliffs on skinny GEMMs).
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.gpu import GPUSpec
from ..ir.graph import Node, TensorSpec
from ..ir.ops import node_bytes, node_flops, op_def

#: Fraction of peak FLOP/s reached by non-GEMM categories (compute side).
_CATEGORY_EFFICIENCY = {
    "elementwise": 0.50,
    "reduction": 0.40,
    "data_movement": 1.0,  # no flops anyway
    "gather_scatter": 0.25,
    "contraction": 1.0,  # replaced by matmul_efficiency
}


def _gemm_dims(node: Node, ins: Sequence[TensorSpec]) -> tuple[int, int, int]:
    """(m, n, k) of a dot_general, folding batch dims into m."""
    k = int(node.params.get("contract", 1))
    n = node.out.shape[-1] if node.out.shape else 1
    m = max(1, node.out.size // max(1, n))
    return m, n, k


def op_time(
    node: Node,
    input_specs: Sequence[TensorSpec],
    gpu: GPUSpec,
    shard_factor: float = 1.0,
) -> float:
    """Seconds to execute ``node`` on ``gpu``.

    ``shard_factor`` divides the work (flops *and* bytes) when the operator
    is partitioned over that many devices; the per-kernel overheads are
    *not* divided — exactly why over-sharding small ops stops paying off.
    """
    if node.node_type != "operator":
        return 0.0
    if shard_factor < 1.0:
        raise ValueError(f"shard_factor must be >= 1, got {shard_factor}")
    flops = node_flops(node, input_specs) / shard_factor
    nbytes = node_bytes(node, input_specs) / shard_factor

    category = op_def(node.op).category
    if node.op == "dot_general":
        m, n, k = _gemm_dims(node, input_specs)
        # shard the dominant output dim for the efficiency estimate
        m_eff = max(1, int(m / shard_factor))
        eff = gpu.matmul_efficiency(m_eff, n, k)
    else:
        eff = _CATEGORY_EFFICIENCY[category]

    t_compute = flops / (gpu.peak_flops * eff) if flops else 0.0
    t_memory = nbytes / gpu.elementwise_bandwidth(nbytes) if nbytes else 0.0
    return gpu.launch_overhead + max(t_compute, t_memory)


# ------------------------------------------------------------- memoization

def _freeze(value):
    """Hashable view of an operator-params value (defensive on containers)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


def node_cost_key(node: Node, input_specs: Sequence[TensorSpec]) -> tuple:
    """Structural key covering every input :func:`op_time` reads.

    Two nodes with the same op, output/input shapes+dtypes, and operator
    params cost the same on a given GPU at a given shard factor — node ids
    and labels are irrelevant, so structurally identical nodes across
    stage slices (and across grid cells) share one cached kernel time.
    """
    return (node.op, node.out.shape, node.out.dtype.name,
            tuple((s.shape, s.dtype.name) for s in input_specs),
            _freeze(node.params))


_OP_TIME_CACHE: dict[tuple, float] = {}


def op_time_cached(
    node: Node,
    input_specs: Sequence[TensorSpec],
    gpu: GPUSpec,
    shard_factor: float = 1.0,
    key: tuple | None = None,
) -> float:
    """:func:`op_time` memoized by ``(structural key, gpu, factor)``.

    Callers that evaluate many shard factors for one node should compute
    :func:`node_cost_key` once and pass it as ``key``.
    """
    if node.node_type != "operator":
        return 0.0
    if key is None:
        key = node_cost_key(node, input_specs)
    ck = (key, gpu, shard_factor)
    t = _OP_TIME_CACHE.get(ck)
    if t is None:
        t = op_time(node, input_specs, gpu, shard_factor)
        _OP_TIME_CACHE[ck] = t
    return t


def clear_op_time_cache() -> None:
    """Drop the memo (tests and benchmarks)."""
    _OP_TIME_CACHE.clear()


def graph_flops(graph) -> float:
    """Total FLOPs of a graph executed unsharded (diagnostics)."""
    total = 0.0
    for node in graph.nodes:
        ins = [graph.nodes[i].out for i in node.inputs]
        total += node_flops(node, ins)
    return total


def graph_bytes(graph) -> float:
    """Total memory traffic of a graph executed unsharded (diagnostics)."""
    total = 0.0
    for node in graph.nodes:
        ins = [graph.nodes[i].out for i in node.inputs]
        total += node_bytes(node, ins)
    return total
