"""Per-operator device-time model (roofline with GPU-specific effects).

For one operator executing on one GPU, the kernel time is

``t = launch_overhead + max(t_compute, t_memory)``

* ``t_compute = flops / (peak_flops · efficiency)`` — efficiency for
  contractions models tile quantization and occupancy
  (:meth:`repro.cluster.gpu.GPUSpec.matmul_efficiency`); other categories
  run at a fixed fraction of peak;
* ``t_memory = bytes / achieved_bandwidth`` — streaming kernels rarely
  reach peak DRAM bandwidth at small sizes
  (:meth:`~repro.cluster.gpu.GPUSpec.elementwise_bandwidth`).

This is the "profiler" the reproduction substitutes for real hardware: it
is deterministic, shape-sensitive, and nonlinear in ways a latency
predictor must actually learn (launch-bound small ops, bandwidth-bound
elementwise ops, efficiency cliffs on skinny GEMMs).
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.gpu import GPUSpec
from ..ir.graph import Node, TensorSpec
from ..ir.ops import node_bytes, node_flops, op_def

#: Fraction of peak FLOP/s reached by non-GEMM categories (compute side).
_CATEGORY_EFFICIENCY = {
    "elementwise": 0.50,
    "reduction": 0.40,
    "data_movement": 1.0,  # no flops anyway
    "gather_scatter": 0.25,
    "contraction": 1.0,  # replaced by matmul_efficiency
}


def _gemm_dims(node: Node, ins: Sequence[TensorSpec]) -> tuple[int, int, int]:
    """(m, n, k) of a dot_general, folding batch dims into m."""
    k = int(node.params.get("contract", 1))
    n = node.out.shape[-1] if node.out.shape else 1
    m = max(1, node.out.size // max(1, n))
    return m, n, k


def op_time(
    node: Node,
    input_specs: Sequence[TensorSpec],
    gpu: GPUSpec,
    shard_factor: float = 1.0,
) -> float:
    """Seconds to execute ``node`` on ``gpu``.

    ``shard_factor`` divides the work (flops *and* bytes) when the operator
    is partitioned over that many devices; the per-kernel overheads are
    *not* divided — exactly why over-sharding small ops stops paying off.
    """
    if node.node_type != "operator":
        return 0.0
    if shard_factor < 1.0:
        raise ValueError(f"shard_factor must be >= 1, got {shard_factor}")
    flops = node_flops(node, input_specs) / shard_factor
    nbytes = node_bytes(node, input_specs) / shard_factor

    category = op_def(node.op).category
    if node.op == "dot_general":
        m, n, k = _gemm_dims(node, input_specs)
        # shard the dominant output dim for the efficiency estimate
        m_eff = max(1, int(m / shard_factor))
        eff = gpu.matmul_efficiency(m_eff, n, k)
    else:
        eff = _CATEGORY_EFFICIENCY[category]

    t_compute = flops / (gpu.peak_flops * eff) if flops else 0.0
    t_memory = nbytes / gpu.elementwise_bandwidth(nbytes) if nbytes else 0.0
    return gpu.launch_overhead + max(t_compute, t_memory)


def graph_flops(graph) -> float:
    """Total FLOPs of a graph executed unsharded (diagnostics)."""
    total = 0.0
    for node in graph.nodes:
        ins = [graph.nodes[i].out for i in node.inputs]
        total += node_flops(node, ins)
    return total


def graph_bytes(graph) -> float:
    """Total memory traffic of a graph executed unsharded (diagnostics)."""
    total = 0.0
    for node in graph.nodes:
        ins = [graph.nodes[i].out for i in node.inputs]
        total += node_bytes(node, ins)
    return total
