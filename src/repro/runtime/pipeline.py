"""Pipeline (inter-stage) execution models.

Two models of a synchronous pipeline over ``S`` stages and ``B``
microbatches:

* :func:`whitebox_latency` — the paper's closed form (Eqn 4):
  ``T = Σ t_i + (B-1) · max_j t_j`` (communication ignored, §V);
* :class:`PipelineSimulator` — a discrete-event simulation scheduling
  every (stage, microbatch) work item under dependency and
  device-occupancy constraints, optionally charging inter-stage p2p
  transfers.

In the default (combined-pass) mode each (stage, microbatch) is one
indivisible fwd+bwd work item — the flow-shop abstraction Eqn 4 models —
and with zero transfer cost the simulated makespan equals Eqn 4 *exactly*
(the test suite asserts this property).  ``split_backward=True`` schedules
forward and backward passes separately in 1F1B order; interleaving lets
the real schedule beat the closed form slightly, which quantifies the
white-box approximation error.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.network import LinkSpec


def whitebox_latency(stage_times: Sequence[float], n_microbatches: int) -> float:
    """Eqn 4: ``T = Σ t_i + (B-1) · max_j t_j``."""
    if len(stage_times) == 0:
        return 0.0
    if n_microbatches < 1:
        raise ValueError("need at least one microbatch")
    return sum(stage_times) + (n_microbatches - 1) * max(stage_times)


@dataclass
class PipelineEvent:
    """One completed (stage, microbatch, direction) work item."""

    time: float
    stage: int
    microbatch: int
    phase: str  # "pass" | "fwd" | "bwd" | schedule-specific (e.g. "pass.v0")
    #: when the work item began executing (``time`` is its completion)
    start: float = 0.0


def event_sort_key(e: PipelineEvent) -> tuple[float, int, int, str]:
    """Canonical trace order: ``(time, stage, microbatch, phase)``.

    Events completing at equal timestamps would otherwise surface in
    scheduler-internal order; sorting by this key makes traces stable
    for golden comparisons across schedules and simulator versions.
    """
    return (e.time, e.stage, e.microbatch, e.phase)


@dataclass
class PipelineSchedule:
    """Simulation result: makespan plus the full event trace."""

    makespan: float
    events: list[PipelineEvent] = field(default_factory=list)

    def stage_utilization(self, stage: int, item_time: float) -> float:
        busy = sum(item_time for e in self.events if e.stage == stage)
        return busy / self.makespan if self.makespan else 0.0


class PipelineSimulator:
    """Discrete-event simulation of a synchronous microbatch pipeline.

    Stage ``i`` of microbatch ``m`` may start once stage ``i-1`` of ``m``
    has finished (plus transfer time) and stage ``i``'s device mesh is
    free.  ``stage_times`` are the combined fwd+bwd per-microbatch stage
    latencies, which is what the intra-op profiler measures.
    """

    def __init__(
        self,
        stage_times: Sequence[float],
        n_microbatches: int,
        transfer_bytes: float = 0.0,
        link: LinkSpec | None = None,
        split_backward: bool = False,
        bwd_ratio: float = 2.0 / 3.0,
    ) -> None:
        if n_microbatches < 1:
            raise ValueError("need at least one microbatch")
        if len(stage_times) == 0:
            raise ValueError("need at least one stage")
        self.times = list(stage_times)
        self.split = split_backward
        self.fwd = [t * (1.0 - bwd_ratio) for t in stage_times]
        self.bwd = [t * bwd_ratio for t in stage_times]
        self.n_stages = len(stage_times)
        self.n_micro = n_microbatches
        self.transfer = (link.transfer_time(transfer_bytes)
                         if link is not None and transfer_bytes > 0 else 0.0)

    # ------------------------------------------------------------------ run
    def run(self) -> PipelineSchedule:
        return self._run_split() if self.split else self._run_combined()

    def _run_combined(self) -> PipelineSchedule:
        """One indivisible pass per (stage, microbatch): the Eqn-4 flow shop."""
        S, B = self.n_stages, self.n_micro
        ready = [0.0] * B  # time microbatch m's data reaches current stage
        events: list[PipelineEvent] = []
        for s in range(S):
            free = 0.0
            for m in range(B):  # FIFO microbatch order per stage
                start = max(ready[m], free)
                end = start + self.times[s]
                free = end
                ready[m] = end + (self.transfer if s + 1 < S else 0.0)
                events.append(PipelineEvent(end, s, m, "pass", start=start))
        makespan = max(e.time for e in events)
        events.sort(key=event_sort_key)
        return PipelineSchedule(makespan, events)

    #: heap entries carry an integer phase rank, never the phase string,
    #: so equal-priority ties break on ``(prio, microbatch, rank)`` —
    #: deterministic and total — instead of falling through to string
    #: comparison of tuple tails
    _FWD, _BWD = 0, 1

    def _run_split(self) -> PipelineSchedule:
        """Separate fwd/bwd passes served in 1F1B priority order."""
        S, B = self.n_stages, self.n_micro
        ready: list[list[tuple]] = [[] for _ in range(S)]
        free_at = [0.0] * S
        events: list[PipelineEvent] = []
        for m in range(B):
            heapq.heappush(ready[0], (0, m, self._FWD, 0.0))

        pending = B * S * 2
        while pending:
            best = None
            for s in range(S):
                if not ready[s]:
                    continue
                prio, m, rank, rt = ready[s][0]
                start = max(rt, free_at[s])
                key = (start, s, prio, m)
                if best is None or key < best[0]:
                    best = (key, s)
            if best is None:  # pragma: no cover - defensive
                raise RuntimeError("pipeline deadlock")
            _, s = best
            prio, m, rank, rt = heapq.heappop(ready[s])
            start = max(rt, free_at[s])
            dur = self.fwd[s] if rank == self._FWD else self.bwd[s]
            end = start + dur
            free_at[s] = end
            events.append(PipelineEvent(
                end, s, m, "fwd" if rank == self._FWD else "bwd",
                start=start))
            pending -= 1
            if rank == self._FWD:
                if s + 1 < S:
                    heapq.heappush(ready[s + 1],
                                   (0, m, self._FWD, end + self.transfer))
                else:
                    heapq.heappush(ready[s], (-1, m, self._BWD, end))
            else:
                if s - 1 >= 0:
                    heapq.heappush(ready[s - 1],
                                   (-1, m, self._BWD, end + self.transfer))
        makespan = max(e.time for e in events)
        events.sort(key=event_sort_key)
        return PipelineSchedule(makespan, events)


def simulated_latency(
    stage_times: Sequence[float],
    n_microbatches: int,
    transfer_bytes: float = 0.0,
    link: LinkSpec | None = None,
    split_backward: bool = False,
) -> float:
    """Makespan from the discrete-event simulator."""
    sim = PipelineSimulator(stage_times, n_microbatches, transfer_bytes,
                            link, split_backward)
    return sim.run().makespan
