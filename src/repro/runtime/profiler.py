"""Stage profiling: the measurement machinery PredTOP learns to replace.

:func:`profile_stage` is the full pipeline Alpa runs per candidate stage:
trace the slice, expand to the training graph, run the intra-op optimizer
for the mesh/configuration, and execute (simulate) it.  The result is both
the ground-truth latency (the predictor's regression target) and the
*optimization cost* of having obtained it (compile + transfer + measured
trials), which Fig 10a accounts.

Results are memoized per (model, slice, microbatch, mesh, config) — the
reproduction's stand-in for Alpa's profiling database.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.mesh import DeviceMesh, LogicalMesh
from ..ir.autodiff import build_training_graph
from ..ir.fusion import fuse_elementwise
from ..ir.graph import Graph
from ..ir.pruning import prune_graph
from ..models.model import Model
from ..parallel.plan_cache import cached_optimize_stage
from .executor import StageProfile, execute_plan


@dataclass(frozen=True)
class ProfiledStage:
    """One profiled (stage, mesh, configuration) measurement."""

    stage_id: str
    layer_range: tuple[int, int]
    mesh_key: str
    dp: int
    mp: int
    #: the pruned forward DAG — what the predictor sees (§IV-B2/B4)
    graph: Graph
    #: ground-truth training latency for one microbatch, seconds
    latency: float
    profile: StageProfile
    #: simulated seconds it cost to obtain this measurement
    profiling_cost: float


#: knobs of the profiling-cost model (seconds); calibrated to Alpa-like
#: magnitudes: XLA compilation dominated by graph size, a fixed data
#: staging cost, and warmup + timed trials at the measured latency.
COMPILE_BASE = 2.0
COMPILE_PER_NODE = 0.004
TRANSFER_COST = 0.5
WARMUP_TRIALS = 2
TIMED_TRIALS = 5


def profiling_cost(n_nodes: int, latency: float) -> float:
    """Simulated seconds to compile + profile one stage once."""
    compile_t = COMPILE_BASE + COMPILE_PER_NODE * n_nodes
    runs = (WARMUP_TRIALS + TIMED_TRIALS) * latency
    return compile_t + TRANSFER_COST + runs


class StageProfiler:
    """Profiles model stages on logical meshes, with memoization."""

    def __init__(self, model: Model, fuse: bool = True, prune: bool = True,
                 aggressive_fusion: bool = False) -> None:
        self.model = model
        self.fuse = fuse
        self.prune = prune
        self.aggressive_fusion = aggressive_fusion
        self._cache: dict[tuple, ProfiledStage] = {}
        #: traced-and-lowered graphs per ("pred"|"train", start, end, mb);
        #: tracing + pruning + fusion dominates repeat profiling of one
        #: slice across meshes, and downstream caches (the intra-op solve
        #: plans, the plan cache) key on the graph object or its hash, so
        #: returning the same instance also keeps them warm
        self._graphs: dict[tuple, Graph] = {}

    # ------------------------------------------------------------ graph prep
    def predictor_graph(self, start: int, end: int,
                        microbatch: int | None = None) -> Graph:
        """The stage DAG the predictor consumes: forward, pruned, fused."""
        key = ("pred", start, end, microbatch)
        g = self._graphs.get(key)
        if g is None:
            g = self.model.stage_graph(start, end, microbatch)
            if self.prune:
                g = prune_graph(g)
            if self.fuse:
                g, _ = fuse_elementwise(g, self.aggressive_fusion)
            self._graphs[key] = g
        return g

    def training_graph(self, start: int, end: int,
                       microbatch: int | None = None) -> Graph:
        """The graph whose execution the profiler times (fwd+bwd+update)."""
        key = ("train", start, end, microbatch)
        g = self._graphs.get(key)
        if g is None:
            g = self.model.stage_graph(start, end, microbatch)
            g = prune_graph(g)
            g, _ = fuse_elementwise(g, self.aggressive_fusion)
            g = build_training_graph(
                g, loss_to_scalar=(end == len(self.model.layers)))
            self._graphs[key] = g
        return g

    # -------------------------------------------------------------- profiling
    def profile_stage(
        self,
        start: int,
        end: int,
        mesh: DeviceMesh,
        dp: int,
        mp: int,
        microbatch: int | None = None,
    ) -> ProfiledStage:
        """Measure one (stage slice, mesh, logical config)."""
        key = (start, end, microbatch, mesh.key(), dp, mp)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        logical = mesh.logical(dp, mp)
        tg = self.training_graph(start, end, microbatch)
        # structurally identical slices (e.g. interior layer ranges of the
        # same width) share one intra-op DP solve through the plan cache
        plan = cached_optimize_stage(tg, logical)
        prof = execute_plan(plan)
        result = ProfiledStage(
            stage_id=f"{self.model.name}[{start}:{end}]",
            layer_range=(start, end),
            mesh_key=mesh.key(),
            dp=dp,
            mp=mp,
            graph=self.predictor_graph(start, end, microbatch),
            latency=prof.latency,
            profile=prof,
            profiling_cost=profiling_cost(len(tg), prof.latency),
        )
        self._cache[key] = result
        return result

    def prime(self, profiled: ProfiledStage,
              microbatch: int | None = None) -> None:
        """Insert an externally obtained measurement into the memo.

        The parallel engine profiles stages in worker processes; priming
        the parent's cache with the returned results keeps later serial
        lookups (plan scoring, ground-truth comparisons) free.
        """
        key = (*profiled.layer_range, microbatch, profiled.mesh_key,
               profiled.dp, profiled.mp)
        self._cache.setdefault(key, profiled)

    def optimal_latency(self, start: int, end: int, mesh: DeviceMesh,
                        microbatch: int | None = None) -> tuple[float, tuple[int, int]]:
        """Best latency over the mesh's logical views (Alpa intra-op output)."""
        from ..cluster.mesh import logical_views

        best, best_cfg = float("inf"), (1, 1)
        for lv in logical_views(mesh):
            p = self.profile_stage(start, end, mesh, lv.dp, lv.mp, microbatch)
            if p.latency < best:
                best, best_cfg = p.latency, (lv.dp, lv.mp)
        return best, best_cfg
