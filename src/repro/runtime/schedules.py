"""Pipeline-schedule registry: closed forms + validated simulations.

The paper's white-box layer is 1F1B-only (Eqn 4,
:func:`~repro.runtime.pipeline.whitebox_latency`).  This module
generalizes it into a registry of :class:`ScheduleSpec` objects, each
providing, for ``S`` stages and ``B`` microbatches:

* ``closed_form(stage_times, B)`` — an analytical makespan under the
  flow-shop assumptions (zero transfer cost, per-device FIFO service in
  schedule priority order);
* ``work_items(stage_times, B)`` — the schedule's dependency graph of
  (stage, microbatch, phase) work items, executed by the generic
  discrete-event engine :func:`simulate_items`;
* a **validation contract** (:meth:`ScheduleSpec.validate`) asserting the
  simulated makespan equals the closed form, the same way 1F1B is pinned
  against Eqn 4 today;
* ``dp_objective(sum_t, max_t, B)`` — the plan-search objective consumed
  by the Alpa inter-op DP (:mod:`repro.parallel.inter_op`), nondecreasing
  in both arguments so the t_max-iteration scheme stays optimal.

Registered schedules and their closed forms (all exact under the
flow-shop assumptions; ``t_s`` per-stage combined fwd+bwd times):

* ``1f1b``        — Eqn 4: ``T = Σ t_s + (B-1)·max t_s``.
* ``gpipe``       — flush between passes; with ``f_s = (1-r)·t_s``,
  ``b_s = r·t_s``: ``T = [Σ f + (B-1)·max f] + [Σ b + (B-1)·max b]``
  (forward flow shop, then the backward reverse flow shop starts at the
  flush with every device provably idle).
* ``interleaved`` — interleaved 1F1B with ``V`` virtual chunks per
  device, ``c_s = t_s / V``, ``K = B·V`` chunk-jobs:
  ``T = Σ c + max[(K-1)·max c, (V-1)·Σ c + (B-1)·max c]``
  (longest path of the cyclic flow shop is linear in the number of full
  wrap traversals, so only the two endpoints matter).
* ``2bp``         — 2BP's two-stage backward split: ``f = r_f·t``,
  ``b1 = r_1·t`` (activation grads, on the critical path), ``b2``
  (weight grads, deferred until after the stage's last b1):
  ``T = max_s [T_F + Σ b1[s:] + (B-1)·max b1[s:] + B·b2_s]`` with
  ``T_F = Σ f + (B-1)·max f``.

``2bp`` can legitimately finish *below* ``Σ t`` — deferring weight
gradients lets different stages' b2 work overlap, which is 2BP's whole
point — so its :meth:`~ScheduleSpec.lower_bound` is the split-aware
envelope ``max(Σ f + Σ b1 + B·b2_0, B·max t)`` rather than the generic
``max(Σ t, B·max t)`` the other three satisfy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from .pipeline import (
    PipelineEvent,
    PipelineSchedule,
    event_sort_key,
    whitebox_latency,
)

Key = tuple[int, int, str]  # (stage, microbatch, phase)


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a (stage, microbatch, phase) pass.

    ``priority`` orders service on the item's device (devices run their
    items strictly in ascending priority); ``deps`` are the keys of items
    that must finish first (cross-device deps are charged the transfer
    time).
    """

    stage: int
    microbatch: int
    phase: str
    device: int
    duration: float
    priority: tuple[int, ...]
    deps: tuple[Key, ...] = ()

    @property
    def key(self) -> Key:
        return (self.stage, self.microbatch, self.phase)


def simulate_items(items: Sequence[WorkItem],
                   transfer_time: float = 0.0) -> PipelineSchedule:
    """Generic discrete-event engine over explicit work items.

    Each device serves its items strictly in ``priority`` order (the
    previous item on the device is an implicit dependency), so an item's
    start time is ``max`` over its constraints' finish times — resolved
    the moment its last constraint completes.  Resolved items are
    processed through a heap keyed ``(start, stage, microbatch, phase)``,
    which makes the event trace deterministic under equal timestamps and
    independent of the input item order.
    """
    if not items:
        return PipelineSchedule(0.0, [])
    by_key: dict[Key, WorkItem] = {}
    for it in items:
        if it.key in by_key:
            raise ValueError(f"duplicate work item {it.key}")
        by_key[it.key] = it

    # per-device service order -> implicit predecessor dependency
    per_device: dict[int, list[WorkItem]] = {}
    for it in items:
        per_device.setdefault(it.device, []).append(it)
    extra_dep: dict[Key, Key] = {}
    for dev_items in per_device.values():
        dev_items.sort(key=lambda it: (it.priority, it.key))
        for prev, cur in zip(dev_items, dev_items[1:]):
            extra_dep[cur.key] = prev.key

    waiting: dict[Key, int] = {}
    dependents: dict[Key, list[Key]] = {}
    for it in items:
        count = 0
        for d in it.deps:
            if d not in by_key:
                raise ValueError(f"unknown dependency {d} of {it.key}")
            dependents.setdefault(d, []).append(it.key)
            count += 1
        prev = extra_dep.get(it.key)
        if prev is not None:
            dependents.setdefault(prev, []).append(it.key)
            count += 1
        waiting[it.key] = count

    ready_at: dict[Key, float] = {k: 0.0 for k in by_key}
    finish: dict[Key, float] = {}
    heap: list[tuple[float, int, int, str]] = []
    for k, count in waiting.items():
        if count == 0:
            heapq.heappush(heap, (0.0, *k))
    events: list[PipelineEvent] = []
    while heap:
        start, s, m, phase = heapq.heappop(heap)
        it = by_key[(s, m, phase)]
        end = start + it.duration
        finish[it.key] = end
        events.append(PipelineEvent(end, s, m, phase, start=start))
        for dk in dependents.get(it.key, ()):
            dep_item = by_key[dk]
            arrival = end + (transfer_time
                             if dep_item.device != it.device else 0.0)
            if arrival > ready_at[dk]:
                ready_at[dk] = arrival
            waiting[dk] -= 1
            if waiting[dk] == 0:
                heapq.heappush(heap, (ready_at[dk], *dk))
    if len(finish) != len(by_key):
        raise RuntimeError("schedule deadlock: cyclic work-item dependencies")
    events.sort(key=event_sort_key)
    return PipelineSchedule(max(finish.values()), events)


class ScheduleSpec:
    """One pipeline schedule: closed form, work items, validation."""

    name = "abstract"

    # ------------------------------------------------------------ interface
    def closed_form(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        """Analytical makespan under the flow-shop assumptions."""
        raise NotImplementedError

    def work_items(self, stage_times: Sequence[float],
                   n_microbatches: int) -> list[WorkItem]:
        """The schedule's dependency graph for the event engine."""
        raise NotImplementedError

    def dp_objective(self, sum_t: float, max_t: float,
                     n_microbatches: int) -> float:
        """Plan-search objective over (Σ t, max t); nondecreasing in both."""
        raise NotImplementedError

    # ---------------------------------------------------------- derived API
    def simulate(self, stage_times: Sequence[float], n_microbatches: int,
                 transfer_time: float = 0.0) -> PipelineSchedule:
        self._check(stage_times, n_microbatches)
        return simulate_items(self.work_items(stage_times, n_microbatches),
                              transfer_time)

    def simulated_latency(self, stage_times: Sequence[float],
                          n_microbatches: int,
                          transfer_time: float = 0.0) -> float:
        return self.simulate(stage_times, n_microbatches,
                             transfer_time).makespan

    def lower_bound(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        """No schedule beats the critical path or the bottleneck's work."""
        return max(sum(stage_times), n_microbatches * max(stage_times))

    def validate(self, stage_times: Sequence[float], n_microbatches: int,
                 rel: float = 1e-9) -> float:
        """Assert simulator == closed form (and both ≥ the lower bound).

        The per-schedule contract of the registry: under zero transfer
        cost the discrete-event simulation must reproduce the analytical
        makespan exactly (up to float association, ``rel``).  Returns the
        closed-form value.
        """
        cf = self.closed_form(stage_times, n_microbatches)
        sim = self.simulated_latency(stage_times, n_microbatches)
        tol = rel * max(1.0, abs(cf))
        if abs(sim - cf) > tol:
            raise AssertionError(
                f"{self.name}: simulator {sim!r} != closed form {cf!r} "
                f"for stages={list(stage_times)!r} B={n_microbatches}")
        lb = self.lower_bound(stage_times, n_microbatches)
        if sim < lb - tol:
            raise AssertionError(
                f"{self.name}: makespan {sim!r} beats lower bound {lb!r} "
                f"for stages={list(stage_times)!r} B={n_microbatches}")
        return cf

    @staticmethod
    def _check(stage_times: Sequence[float], n_microbatches: int) -> None:
        if n_microbatches < 1:
            raise ValueError("need at least one microbatch")
        if len(stage_times) == 0:
            raise ValueError("need at least one stage")


class OneFOneBSchedule(ScheduleSpec):
    """1F1B with combined fwd+bwd passes — the paper's Eqn-4 flow shop.

    The registry path is pinned bit-identical to the seed
    :func:`whitebox_latency` / ``PipelineSimulator`` combined mode by the
    differential tests: the closed form *is* ``whitebox_latency`` and the
    work-item recurrence performs the same ``max(ready, free) + t``
    float operations in the same order.
    """

    name = "1f1b"

    def closed_form(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        return whitebox_latency(stage_times, n_microbatches)

    def work_items(self, stage_times: Sequence[float],
                   n_microbatches: int) -> list[WorkItem]:
        items = []
        for s, t in enumerate(stage_times):
            for m in range(n_microbatches):
                deps = ((s - 1, m, "pass"),) if s > 0 else ()
                items.append(WorkItem(s, m, "pass", s, t, (m,), deps))
        return items

    def dp_objective(self, sum_t: float, max_t: float,
                     n_microbatches: int) -> float:
        return sum_t + (n_microbatches - 1) * max_t


class GPipeSchedule(ScheduleSpec):
    """GPipe: all forwards, a flush, then all backwards.

    ``bwd_ratio`` splits each stage time into ``f_s = (1-r)·t_s`` and
    ``b_s = r·t_s`` (the ~2× backward cost of recompute-free training).
    The backward phase is a reverse flow shop that starts at the forward
    flush with every device idle, so both halves contribute a full
    Eqn-4 term.
    """

    name = "gpipe"

    def __init__(self, bwd_ratio: float = 2.0 / 3.0) -> None:
        if not 0.0 < bwd_ratio < 1.0:
            raise ValueError("bwd_ratio must be in (0, 1)")
        self.bwd_ratio = bwd_ratio

    def _split(self, stage_times: Sequence[float]):
        r = self.bwd_ratio
        return ([t * (1.0 - r) for t in stage_times],
                [t * r for t in stage_times])

    def closed_form(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        if len(stage_times) == 0:
            return 0.0
        self._check(stage_times, n_microbatches)
        f, b = self._split(stage_times)
        B = n_microbatches
        return (sum(f) + (B - 1) * max(f)) + (sum(b) + (B - 1) * max(b))

    def work_items(self, stage_times: Sequence[float],
                   n_microbatches: int) -> list[WorkItem]:
        S, B = len(stage_times), n_microbatches
        f, b = self._split(stage_times)
        items = []
        for s in range(S):
            for m in range(B):
                fdeps = ((s - 1, m, "fwd"),) if s > 0 else ()
                items.append(WorkItem(s, m, "fwd", s, f[s], (0, m), fdeps))
                # the flush: the last stage's backwards wait for the full
                # forward phase; upstream backwards chain stage to stage
                bdeps = (((S - 1, B - 1, "fwd"),) if s == S - 1
                         else ((s + 1, m, "bwd"),))
                items.append(WorkItem(s, m, "bwd", s, b[s], (1, m), bdeps))
        return items

    def dp_objective(self, sum_t: float, max_t: float,
                     n_microbatches: int) -> float:
        r = self.bwd_ratio
        B = n_microbatches
        return ((1.0 - r) * sum_t + (B - 1) * ((1.0 - r) * max_t)
                + r * sum_t + (B - 1) * (r * max_t))


class InterleavedSchedule(ScheduleSpec):
    """Interleaved 1F1B: each device runs ``V`` virtual model chunks.

    Stage ``s``'s time splits into ``V`` chunks of ``c_s = t_s / V``;
    chunk ``v`` of microbatch ``m`` is job ``k = v·B + m`` and wraps from
    the last device back to the first (``(k-B, S-1) → (k, 0)``).  The
    longest path through the cyclic flow shop makes ``w`` full wrap
    traversals (``w·Σ c``) plus horizontal steps at the bottleneck
    (``(K-1-w·B)·max c``); linear in ``w``, so the maximum is at an
    endpoint — giving a makespan never above Eqn 4 (equal at ``V=1``).
    """

    name = "interleaved"

    def __init__(self, virtual_stages: int = 2) -> None:
        if virtual_stages < 1:
            raise ValueError("need at least one virtual stage")
        self.virtual_stages = virtual_stages

    def closed_form(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        if len(stage_times) == 0:
            return 0.0
        self._check(stage_times, n_microbatches)
        V, B = self.virtual_stages, n_microbatches
        c = [t / V for t in stage_times]
        sum_c, max_c = sum(c), max(c)
        K = B * V
        return sum_c + max((K - 1) * max_c,
                           (V - 1) * sum_c + (B - 1) * max_c)

    def work_items(self, stage_times: Sequence[float],
                   n_microbatches: int) -> list[WorkItem]:
        S, B, V = len(stage_times), n_microbatches, self.virtual_stages
        c = [t / V for t in stage_times]
        items = []
        for v in range(V):
            phase = f"pass.v{v}"
            for s in range(S):
                for m in range(B):
                    if s > 0:
                        deps: tuple[Key, ...] = ((s - 1, m, phase),)
                    elif v > 0:
                        deps = ((S - 1, m, f"pass.v{v - 1}"),)
                    else:
                        deps = ()
                    items.append(WorkItem(s, m, phase, s, c[s],
                                          (v, m), deps))
        return items

    def dp_objective(self, sum_t: float, max_t: float,
                     n_microbatches: int) -> float:
        V, B = self.virtual_stages, n_microbatches
        sum_c, max_c = sum_t / V, max_t / V
        K = B * V
        return sum_c + max((K - 1) * max_c,
                           (V - 1) * sum_c + (B - 1) * max_c)


class TwoBPSchedule(ScheduleSpec):
    """2BP: backward split into activation grads (b1) and weight grads (b2).

    ``f = r_f·t`` forwards run GPipe-style with a flush; ``b1 = r_1·t``
    activation-gradient passes form the reverse flow shop (they are the
    inter-stage dependency); ``b2`` weight-gradient work has no
    downstream consumer and is deferred until after the stage's last b1,
    letting different stages' b2 overlap — which is why 2BP may finish
    below ``Σ t`` (see :meth:`lower_bound`).
    """

    name = "2bp"

    def __init__(self, fwd_ratio: float = 1.0 / 3.0,
                 b1_ratio: float = 1.0 / 3.0) -> None:
        if fwd_ratio <= 0 or b1_ratio <= 0 or fwd_ratio + b1_ratio >= 1.0:
            raise ValueError("need fwd_ratio, b1_ratio > 0 with sum < 1")
        self.fwd_ratio = fwd_ratio
        self.b1_ratio = b1_ratio

    def _split(self, stage_times: Sequence[float]):
        rf, r1 = self.fwd_ratio, self.b1_ratio
        r2 = 1.0 - rf - r1
        return ([t * rf for t in stage_times],
                [t * r1 for t in stage_times],
                [t * r2 for t in stage_times])

    def closed_form(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        if len(stage_times) == 0:
            return 0.0
        self._check(stage_times, n_microbatches)
        f, b1, b2 = self._split(stage_times)
        S, B = len(stage_times), n_microbatches
        t_flush = sum(f) + (B - 1) * max(f)
        return max(t_flush + sum(b1[s:]) + (B - 1) * max(b1[s:])
                   + B * b2[s] for s in range(S))

    def work_items(self, stage_times: Sequence[float],
                   n_microbatches: int) -> list[WorkItem]:
        S, B = len(stage_times), n_microbatches
        f, b1, b2 = self._split(stage_times)
        items = []
        for s in range(S):
            for m in range(B):
                fdeps = ((s - 1, m, "fwd"),) if s > 0 else ()
                items.append(WorkItem(s, m, "fwd", s, f[s], (0, m), fdeps))
                b1deps = (((S - 1, B - 1, "fwd"),) if s == S - 1
                          else ((s + 1, m, "bwd1"),))
                items.append(WorkItem(s, m, "bwd1", s, b1[s], (1, m), b1deps))
                # weight grads only need the stage's own b1 outputs; serving
                # them after the last local b1 keeps b1 on the critical path
                items.append(WorkItem(s, m, "bwd2", s, b2[s], (2, m),
                                      ((s, B - 1, "bwd1"),)))
        return items

    def dp_objective(self, sum_t: float, max_t: float,
                     n_microbatches: int) -> float:
        # upper-bound surrogate of the closed form (which needs per-stage
        # suffix structure the DP does not track): replace every suffix
        # max/sum with the global one — still nondecreasing in both args
        rf, r1 = self.fwd_ratio, self.b1_ratio
        r2 = 1.0 - rf - r1
        B = n_microbatches
        return ((rf + r1) * sum_t
                + ((B - 1) * (rf + r1) + B * r2) * max_t)

    def lower_bound(self, stage_times: Sequence[float],
                    n_microbatches: int) -> float:
        f, b1, b2 = self._split(stage_times)
        B = n_microbatches
        # stage 0 finishes the last b1 in the reverse flow shop, then its
        # own B·b2; the bottleneck device still owes B·t of total work
        return max(sum(f) + sum(b1) + B * b2[0],
                   B * max(stage_times))


# ------------------------------------------------------------------ registry
_REGISTRY: dict[str, ScheduleSpec] = {}


def register_schedule(spec: ScheduleSpec, replace: bool = False) -> ScheduleSpec:
    """Register a schedule under ``spec.name``.

    New schedules are automatically covered by the property suite
    (``tests/test_schedule_properties.py`` parametrizes over
    :func:`schedule_names`), which enforces the validation contract.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"schedule {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_schedule(name: str) -> ScheduleSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown schedule {name!r}; "
                         f"known: {schedule_names()}") from None


def schedule_names() -> tuple[str, ...]:
    """Registered schedule names, in registration order."""
    return tuple(_REGISTRY)


register_schedule(OneFOneBSchedule())
register_schedule(GPipeSchedule())
register_schedule(InterleavedSchedule())
register_schedule(TwoBPSchedule())
