"""Resilient PredTOP serving daemon (``repro serve``).

The package layers, bottom up:

* :mod:`.protocol` — the JSON-lines wire format and its validation;
* :mod:`.breaker` — per-route circuit breakers over the trust layer;
* :mod:`.runtime` — the loaded-once predictor state every thread shares;
* :mod:`.batcher` — the micro-batcher coalescing predictions;
* :mod:`.server` — admission control, deadlines, lifecycle, the socket.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .protocol import (ERROR_CODES, MAX_LINE_BYTES, OP_SUMMARIES, OPS,
                       ProtocolError, Request, encode_response,
                       error_response, ok_response, parse_request)
from .runtime import PredictorRuntime, RuntimeConfig
from .server import ReproServer, ServerConfig

__all__ = [
    "BreakerConfig", "CircuitBreaker",
    "ERROR_CODES", "MAX_LINE_BYTES", "OP_SUMMARIES", "OPS",
    "ProtocolError", "Request", "encode_response", "error_response",
    "ok_response", "parse_request",
    "PredictorRuntime", "RuntimeConfig",
    "ReproServer", "ServerConfig",
]
