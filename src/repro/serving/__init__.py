"""Resilient PredTOP serving daemon (``repro serve``).

The package layers, bottom up:

* :mod:`.protocol` — the JSON-lines wire format and its validation;
* :mod:`.breaker` — per-route circuit breakers over the trust layer;
* :mod:`.tenancy` — per-tenant admission budgets and fair queueing;
* :mod:`.runtime` — the loaded-once predictor state every thread shares;
* :mod:`.batcher` — the micro-batcher coalescing predictions;
* :mod:`.server` — admission control, deadlines, lifecycle, the socket;
* :mod:`.router` — the consistent-hash failover front-end over replicas.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .protocol import (ERROR_CODES, MAX_LINE_BYTES, OP_SUMMARIES, OPS,
                       PROTOCOL_VERSION, ProtocolError, Request,
                       encode_response, error_response, ok_response,
                       parse_request)
from .router import HashRing, ReproRouter, RouterConfig, request_hash
from .runtime import PredictorRuntime, RuntimeConfig
from .server import ReproServer, ServerConfig
from .tenancy import (DEFAULT_TENANT, AdmissionController, FairQueue,
                      TenancyConfig, TenantPolicy, TokenBucket,
                      jittered_retry_ms)

__all__ = [
    "BreakerConfig", "CircuitBreaker",
    "ERROR_CODES", "MAX_LINE_BYTES", "OP_SUMMARIES", "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError", "Request", "encode_response", "error_response",
    "ok_response", "parse_request",
    "HashRing", "ReproRouter", "RouterConfig", "request_hash",
    "PredictorRuntime", "RuntimeConfig",
    "ReproServer", "ServerConfig",
    "DEFAULT_TENANT", "AdmissionController", "FairQueue",
    "TenancyConfig", "TenantPolicy", "TokenBucket", "jittered_retry_ms",
]
