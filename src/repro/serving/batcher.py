"""Micro-batcher: coalesce in-flight predictions into one model call.

Single-graph ``predict`` requests dominate serving traffic, and the
ensemble's :meth:`predict_many` amortizes batch construction across
graphs (PR-5).  The batcher exploits that: connection threads enqueue
pending predictions into a bounded queue; one batcher thread drains it,
waits up to ``window_ms`` for stragglers (up to ``max_batch``), and
answers the whole batch from a single guarded model call.

Robustness contract:

* the queue is **bounded and fair** — a full queue (globally, or one
  tenant's ``max_queued`` lane cap) rejects the submit and the server
  sheds the request with ``retry_after`` (never a silent drop); across
  tenants the queue serves deficit-weighted round-robin
  (:class:`~repro.serving.tenancy.FairQueue`), so one tenant's backlog
  cannot delay another tenant's single request past one round;
* every dequeued request is **always answered** — expired ones with
  ``deadline_exceeded``, the rest from the model path, the analytical
  path (breaker open), or the analytical path again when the model call
  itself throws mid-batch (the throw is also reported to the breaker);
* model-path outcomes feed the route's circuit breaker, so a poisoned
  predictor degrades the route instead of failing every batch forever.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .breaker import CircuitBreaker
from .protocol import Request, error_response, ok_response
from .runtime import PredictorRuntime
from .tenancy import FairQueue


@dataclass
class _Pending:
    """One enqueued prediction awaiting its batch."""

    request: Request
    graphs: list
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None

    def resolve(self, response: dict[str, Any]) -> None:
        self.response = response
        self.done.set()

    def wait(self, timeout: float) -> dict[str, Any] | None:
        if self.done.wait(timeout):
            return self.response
        return None


class MicroBatcher:
    """The coalescing thread plus its bounded admission queue."""

    def __init__(
        self,
        runtime: PredictorRuntime,
        breaker: CircuitBreaker,
        *,
        max_batch: int = 32,
        window_ms: float = 4.0,
        max_queue: int = 256,
        on_batch: Callable[[int, str], None] | None = None,
        weight_of: Callable[[str], int] | None = None,
        max_queued_of: Callable[[str], int] | None = None,
    ) -> None:
        self.runtime = runtime
        self.breaker = breaker
        self.max_batch = max(1, max_batch)
        self.window_s = max(0.0, window_ms) / 1000.0
        self._queue: FairQueue = FairQueue(
            max(1, max_queue), weight_of=weight_of,
            max_queued_of=max_queued_of)
        #: observability hook: (batch size, served_by) per executed batch
        self._on_batch = on_batch
        self.batches = 0
        self.coalesced = 0
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._stopped = threading.Event()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self._thread.start()

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop after answering everything already queued."""
        self._stopped.set()
        self._queue.close()
        self._thread.join(timeout=drain_timeout)

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def depths(self) -> dict[str, int]:
        """Per-tenant queue depths (health endpoint / journal)."""
        return self._queue.depths()

    # ------------------------------------------------------------ admission
    def submit(self, pending: _Pending) -> bool:
        """Enqueue one prediction; ``False`` = full, caller must shed."""
        if self._stopped.is_set():
            return False
        return self._queue.put_nowait(pending.request.tenant, pending)

    # ------------------------------------------------------------- the loop
    def _collect(self) -> list[_Pending]:
        """Block for one item, then coalesce stragglers for a window."""
        first = self._queue.get(timeout=0.25)
        if first is None:
            return []
        batch = [first]
        total_graphs = len(first.graphs)
        deadline = time.monotonic() + self.window_s
        while total_graphs < self.max_batch:
            wait = deadline - time.monotonic()
            if wait <= 0:
                break
            item = self._queue.get(timeout=wait)
            if item is None:
                break
            batch.append(item)
            total_graphs += len(item.graphs)
        return batch

    def _loop(self) -> None:
        while not (self._stopped.is_set() and self._queue.empty()):
            batch = self._collect()
            if not batch:
                continue
            self._execute(batch)
        # answer anything that raced the close
        leftovers = []
        while True:
            item = self._queue.get_nowait()
            if item is None:
                break
            leftovers.append(item)
        if leftovers:
            self._execute(leftovers)

    def _execute(self, batch: list[_Pending]) -> None:
        live: list[_Pending] = []
        for item in batch:
            if item.request.expired:
                item.resolve(error_response(
                    item.request.id, "deadline_exceeded",
                    f"request expired after "
                    f"{item.request.deadline_ms:.0f} ms in queue"))
            else:
                live.append(item)
        if not live:
            return
        self.batches += 1
        self.coalesced += len(live)
        graphs = [g for item in live for g in item.graphs]
        use_model = self.breaker.allow_model()
        try:
            results, suspect, served_by = self.runtime.predict_batch(
                graphs, use_model)
        except Exception as exc:  # noqa: BLE001 - degrade, never drop
            self.breaker.record(False,
                                f"{type(exc).__name__}: {exc}")
            results, _, served_by = self.runtime.predict_batch(
                graphs, use_model=False)
            suspect = 0
        else:
            if served_by == "model":
                self.breaker.record(suspect == 0,
                                    f"{suspect} suspect verdict(s)"
                                    if suspect else "")
        if self._on_batch is not None:
            self._on_batch(len(live), served_by)
        degraded = served_by != "model"
        cursor = 0
        for item in live:
            chunk = results[cursor:cursor + len(item.graphs)]
            cursor += len(item.graphs)
            payload = ({"predictions": chunk}
                       if item.request.op == "predict_many"
                       else chunk[0])
            item.resolve(ok_response(item.request, payload,
                                     degraded=degraded, served_by=served_by))
