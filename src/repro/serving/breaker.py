"""Per-route circuit breaker over the trust layer.

The daemon's model path can go bad in ways a single request cannot see:
an ensemble that stops agreeing with itself, a burst of OOD queries, a
predictor that starts throwing, or a queue so saturated that model-path
latency itself is the problem.  The breaker watches a sliding window of
per-request outcomes and, past a failure threshold, flips the route to
the **analytical estimator** (the PR-4 degradation path): every answer
stays correct-and-bounded, just cheaper and flagged ``degraded``.

States follow the classic pattern:

* ``closed`` — healthy; model path serves, outcomes are recorded;
* ``open`` — tripped; the analytical path serves everything until
  ``cooldown_s`` elapses;
* ``half_open`` — after cooldown, a single probe request is let through
  to the model path; success closes the breaker, failure re-opens it
  (and restarts the cooldown).

Every transition is journaled to the run manifest (``event:
"breaker"``), so ``repro bench report`` reconstructs the service's
degradation history after the fact.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..experiments.manifest import append_event

STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery knobs of one route's breaker."""

    #: consecutive-window failures that trip the breaker
    failure_threshold: int = 5
    #: sliding window length (recent outcomes considered)
    window: int = 20
    #: seconds the breaker stays open before probing
    cooldown_s: float = 2.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.window < self.failure_threshold:
            raise ValueError("window must be >= failure_threshold")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class CircuitBreaker:
    """One route's breaker; thread-safe."""

    def __init__(self, route: str, config: BreakerConfig | None = None,
                 journal_root=None,
                 clock=time.monotonic) -> None:
        self.route = route
        self.config = config or BreakerConfig()
        self.journal_root = journal_root
        self._clock = clock
        self._lock = threading.RLock()
        self._state = "closed"
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probe_inflight = False
        self.transitions: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------- state
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, to: str, reason: str) -> None:
        old = self._state
        if old == to:
            return
        self._state = to
        self.transitions.append((old, to, reason))
        append_event(self.journal_root, "breaker", route=self.route,
                     **{"from": old}, to=to, reason=reason)

    def _maybe_half_open(self) -> None:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.config.cooldown_s):
            self._probe_inflight = False
            self._transition("half_open", "cooldown elapsed")

    # ------------------------------------------------------------- api
    def allow_model(self) -> bool:
        """May this request take the model path right now?

        In ``half_open`` only one in-flight probe is admitted; everyone
        else stays on the analytical path until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record(self, success: bool, reason: str = "") -> None:
        """Report the outcome of a model-path request."""
        with self._lock:
            if self._state == "half_open":
                self._probe_inflight = False
                if success:
                    self._outcomes.clear()
                    self._transition("closed", "probe succeeded")
                else:
                    self._opened_at = self._clock()
                    self._transition("open",
                                     f"probe failed ({reason or 'failure'})")
                return
            if self._state == "open":
                return  # stale outcome from before the trip
            self._outcomes.append(success)
            failures = sum(1 for x in self._outcomes if not x)
            if failures >= self.config.failure_threshold:
                self._opened_at = self._clock()
                self._transition(
                    "open",
                    f"{failures} failures in window of "
                    f"{len(self._outcomes)} ({reason or 'failure'})")

    def force_open(self, reason: str) -> None:
        """Trip immediately (e.g. sustained queue saturation)."""
        with self._lock:
            self._opened_at = self._clock()
            self._probe_inflight = False
            self._transition("open", reason)

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "failures_in_window": sum(1 for x in self._outcomes if not x),
                "window_filled": len(self._outcomes),
                "transitions": len(self.transitions),
            }
