"""JSON-lines wire protocol of the PredTOP serving daemon (v2).

One request per line, one response per line, UTF-8 JSON.  Requests::

    {"id": "c3-17", "op": "predict", "deadline_ms": 500,
     "tenant": "team-a", "params": {"slice": [0, 2]}}

``op`` is required; ``id`` (echoed back verbatim), ``deadline_ms``, and
``tenant`` are optional.  ``tenant`` is v2's only addition: the client
identity admission control budgets against.  An absent (or empty)
tenant means the ``"default"`` class, so v1 clients keep working
unchanged; an *unknown* tenant name is not an error — it is budgeted
under the default policy.  Responses are correlated by ``id`` — the
daemon may answer pipelined requests out of order.  Success::

    {"id": "c3-17", "ok": true, "op": "predict", "degraded": false,
     "served_by": "model", "t_ms": 3.1, "result": {...}}

Failure (always a *response*, never a dropped connection)::

    {"id": "c3-17", "ok": false,
     "error": {"code": "overloaded", "message": "..."},
     "retry_after_ms": 50}

``degraded: true`` marks an answer produced by the analytical fallback
path (circuit breaker open, model unusable, or search timeout) — still a
correct physically-bounded estimate, just not a learned one.

Error codes (:data:`ERROR_CODES`): ``invalid_request`` (not JSON / not
an object / bad field types), ``unknown_op``, ``bad_params``,
``overloaded`` (load shed — carries ``retry_after_ms``),
``rate_limited`` (the tenant is over its token-bucket or
concurrent-work budget — carries ``retry_after_ms``),
``deadline_exceeded``, ``draining`` (graceful shutdown in progress —
carries ``retry_after_ms``), and ``internal``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from .tenancy import DEFAULT_TENANT, TENANT_NAME_MAX

#: wire-protocol revision (v2 added ``tenant``); served under ``health``
PROTOCOL_VERSION = 2

#: operations the daemon answers
OPS = ("predict", "predict_many", "whatif", "search", "health")

#: one-line description per op (``repro info`` lists these)
OP_SUMMARIES = {
    "predict": "guarded latency prediction for one stage slice or graph",
    "predict_many": "batched predictions for many slices/graphs at once",
    "whatif": "predicted iteration latency across pipeline schedules",
    "search": "pipeline-depth plan search under the request deadline",
    "health": "readiness/liveness, queue depth, breaker states, counters",
}

ERROR_CODES = ("invalid_request", "unknown_op", "bad_params", "overloaded",
               "rate_limited", "deadline_exceeded", "draining", "internal")

#: hard cap on one request line (a 1 MiB graph is already enormous)
MAX_LINE_BYTES = 1 << 20

#: ceiling on client-supplied deadlines
MAX_DEADLINE_MS = 300_000.0


class ProtocolError(ValueError):
    """A request the daemon must answer with an error response.

    ``req_id`` carries the request's ``id`` when the line parsed far
    enough to extract one, so even rejections stay correlatable on a
    pipelined connection.
    """

    def __init__(self, code: str, message: str, req_id: Any = None) -> None:
        assert code in ERROR_CODES
        super().__init__(message)
        self.code = code
        self.message = message
        self.req_id = req_id


@dataclass
class Request:
    """One parsed, validated request."""

    op: str
    id: Any = None
    params: dict[str, Any] = field(default_factory=dict)
    deadline_ms: float = 0.0
    #: admission-control identity (v2; absent on the wire ⇒ "default")
    tenant: str = DEFAULT_TENANT
    #: monotonic admission / expiry instants, stamped by the parser
    received: float = 0.0
    deadline: float = float("inf")

    def remaining(self, now: float | None = None) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.deadline - (time.monotonic() if now is None else now)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


def parse_request(line: str | bytes,
                  default_deadline_ms: float = 30_000.0) -> Request:
    """Parse one wire line into a :class:`Request` (raises
    :class:`ProtocolError` on anything malformed)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("invalid_request",
                                "request is not valid UTF-8") from None
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("invalid_request",
                            f"request is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError("invalid_request",
                            "request must be a JSON object")
    req_id = data.get("id")
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError("invalid_request",
                            "request needs a string 'op' field", req_id)
    if op not in OPS:
        raise ProtocolError("unknown_op",
                            f"unknown op {op!r}; known: {', '.join(OPS)}",
                            req_id)
    params = data.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("bad_params", "'params' must be an object",
                            req_id)
    deadline_ms = data.get("deadline_ms", default_deadline_ms)
    if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms,
                                                              bool):
        raise ProtocolError("invalid_request",
                            "'deadline_ms' must be a number", req_id)
    deadline_ms = min(max(1.0, float(deadline_ms)), MAX_DEADLINE_MS)
    tenant = data.get("tenant", DEFAULT_TENANT)
    if tenant is None:
        tenant = DEFAULT_TENANT
    if not isinstance(tenant, str):
        raise ProtocolError("invalid_request",
                            "'tenant' must be a string", req_id)
    tenant = tenant.strip() or DEFAULT_TENANT
    if len(tenant) > TENANT_NAME_MAX:
        raise ProtocolError("invalid_request",
                            f"'tenant' exceeds {TENANT_NAME_MAX} chars",
                            req_id)
    now = time.monotonic()
    return Request(op=op, id=req_id, params=params,
                   deadline_ms=deadline_ms, tenant=tenant, received=now,
                   deadline=now + deadline_ms / 1000.0)


# ------------------------------------------------------------- responses
def ok_response(req: Request, result: dict[str, Any], *,
                degraded: bool = False, served_by: str = "model",
                ) -> dict[str, Any]:
    return {
        "id": req.id, "ok": True, "op": req.op,
        "degraded": bool(degraded), "served_by": served_by,
        "t_ms": round((time.monotonic() - req.received) * 1e3, 3),
        "result": result,
    }


def error_response(req_id: Any, code: str, message: str, *,
                   retry_after_ms: float | None = None) -> dict[str, Any]:
    assert code in ERROR_CODES
    out: dict[str, Any] = {
        "id": req_id, "ok": False,
        "error": {"code": code, "message": message},
    }
    if retry_after_ms is not None:
        out["retry_after_ms"] = round(float(retry_after_ms), 1)
    return out


def encode_response(response: dict[str, Any]) -> bytes:
    """One response object → one wire line."""
    return (json.dumps(response, sort_keys=True,
                       default=_json_default) + "\n").encode("utf-8")


def _json_default(obj: Any):
    # numpy scalars and other number-likes leak into results easily;
    # render them instead of crashing the response writer
    for attr in ("item",):
        fn = getattr(obj, attr, None)
        if callable(fn):
            return fn()
    return str(obj)
