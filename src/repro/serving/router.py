"""Replicated-failover front-end for the serving daemon fleet.

``repro serve --router PORT PORT ...`` boots a thin TCP router speaking
the same JSON-lines protocol as the daemon.  It owns no model — it owns
*placement and failover*:

* **consistent-hash routing** — each request is routed by a structural
  hash of ``(op, params)`` over a virtual-node hash ring
  (:class:`HashRing`), so identical questions land on the same replica
  and hit that replica's plan/search caches, while replicas joining or
  leaving only remap ``1/N`` of the key space;
* **health checking** — a background prober sends each replica a cheap
  ``health`` request every ``health_poll_s``; replicas failing the probe
  leave the ring (journaled ``replica_health``), and a restarted replica
  rejoins the moment its probe passes again — no operator action;
* **failover** — a connect, send, read, or deadline error on the chosen
  replica marks it suspect and retries the request **exactly once** on
  the next healthy replica in the ring (every op is a read-only,
  idempotent question, so at-most-once retry cannot double-apply
  anything); the failover is journaled and counted.  If the retry also
  fails the client gets an ``overloaded`` error *response* with a
  jittered ``retry_after_ms`` — never a dropped connection;
* **drain** — SIGTERM stops accepting, finishes in-flight requests, and
  answers late arrivals ``draining`` (same contract as the daemon).

The router forwards request lines verbatim (tenant field included — the
*replica's* admission controller enforces budgets) and relays exactly
one response line per request, so v1 and v2 clients work unchanged.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import signal
import socket
import threading
import time
from dataclasses import dataclass

from ..experiments.manifest import append_event
from .protocol import MAX_LINE_BYTES, encode_response, error_response
from .server import Counters
from .tenancy import jittered_retry_ms


def request_hash(line: bytes) -> int:
    """Structural placement hash of one request line.

    Hashes ``[op, params]`` (canonical JSON) so the same question —
    whatever its ``id``, ``tenant``, or ``deadline_ms`` — maps to the
    same replica and reuses that replica's caches.  Unparseable lines
    hash by their raw bytes (any replica answers the protocol error).
    """
    try:
        data = json.loads(line)
        token = json.dumps([data.get("op"), data.get("params", {})],
                           sort_keys=True).encode()
    except (ValueError, AttributeError):
        token = bytes(line)
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes over the replica set."""

    VNODES = 64

    def __init__(self, replicas: list[tuple[str, int]]) -> None:
        self.replicas = list(replicas)
        points: list[tuple[int, int]] = []
        for idx, (host, port) in enumerate(self.replicas):
            for v in range(self.VNODES):
                digest = hashlib.sha256(
                    f"{host}:{port}/{v}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), idx))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [i for _, i in points]

    def order(self, key: int) -> list[int]:
        """Replica indices in preference order for ``key``: the owning
        vnode's replica first, then the next distinct replicas walking
        the ring clockwise (the failover order)."""
        if not self.replicas:
            return []
        start = bisect.bisect_right(self._points, key) % len(self._points)
        seen: list[int] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.replicas):
                    break
        return seen


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    #: replica health probe period
    health_poll_s: float = 0.25
    #: per-probe and per-connect timeout
    connect_timeout_s: float = 1.0
    #: extra grace past the client deadline before a backend read fails
    deadline_grace_s: float = 2.0
    #: base of the retry_after_ms hint on total failure
    retry_after_ms: float = 50.0
    max_connections: int = 256
    drain_timeout_s: float = 10.0
    idle_timeout_s: float = 60.0
    read_timeout_s: float = 5.0


class _Replica:
    """One backend's address, liveness flag, and counters."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.healthy = True  # optimistic: first probe corrects it
        self.failures = 0
        self.lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"


class ReproRouter:
    """The fleet front-end: route, health-check, fail over, drain."""

    def __init__(self, replicas: list[tuple[str, int]],
                 config: RouterConfig | None = None,
                 journal_root=None) -> None:
        if not replicas:
            raise ValueError("a router needs at least one replica")
        self.config = config or RouterConfig()
        self.journal_root = journal_root
        self.replicas = [_Replica(h, p) for h, p in replicas]
        self.ring = HashRing(replicas)
        self.counters = Counters()
        self._listen: socket.socket | None = None
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._started = threading.Event()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self.draining = False
        self._t0 = time.monotonic()

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        assert self._listen is not None, "router not started"
        return self._listen.getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        append_event(self.journal_root, "router_start",
                     replicas=[r.name for r in self.replicas])
        self._t0 = time.monotonic()
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((self.config.host, self.config.port))
        self._listen.listen(128)
        self._listen.settimeout(0.25)
        for target, name in ((self._accept_loop, "repro-router-accept"),
                             (self._health_loop, "repro-router-health")):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        self._started.set()

    def request_stop(self) -> None:
        self._stopping.set()

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self.request_stop()
        self.draining = True
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.05)
        self._stopped.set()
        if self._listen is not None:
            try:
                self._listen.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        append_event(self.journal_root, "router_stop",
                     uptime_s=round(time.monotonic() - self._t0, 3),
                     counters=self.counters.snapshot())

    def serve_forever(self, install_signals: bool = True) -> int:
        if not self._started.is_set():
            self.start()
        if (install_signals
                and threading.current_thread() is threading.main_thread()):
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, lambda *_: self.request_stop())
        while not self._stopping.is_set():
            time.sleep(0.1)
        self.stop()
        return 0

    # --------------------------------------------------------------- health
    def _probe(self, replica: _Replica) -> bool:
        try:
            with socket.create_connection(
                    (replica.host, replica.port),
                    timeout=self.config.connect_timeout_s) as sock:
                sock.sendall(b'{"op": "health", "deadline_ms": 500}\n')
                sock.settimeout(self.config.connect_timeout_s)
                line = _read_line(sock, time.monotonic()
                                  + self.config.connect_timeout_s)
                if line is None:
                    return False
                return bool(json.loads(line).get("ok"))
        except (OSError, ValueError):
            return False

    def _mark(self, replica: _Replica, healthy: bool, cause: str) -> None:
        with replica.lock:
            changed = replica.healthy != healthy
            replica.healthy = healthy
            if not healthy:
                replica.failures += 1
        if changed:
            self.counters.inc("replica_up" if healthy else "replica_down")
            append_event(self.journal_root, "replica_health",
                         replica=replica.name, healthy=healthy, cause=cause)

    def _health_loop(self) -> None:
        while not self._stopping.is_set():
            for replica in self.replicas:
                self._mark(replica, self._probe(replica), "probe")
            self._stopping.wait(self.config.health_poll_s)

    # ----------------------------------------------------------- connections
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conn_lock:
                too_many = len(self._conns) >= self.config.max_connections
                if not too_many:
                    self._conns.add(conn)
            if too_many:
                self.counters.inc("connections_refused")
                try:
                    conn.sendall(encode_response(error_response(
                        None, "overloaded", "connection limit reached",
                        retry_after_ms=self.config.retry_after_ms * 4)))
                    conn.close()
                except OSError:
                    pass
                continue
            self.counters.inc("connections")
            t = threading.Thread(target=self._connection_loop, args=(conn,),
                                 name="repro-router-conn", daemon=True)
            t.start()

    def _connection_loop(self, conn: socket.socket) -> None:
        conn.settimeout(0.25)
        buf = b""
        last_byte = time.monotonic()
        try:
            while not self._stopped.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    now = time.monotonic()
                    if buf and now - last_byte > self.config.read_timeout_s:
                        self._send(conn, error_response(
                            None, "invalid_request",
                            f"request incomplete after "
                            f"{self.config.read_timeout_s:.1f}s"))
                        return
                    if (not buf
                            and now - last_byte > self.config.idle_timeout_s):
                        return
                    continue
                except OSError:
                    return
                if not chunk:
                    return
                last_byte = time.monotonic()
                buf += chunk
                if len(buf) > MAX_LINE_BYTES:
                    self._send(conn, error_response(
                        None, "invalid_request",
                        f"request exceeds {MAX_LINE_BYTES} bytes"))
                    return
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    self._handle_line(conn, line)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, response: dict) -> bool:
        try:
            conn.sendall(encode_response(response))
            return True
        except OSError:
            self.counters.inc("client_gone")
            return False

    def _send_raw(self, conn: socket.socket, line: bytes) -> bool:
        try:
            conn.sendall(line if line.endswith(b"\n") else line + b"\n")
            return True
        except OSError:
            self.counters.inc("client_gone")
            return False

    # ---------------------------------------------------------------- routing
    @staticmethod
    def _peek(line: bytes) -> tuple:
        """Best-effort (id, op, deadline_ms) without full validation —
        a malformed line still gets routed (the replica answers the
        protocol error)."""
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                return None, None, 30_000.0
            deadline = data.get("deadline_ms", 30_000.0)
            if not isinstance(deadline, (int, float)) \
                    or isinstance(deadline, bool):
                deadline = 30_000.0
            return data.get("id"), data.get("op"), float(deadline)
        except ValueError:
            return None, None, 30_000.0

    def _handle_line(self, conn: socket.socket, line: bytes) -> None:
        req_id, op, deadline_ms = self._peek(line)
        self.counters.inc("accepted")
        if op == "health":
            self._send(conn, {
                "id": req_id, "ok": True, "op": "health", "degraded": False,
                "served_by": "router", "result": self._health()})
            self.counters.inc("answered")
            return
        if self.draining:
            self.counters.inc("refused_draining")
            self._send(conn, error_response(
                req_id, "draining", "router is draining for shutdown",
                retry_after_ms=jittered_retry_ms(
                    1000.0, "router-draining", req_id,
                    self.counters.get("refused_draining"))))
            return
        with self._inflight_lock:
            self._inflight += 1
        try:
            response_line = self._forward(line, req_id, op, deadline_ms)
            if response_line is None:
                self.counters.inc("errors_answered")
                self._send(conn, error_response(
                    req_id, "overloaded",
                    "no healthy replica answered",
                    retry_after_ms=jittered_retry_ms(
                        self.config.retry_after_ms * 4, "router-exhausted",
                        req_id, self.counters.get("accepted"))))
            else:
                self.counters.inc("answered")
                self._send_raw(conn, response_line)
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _forward(self, line: bytes, req_id, op,
                 deadline_ms: float) -> bytes | None:
        """Route ``line`` by its structural hash; one failover retry.

        Returns the replica's raw response line, or ``None`` when both
        the owner and its failover target failed (the caller answers).
        """
        order = self.ring.order(request_hash(line))
        # healthy replicas first, in ring order; suspects as a last resort
        targets = ([i for i in order if self.replicas[i].healthy]
                   or list(order))
        budget_s = deadline_ms / 1000.0 + self.config.deadline_grace_s
        attempts = 0
        first = None
        for idx in targets:
            if attempts >= 2:  # at-most-once retry
                break
            replica = self.replicas[idx]
            attempts += 1
            if first is None:
                first = replica
            elif replica is not first:
                self.counters.inc("failovers")
                append_event(self.journal_root, "failover",
                             op=op, request=req_id,
                             from_replica=first.name, to=replica.name)
            response = self._ask(replica, line, budget_s)
            if response is not None:
                self._mark(replica, True, "answered")
                return response
            self._mark(replica, False,
                       "connect/deadline failure routing a request")
        return None

    def _ask(self, replica: _Replica, line: bytes,
             budget_s: float) -> bytes | None:
        """One request/response round-trip to one replica."""
        try:
            with socket.create_connection(
                    (replica.host, replica.port),
                    timeout=self.config.connect_timeout_s) as sock:
                sock.sendall(line if line.endswith(b"\n") else line + b"\n")
                sock.settimeout(0.25)
                return _read_line(sock, time.monotonic() + budget_s)
        except OSError:
            return None

    # ---------------------------------------------------------------- health
    def _health(self) -> dict:
        status = ("draining" if self.draining
                  else "ready" if self._started.is_set() else "starting")
        healthy = [r.name for r in self.replicas if r.healthy]
        return {
            "status": status,
            "ready": status == "ready" and bool(healthy),
            "live": True,
            "router": True,
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "replicas": {
                r.name: {"healthy": r.healthy, "failures": r.failures}
                for r in self.replicas
            },
            "healthy_replicas": len(healthy),
            "counters": self.counters.snapshot(),
        }


def _read_line(sock: socket.socket, deadline: float) -> bytes | None:
    """Read one ``\\n``-terminated line, or ``None`` on EOF/timeout."""
    buf = b""
    while time.monotonic() < deadline:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            continue
        except OSError:
            return None
        if not chunk:
            return None
        buf += chunk
        if b"\n" in buf:
            return buf.split(b"\n", 1)[0] + b"\n"
        if len(buf) > MAX_LINE_BYTES:
            return None
    return None
