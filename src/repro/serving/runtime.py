"""The daemon's predictor runtime: one loaded model family + mesh.

Built once at startup (``repro serve``), then shared by every request
thread.  It owns:

* the benchmark **model / clustering / profiler** the service answers
  questions about;
* a fitted **ensemble** — loaded from ``--checkpoint`` files or fitted
  in-process from a profiled startup corpus — guarded by the PR-4 trust
  layer (:func:`repro.predictors.trust.assess`);
* the calibrated **analytical estimator**, which is both the trust
  layer's bounds oracle and the degradation path the circuit breaker
  flips to;
* **fault hooks** (``predictor_error`` / ``predict_garbage``) keyed on a
  model-call counter, so chaos specs deterministically poison the model
  path of a serial request stream;
* a **model lock** — the nn forward stack and ensemble bookkeeping are
  not reentrant, so model-path calls serialize; the analytical path is
  lock-free and stays fast under degradation (exactly when it matters).

Request-shaped helpers (:meth:`PredictorRuntime.resolve_graphs`,
:meth:`whatif`, :meth:`evaluate_candidate`) raise
:class:`~repro.serving.protocol.ProtocolError` on bad parameters so the
server can answer rather than crash.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..cluster.mesh import DeviceMesh, logical_views
from ..cluster.platforms import MESH_CONFIGS, PLATFORMS, get_platform
from ..core.sampling import stratified_sample
from ..ir.graph import Graph
from ..ir.serialize import canonical_hash, graph_from_dict
from ..models.clustering import Clustering, cluster_layers
from ..models.configs import BENCHMARKS, benchmark_config
from ..models.model import build_model
from ..predictors.analytical import AnalyticalPredictor
from ..predictors.dataset import StageSample
from ..predictors.serialize import load_predictor
from ..predictors.trainer import TrainConfig
from ..predictors.trust import (EnsemblePredictor, FeatureStats, TrustConfig,
                                assess)
from ..runtime.profiler import StageProfiler
from ..runtime.schedules import get_schedule, schedule_names
from .protocol import ProtocolError

#: upper bound on graphs per predict_many / whatif / search candidate
MAX_BATCH_GRAPHS = 64


@dataclass(frozen=True)
class RuntimeConfig:
    """What the daemon loads and how (CLI flags map 1:1)."""

    family: str = "gpt"
    layers: int = 2
    platform: str = "platform2"
    mesh: int = 2
    units: int = 4
    seed: int = 0
    predictor: str = "dag_transformer"
    sample_fraction: float = 0.5
    #: startup-fit epochs (ignored when checkpoints are given)
    epochs: int = 8
    checkpoints: tuple[str, ...] = ()
    trust: TrustConfig = field(default_factory=lambda: TrustConfig(
        enabled=True, ensemble_size=1))
    schedule: str = "1f1b"

    def __post_init__(self) -> None:
        if self.family not in BENCHMARKS:
            raise ValueError(f"unknown family {self.family!r}")
        if self.platform not in PLATFORMS:
            raise ValueError(f"unknown platform {self.platform!r}")
        if self.mesh not in MESH_CONFIGS:
            raise ValueError(f"unknown mesh config {self.mesh!r}")


class PredictorRuntime:
    """Loaded-once prediction state shared by all request threads."""

    def __init__(
        self,
        model,
        clustering: Clustering,
        profiler: StageProfiler,
        mesh: DeviceMesh,
        ensemble: EnsemblePredictor | None,
        analytical: AnalyticalPredictor,
        trust: TrustConfig,
        config: RuntimeConfig,
    ) -> None:
        self.model = model
        self.clustering = clustering
        self.profiler = profiler
        self.mesh = mesh
        self.ensemble = ensemble
        self.analytical = analytical
        self.trust = trust
        self.config = config
        self.model_lock = threading.RLock()
        self._model_calls = 0
        #: bumped on every ensemble reload; cache keys embed it so a
        #: hot-swapped model invalidates cached search answers for free
        self.generation = 0
        self._structural_hash: str | None = None

    # --------------------------------------------------------------- build
    @classmethod
    def build(cls, cfg: RuntimeConfig) -> "PredictorRuntime":
        """Profile the startup corpus, then load or fit the ensemble.

        The corpus (a stratified sample of the clustering's stage
        slices, each profiled at its optimal logical view) calibrates
        the analytical estimator and records the OOD feature ranges;
        without ``checkpoints`` it also trains the serving ensemble.
        """
        model = build_model(benchmark_config(cfg.family, cfg.layers or None))
        clustering = cluster_layers(model, cfg.units)
        profiler = StageProfiler(model, aggressive_fusion=True)
        mesh = get_platform(cfg.platform).mesh(cfg.mesh)

        slices = stratified_sample(clustering.all_slices(),
                                   cfg.sample_fraction, cfg.seed)
        profiled = []
        for (s, e) in slices:
            best = None
            for lv in logical_views(mesh):
                p = profiler.profile_stage(s, e, mesh, lv.dp, lv.mp)
                if best is None or p.latency < best.latency:
                    best = p
            profiled.append(best)
        samples = [StageSample(p.graph, p.latency, p.stage_id)
                   for p in profiled]
        analytical = AnalyticalPredictor(mesh.gpu)
        analytical.fit(samples, [])
        feature_stats = FeatureStats.fit([s.graph for s in samples])

        if cfg.checkpoints:
            members = [load_predictor(path) for path in cfg.checkpoints]
            ensemble = EnsemblePredictor.from_members(members, feature_stats)
        else:
            size = cfg.trust.ensemble_size if cfg.trust.enabled else 1
            ensemble = EnsemblePredictor(cfg.predictor, seed=cfg.seed,
                                         size=size)
            rng = np.random.default_rng(cfg.seed)
            order = rng.permutation(len(samples))
            n_val = max(1, len(samples) // 10)
            fit = ensemble.fit(
                [samples[i] for i in order[n_val:]],
                [samples[i] for i in order[:n_val]],
                TrainConfig(epochs=cfg.epochs, patience=cfg.epochs,
                            batch_size=8, lr=2e-3, seed=cfg.seed))
            ensemble.feature_stats = feature_stats
            if fit.degraded:
                # every member diverged: analytical-only service (the
                # breaker will observe the dead model path and stay open)
                ensemble = None
        return cls(model, clustering, profiler, mesh, ensemble, analytical,
                   cfg.trust, cfg)

    def describe(self) -> dict:
        return {
            "family": self.config.family,
            "layers": self.config.layers,
            "platform": self.config.platform,
            "mesh": self.config.mesh,
            "units": self.clustering.n_units,
            "predictor": self.config.predictor,
            "members": len(self.ensemble.members) if self.ensemble else 0,
            "checkpoints": list(self.config.checkpoints),
            "schedule": self.config.schedule,
        }

    # ------------------------------------------------------ graph resolution
    def _slice_graph(self, pair, microbatch=None) -> Graph:
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(x, int) and not isinstance(x, bool)
                           for x in pair)):
            raise ProtocolError("bad_params",
                                f"a slice must be [unit_start, unit_end], "
                                f"got {pair!r}")
        u0, u1 = pair
        n = self.clustering.n_units
        if not (0 <= u0 < u1 <= n):
            raise ProtocolError("bad_params",
                                f"slice [{u0}, {u1}) outside the model's "
                                f"{n} clustering units")
        s, e = self.clustering.slice_range(u0, u1)
        return self.profiler.predictor_graph(s, e, microbatch)

    def _dict_graph(self, data) -> Graph:
        if not isinstance(data, dict):
            raise ProtocolError("bad_params", "'graph' must be an object")
        try:
            g = graph_from_dict(data)
            g.validate()
        except ProtocolError:
            raise
        except Exception as exc:  # malformed payloads must not crash us
            raise ProtocolError("bad_params",
                                f"bad graph payload: {exc}") from None
        return g

    def resolve_graphs(self, params: dict, many: bool) -> list[Graph]:
        """The graphs a predict/predict_many request asks about."""
        microbatch = params.get("microbatch")
        if microbatch is not None and (not isinstance(microbatch, int)
                                       or isinstance(microbatch, bool)
                                       or microbatch < 1):
            raise ProtocolError("bad_params",
                                "'microbatch' must be a positive integer")
        graphs: list[Graph] = []
        if many:
            for pair in params.get("slices", ()):
                graphs.append(self._slice_graph(pair, microbatch))
            for data in params.get("graphs", ()):
                graphs.append(self._dict_graph(data))
        else:
            if "slice" in params:
                graphs.append(self._slice_graph(params["slice"], microbatch))
            elif "graph" in params:
                graphs.append(self._dict_graph(params["graph"]))
            else:
                graphs.append(self._slice_graph(
                    [0, self.clustering.n_units], microbatch))
        if not graphs:
            raise ProtocolError("bad_params",
                                "nothing to predict: give 'slices' and/or "
                                "'graphs'")
        if len(graphs) > MAX_BATCH_GRAPHS:
            raise ProtocolError("bad_params",
                                f"at most {MAX_BATCH_GRAPHS} graphs per "
                                f"request (got {len(graphs)})")
        return graphs

    # ------------------------------------------------------------ predicting
    def predict_batch(self, graphs: list[Graph], use_model: bool,
                      ) -> tuple[list[dict], int, str]:
        """Predict all graphs → (per-graph results, n_suspect, served_by).

        ``use_model=False`` (breaker open / model dead) serves the
        calibrated analytical estimate.  The model path may raise — an
        injected ``predictor_error``, a dead ensemble — and the *caller*
        decides whether to retry, degrade, or fail the request.
        """
        if not use_model or self.ensemble is None:
            return self._analytical_batch(graphs), 0, "analytical"
        with self.model_lock:
            idx = self._model_calls
            self._model_calls += 1
            faults.fire("predictor_error", idx)
            mean, std, ood = self.ensemble.predict_many(graphs)
            rule = faults.check("predict_garbage", idx)
            if rule is not None:
                mean = faults.garbage_predictions(mean, idx, rule)
        ana = self.analytical.predict_graphs(graphs)
        results, suspect = [], 0
        for k in range(len(graphs)):
            guarded = assess(float(mean[k]), float(std[k]), float(ood[k]),
                             float(ana[k]), self.trust)
            if not guarded.trusted:
                suspect += 1
            results.append({
                "latency_s": guarded.value,
                "raw": guarded.raw,
                "std": guarded.std,
                "ood": guarded.ood,
                "verdict": guarded.verdict,
                "bounds_s": [guarded.lower, guarded.upper],
            })
        return results, suspect, "model"

    def _analytical_batch(self, graphs: list[Graph]) -> list[dict]:
        values = self.analytical.predict_graphs(graphs)
        return [{"latency_s": float(v), "raw": float(v), "std": 0.0,
                 "ood": 0.0, "verdict": "analytical",
                 "bounds_s": [float(v) / self.trust.alpha,
                              float(v) * self.trust.alpha]}
                for v in values]

    # --------------------------------------------------------------- whatif
    def _partition(self, n_stages: int) -> list[tuple[int, int]]:
        n = self.clustering.n_units
        if not (1 <= n_stages <= n):
            raise ProtocolError("bad_params",
                                f"'n_stages' must be in [1, {n}]")
        bounds = [round(i * n / n_stages) for i in range(n_stages + 1)]
        return [(bounds[i], bounds[i + 1]) for i in range(n_stages)
                if bounds[i] < bounds[i + 1]]

    @staticmethod
    def _int_param(params: dict, key: str, default: int, lo: int) -> int:
        value = params.get(key, default)
        if (not isinstance(value, int) or isinstance(value, bool)
                or value < lo):
            raise ProtocolError("bad_params",
                                f"{key!r} must be an integer >= {lo}")
        return value

    def whatif(self, params: dict, use_model: bool,
               ) -> tuple[dict, int, str]:
        """Predicted iteration latency of one stage partition across
        pipeline schedules (a cheap Daydream-style schedule what-if)."""
        n_micro = self._int_param(params, "n_microbatches", 8, 1)
        n_stages = self._int_param(params, "n_stages",
                                   min(2, self.clustering.n_units), 1)
        schedules = params.get("schedules") or list(schedule_names())
        if (not isinstance(schedules, list)
                or not all(isinstance(s, str) for s in schedules)):
            raise ProtocolError("bad_params",
                                "'schedules' must be a list of names")
        unknown = [s for s in schedules if s not in schedule_names()]
        if unknown:
            raise ProtocolError("bad_params",
                                f"unknown schedule(s) {unknown}; known: "
                                f"{', '.join(schedule_names())}")
        units = self._partition(n_stages)
        graphs = [self._slice_graph(pair) for pair in units]
        preds, suspect, served_by = self.predict_batch(graphs, use_model)
        stage_lat = [p["latency_s"] for p in preds]
        latencies = {name: get_schedule(name).closed_form(stage_lat, n_micro)
                     for name in schedules}
        best = min(latencies, key=latencies.get)
        result = {
            "n_stages": len(units),
            "n_microbatches": n_micro,
            "stage_latencies_s": stage_lat,
            "iteration_latency_s": latencies,
            "best_schedule": best,
            "suspect": suspect,
        }
        return result, suspect, served_by

    # --------------------------------------------------------------- search
    def search_candidates(self, params: dict) -> list[int]:
        counts = params.get("stage_counts")
        if counts is None:
            return list(range(1, self.clustering.n_units + 1))
        if (not isinstance(counts, list) or not counts
                or not all(isinstance(k, int) and not isinstance(k, bool)
                           and 1 <= k <= self.clustering.n_units
                           for k in counts)):
            raise ProtocolError(
                "bad_params",
                f"'stage_counts' must be a non-empty list of integers in "
                f"[1, {self.clustering.n_units}]")
        return sorted(set(counts))

    def structural_hash(self) -> str:
        """Canonical hash of the full-model predictor graph — the same
        structural identity ``plan_cache`` keys on — memoized because
        the loaded model never changes shape in-process."""
        if self._structural_hash is None:
            s, e = self.clustering.slice_range(0, self.clustering.n_units)
            graph = self.profiler.predictor_graph(s, e)
            self._structural_hash = canonical_hash(graph)
        return self._structural_hash

    def search_key(self, candidates: list[int], n_micro: int,
                   schedule: str) -> tuple:
        """Cache key identifying one search answer: structural graph
        hash + mesh + schedule + the exact candidate set, stamped with
        the ensemble generation (a reload invalidates every entry)."""
        return (self.structural_hash(), self.mesh.key(), schedule,
                tuple(candidates), n_micro, self.generation)

    def search_schedule(self, params: dict) -> str:
        schedule = params.get("schedule", self.config.schedule)
        if schedule not in schedule_names():
            raise ProtocolError("bad_params",
                                f"unknown schedule {schedule!r}; known: "
                                f"{', '.join(schedule_names())}")
        return schedule

    def evaluate_candidate(self, spec: tuple) -> dict:
        """One search candidate → its predicted plan (picklable).

        Runs inside a supervised worker fork for real searches (killable
        past the request deadline, crash-retried), or inline for the
        degraded analytical fallback.
        """
        n_stages, n_micro, schedule, use_model = spec
        units = self._partition(n_stages)
        graphs = [self._slice_graph(pair) for pair in units]
        preds, suspect, served_by = self.predict_batch(graphs, use_model)
        stage_lat = [p["latency_s"] for p in preds]
        latency = get_schedule(schedule).closed_form(stage_lat, n_micro)
        return {
            "n_stages": len(units),
            "stage_units": [list(pair) for pair in units],
            "stage_latencies_s": stage_lat,
            "iteration_latency_s": latency,
            "suspect": suspect,
            "served_by": served_by,
        }

    # --------------------------------------------------------------- reload
    def reload(self, checkpoints: tuple[str, ...]) -> None:
        """Supervised in-place swap to freshly loaded checkpoint members.

        Loading happens fully off to the side; only a successful load
        takes the lock and swaps, so a torn/corrupt checkpoint can never
        take down the serving ensemble (the caller journals the failure).
        """
        members = [load_predictor(path) for path in checkpoints]
        stats = self.ensemble.feature_stats if self.ensemble else None
        fresh = EnsemblePredictor.from_members(members, stats)
        with self.model_lock:
            self.ensemble = fresh
            self.generation += 1
