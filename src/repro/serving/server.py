"""The resilient PredTOP serving daemon (``repro serve``).

A threaded JSON-lines TCP server wrapping one
:class:`~repro.serving.runtime.PredictorRuntime`.  The robustness core:

* **admission control + backpressure** — predictions enter the bounded
  micro-batcher queue, what-if/search jobs a bounded executor queue; a
  full queue answers ``overloaded`` with ``retry_after_ms`` (load shed,
  never a silent drop), and sustained saturation force-opens the predict
  breaker so the cheap analytical path drains the backlog;
* **per-request deadlines** — every request carries ``deadline_ms``;
  expired work is answered ``deadline_exceeded`` instead of running, and
  searches fan their candidates through :func:`supervised_map` with
  per-candidate timeouts so a hung or crashed candidate costs a retry /
  a partial answer, never a hung connection;
* **circuit breakers** (:mod:`repro.serving.breaker`) per route —
  suspect-verdict bursts, throwing predictors, crashed search workers,
  and queue saturation flip the route to the analytical estimator
  (answers flagged ``degraded``), with half-open probing for recovery;
  every transition is journaled to the run manifest;
* **lifecycle** — startup runs ``reap_stale()`` and reports quarantined
  cache shards; ``health`` serves readiness/liveness inline (never
  queued, so it works under overload); SIGTERM drains gracefully
  (in-flight requests finish, new ones get ``draining``); an optional
  watcher reloads ``--checkpoint`` files in place when they change,
  keeping the old ensemble on a torn load.

Slow-loris defense: a connection that dribbles a partial request slower
than ``read_timeout_s`` is reaped; request lines are capped at
``MAX_LINE_BYTES``.  Malformed payloads get an error *response* — the
connection survives.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from .. import faults
from ..experiments.manifest import append_event
from .batcher import MicroBatcher, _Pending
from .breaker import BreakerConfig, CircuitBreaker
from .protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError,
                       Request, encode_response, error_response, ok_response,
                       parse_request)
from .runtime import PredictorRuntime
from .tenancy import (AdmissionController, FairQueue, TenancyConfig,
                      jittered_retry_ms)

#: cached search answers kept per daemon (small: one entry per distinct
#: (model, mesh, schedule, candidate-set) a client keeps re-asking about)
SEARCH_CACHE_SIZE = 128


@dataclass(frozen=True)
class ServerConfig:
    """Daemon knobs (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    #: executor threads for whatif/search
    workers: int = 2
    #: bounded executor queue (admission control)
    max_queue: int = 32
    #: bounded batcher queue
    max_batch_queue: int = 256
    max_batch: int = 32
    batch_window_ms: float = 4.0
    default_deadline_ms: float = 30_000.0
    #: base of the shed responses' retry_after_ms hint
    retry_after_ms: float = 25.0
    #: consecutive sheds that force-open the predict breaker
    shed_trip: int = 32
    #: partial-request (slow-loris) read deadline
    read_timeout_s: float = 5.0
    #: idle-connection reap
    idle_timeout_s: float = 60.0
    max_connections: int = 256
    drain_timeout_s: float = 15.0
    #: poll checkpoints for in-place reload (0 = off)
    reload_poll_s: float = 0.0
    #: supervised retries per search candidate
    search_retries: int = 1
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: per-tenant budgets (None = REPRO_TENANT_* env defaults, which are
    #: unlimited when unset — the v1 single-tenant daemon's behavior)
    tenancy: TenancyConfig | None = None
    #: this daemon's position in a router fleet (fault site
    #: ``replica_slow`` keys on it; 0 for a standalone daemon)
    replica_ordinal: int = 0


class Counters:
    """Thread-safe monotonic counters for the health endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + n

    def get(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._values.items()))


class _Job:
    """One queued executor request plus its reply slot."""

    __slots__ = ("request", "done", "response")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.done = threading.Event()
        self.response: dict | None = None

    def resolve(self, response: dict) -> None:
        self.response = response
        self.done.set()


class ReproServer:
    """The daemon: one runtime, many connections, bounded work."""

    def __init__(self, runtime: PredictorRuntime,
                 config: ServerConfig | None = None,
                 journal_root=None) -> None:
        self.runtime = runtime
        self.config = config or ServerConfig()
        self.journal_root = journal_root
        self.counters = Counters()
        self.breakers = {
            route: CircuitBreaker(route, self.config.breaker,
                                  journal_root=journal_root)
            for route in ("predict", "whatif", "search")
        }
        tenancy = (self.config.tenancy if self.config.tenancy is not None
                   else TenancyConfig.from_env())
        self.admission = AdmissionController(tenancy,
                                             journal_root=journal_root)
        self.batcher = MicroBatcher(
            runtime, self.breakers["predict"],
            max_batch=self.config.max_batch,
            window_ms=self.config.batch_window_ms,
            max_queue=self.config.max_batch_queue,
            on_batch=self._on_batch,
            weight_of=tenancy.weight_of,
            max_queued_of=tenancy.max_queued_of)
        self._exec_queue: FairQueue = FairQueue(
            max(1, self.config.max_queue),
            weight_of=tenancy.weight_of,
            max_queued_of=tenancy.max_queued_of)
        self._search_cache: OrderedDict[tuple, dict] = OrderedDict()
        self._search_cache_lock = threading.Lock()
        self._listen: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._consecutive_sheds = 0
        #: stable callable identity for the engine's persistent pool
        self._search_task = runtime.evaluate_candidate
        self._search_lock = threading.Lock()
        self._started = threading.Event()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self.draining = False
        self._t0 = time.monotonic()

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        assert self._listen is not None, "server not started"
        return self._listen.getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        """Bind, spawn the worker threads, and become ready."""
        from ..experiments.cache import global_cache

        append_event(self.journal_root, "serve_start", pid=os.getpid(),
                     runtime=self.runtime.describe())
        # startup hygiene: reap orphaned temp/lock files, surface any
        # quarantined shards (corrupted results must be visible, not
        # silently rebuilt behind the daemon's back)
        cache = global_cache()
        if cache.root is not None:
            reaped = cache.reap_stale()
            quarantined = [str(p) for p in cache.quarantined()]
            if reaped or quarantined:
                append_event(self.journal_root, "serve_hygiene",
                             reaped=reaped, quarantined=quarantined)
        self._t0 = time.monotonic()
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((self.config.host, self.config.port))
        self._listen.listen(128)
        self._listen.settimeout(0.25)
        self.batcher.start()
        for i in range(max(1, self.config.workers)):
            t = threading.Thread(target=self._executor_loop,
                                 name=f"repro-serve-exec-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._accept_loop,
                             name="repro-serve-accept", daemon=True)
        t.start()
        self._threads.append(t)
        if (self.config.reload_poll_s > 0
                and self.runtime.config.checkpoints):
            t = threading.Thread(target=self._reload_loop,
                                 name="repro-serve-reload", daemon=True)
            t.start()
            self._threads.append(t)
        self._started.set()
        append_event(self.journal_root, "serve_ready",
                     host=self.address[0], port=self.port)

    def request_stop(self) -> None:
        """Begin a graceful drain (idempotent, signal-safe)."""
        self._stopping.set()

    def stop(self) -> None:
        """Drain and shut down: refuse new work, finish in-flight."""
        if self._stopped.is_set():
            return
        self.request_stop()
        self.draining = True
        append_event(self.journal_root, "serve_drain",
                     inflight=self._inflight,
                     exec_depth=self._exec_queue.qsize(),
                     batch_depth=self.batcher.depth)
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self._inflight_lock:
                idle = (self._inflight == 0
                        and self._exec_queue.empty()
                        and self.batcher.depth == 0)
            if idle:
                break
            time.sleep(0.05)
        self.batcher.stop()
        self._exec_queue.close()
        self._stopped.set()
        if self._listen is not None:
            try:
                self._listen.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self.admission.journal_snapshot(self._queue_depths())
        append_event(self.journal_root, "serve_stop",
                     uptime_s=round(time.monotonic() - self._t0, 3),
                     counters=self.counters.snapshot())

    def kill(self) -> None:
        """Hard stop *without* drain — the in-process stand-in for a
        replica crash (``replica_down`` chaos): the listener and every
        live connection drop mid-flight, exactly what the router's
        failover path must absorb."""
        self._stopping.set()
        self._stopped.set()
        if self._listen is not None:
            try:
                self._listen.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self._exec_queue.close()
        self.batcher.stop(drain_timeout=1.0)

    def serve_forever(self, install_signals: bool = True) -> int:
        """Run until SIGTERM/SIGINT (or :meth:`request_stop`), drain,
        exit 0."""
        if not self._started.is_set():
            self.start()
        if (install_signals
                and threading.current_thread() is threading.main_thread()):
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, lambda *_: self.request_stop())
        while not self._stopping.is_set():
            time.sleep(0.1)
        self.stop()
        return 0

    # ----------------------------------------------------------- accept loop
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conn_lock:
                too_many = len(self._conns) >= self.config.max_connections
                if not too_many:
                    self._conns.add(conn)
            if too_many:
                self.counters.inc("connections_refused")
                try:
                    conn.sendall(encode_response(error_response(
                        None, "overloaded", "connection limit reached",
                        retry_after_ms=self.config.retry_after_ms * 4)))
                    conn.close()
                except OSError:
                    pass
                continue
            self.counters.inc("connections")
            t = threading.Thread(target=self._connection_loop, args=(conn,),
                                 name="repro-serve-conn", daemon=True)
            t.start()

    # ------------------------------------------------------- connection loop
    def _connection_loop(self, conn: socket.socket) -> None:
        conn.settimeout(0.25)
        buf = b""
        last_byte = time.monotonic()
        try:
            while not self._stopped.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    now = time.monotonic()
                    if buf and now - last_byte > self.config.read_timeout_s:
                        # slow-loris: a partial request dribbling in
                        self.counters.inc("slowloris_reaped")
                        self._send(conn, error_response(
                            None, "invalid_request",
                            f"request incomplete after "
                            f"{self.config.read_timeout_s:.1f}s"))
                        return
                    if (not buf
                            and now - last_byte > self.config.idle_timeout_s):
                        return
                    continue
                except OSError:
                    return
                if not chunk:
                    return  # peer closed (conn_drop lands here)
                last_byte = time.monotonic()
                buf += chunk
                if len(buf) > MAX_LINE_BYTES:
                    self.counters.inc("oversized_requests")
                    self._send(conn, error_response(
                        None, "invalid_request",
                        f"request exceeds {MAX_LINE_BYTES} bytes"))
                    return
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    self._handle_line(conn, line)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, response: dict) -> bool:
        try:
            conn.sendall(encode_response(response))
            return True
        except OSError:
            # the client vanished mid-reply; the answer was produced, so
            # this is the client's fault, not an unanswered request
            self.counters.inc("client_gone")
            return False

    def _enter(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _exit(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def _handle_line(self, conn: socket.socket, line: bytes) -> None:
        try:
            req = parse_request(line, self.config.default_deadline_ms)
        except ProtocolError as exc:
            self.counters.inc("bad_requests")
            self._send(conn, error_response(exc.req_id, exc.code,
                                            exc.message))
            return
        self.counters.inc("accepted")
        self.counters.inc(f"op_{req.op}")
        if req.op == "health":
            # liveness must work under overload and drain: inline, unqueued
            self._send(conn, ok_response(req, self._health(),
                                         served_by="server"))
            self.counters.inc("answered")
            return
        if self.draining:
            self.counters.inc("refused_draining")
            self._send(conn, error_response(
                req.id, "draining", "server is draining for shutdown",
                retry_after_ms=jittered_retry_ms(
                    1000.0, "draining", req.tenant, req.id,
                    self.counters.get("refused_draining"))))
            return
        retry = self.admission.admit(req.tenant, req.op, req.id)
        if retry is not None:
            self.counters.inc("rate_limited")
            self._send(conn, error_response(
                req.id, "rate_limited",
                f"tenant {req.tenant!r} is over budget",
                retry_after_ms=retry))
            return
        # gray-failure chaos: this replica answers health fast but
        # serves real work slowly (the router must fail over on the
        # request deadline, not the health check)
        slow = faults.check("replica_slow", self.config.replica_ordinal)
        if slow is not None:
            time.sleep(min(slow.secs, max(0.0, req.remaining()) + 0.1))
        self._enter()
        try:
            response = self._dispatch(req)
        except ProtocolError as exc:
            self.counters.inc("errors")
            response = error_response(req.id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - answer, never drop
            self.counters.inc("internal_errors")
            response = error_response(req.id, "internal",
                                      f"{type(exc).__name__}: {exc}")
        finally:
            self._exit()
            self.admission.release(req.tenant)
        self.counters.inc("answered")
        if not response.get("ok"):
            self.counters.inc("errors_answered")
        elif response.get("degraded"):
            self.counters.inc("degraded_answers")
        self._send(conn, response)

    # --------------------------------------------------------------- routing
    def _retry_after(self, depth: int, capacity: int) -> float:
        return self.config.retry_after_ms * (1.0 + depth / max(1, capacity))

    def _shed(self, req: Request, where: str, depth: int,
              capacity: int) -> dict:
        self.counters.inc("shed")
        self.admission.record_shed(req.tenant)
        self._consecutive_sheds += 1
        if (self._consecutive_sheds >= self.config.shed_trip
                and self.breakers["predict"].state == "closed"):
            # sustained saturation: flip predictions to the cheap
            # analytical path so the backlog can actually drain
            self.breakers["predict"].force_open(
                f"queue saturated ({self._consecutive_sheds} consecutive "
                f"sheds)")
        return error_response(
            req.id, "overloaded", f"{where} queue full",
            retry_after_ms=jittered_retry_ms(
                self._retry_after(depth, capacity), "shed", where,
                req.tenant, req.id, self.counters.get("shed")))

    def _dispatch(self, req: Request) -> dict:
        if req.expired:
            self.counters.inc("deadline_exceeded")
            return error_response(req.id, "deadline_exceeded",
                                  "deadline expired before execution")
        if req.op in ("predict", "predict_many"):
            graphs = self.runtime.resolve_graphs(req.params,
                                                 many=req.op == "predict_many")
            pending = _Pending(req, graphs)
            if not self.batcher.submit(pending):
                return self._shed(req, "prediction", self.batcher.depth,
                                  self.config.max_batch_queue)
            self._consecutive_sheds = 0
            response = pending.wait(max(0.0, req.remaining()) + 30.0)
            if response is None:  # pragma: no cover - batcher wedged
                return error_response(req.id, "internal",
                                      "prediction batch never completed")
            if not response.get("ok"):
                self.counters.inc("deadline_exceeded")
            return response
        # whatif / search go through the bounded fair executor queue
        job = _Job(req)
        if not self._exec_queue.put_nowait(req.tenant, job):
            return self._shed(req, "executor", self._exec_queue.qsize(),
                              self.config.max_queue)
        self._consecutive_sheds = 0
        response = job.done.wait(max(0.0, req.remaining()) + 60.0)
        if not response:  # pragma: no cover - executor wedged
            return error_response(req.id, "internal",
                                  "executor never completed the request")
        return job.response

    # -------------------------------------------------------------- executor
    def _executor_loop(self) -> None:
        while True:
            job = self._exec_queue.get(timeout=0.25)
            if job is None:
                if self._stopped.is_set():
                    return
                continue
            req = job.request
            try:
                if req.expired:
                    self.counters.inc("deadline_exceeded")
                    job.resolve(error_response(
                        req.id, "deadline_exceeded",
                        f"request expired after {req.deadline_ms:.0f} ms "
                        f"in queue"))
                elif req.op == "whatif":
                    job.resolve(self._handle_whatif(req))
                else:
                    job.resolve(self._handle_search(req))
            except ProtocolError as exc:
                job.resolve(error_response(req.id, exc.code, exc.message))
            except Exception as exc:  # noqa: BLE001 - answer, never drop
                self.counters.inc("internal_errors")
                job.resolve(error_response(
                    req.id, "internal", f"{type(exc).__name__}: {exc}"))

    def _handle_whatif(self, req: Request) -> dict:
        breaker = self.breakers["whatif"]
        use_model = breaker.allow_model()
        try:
            result, suspect, served_by = self.runtime.whatif(req.params,
                                                             use_model)
        except ProtocolError:
            raise
        except Exception as exc:  # noqa: BLE001 - degrade to analytical
            if use_model:
                breaker.record(False, f"{type(exc).__name__}: {exc}")
            result, _, served_by = self.runtime.whatif(req.params, False)
        else:
            if served_by == "model":
                breaker.record(suspect == 0,
                               f"{suspect} suspect verdict(s)"
                               if suspect else "")
        return ok_response(req, result, degraded=served_by != "model",
                           served_by=served_by)

    def _handle_search(self, req: Request) -> dict:
        from ..experiments.engine import supervised_map

        candidates = self.runtime.search_candidates(req.params)
        schedule = self.runtime.search_schedule(req.params)
        n_micro = self.runtime._int_param(req.params, "n_microbatches", 8, 1)
        # repeated what-if searches are common (dashboards, sweeps
        # re-asking the same question); the structural key makes them
        # O(1) instead of a supervised fan-out
        key = self.runtime.search_key(candidates, n_micro, schedule)
        with self._search_cache_lock:
            cached = self._search_cache.get(key)
            if cached is not None:
                self._search_cache.move_to_end(key)
        if cached is not None:
            self.counters.inc("search_cache_hits")
            return ok_response(req, dict(cached["result"], cached=True),
                               degraded=cached["degraded"],
                               served_by=cached["served_by"])
        breaker = self.breakers["search"]
        use_model = breaker.allow_model()

        def _analytical_plan(partial: bool, note: str) -> dict:
            evals = [self.runtime.evaluate_candidate(
                (k, n_micro, schedule, False)) for k in candidates]
            best = min(evals, key=lambda d: d["iteration_latency_s"])
            return ok_response(req, {
                "best": best, "candidates": evals, "schedule": schedule,
                "n_microbatches": n_micro, "partial": partial,
                "failed_candidates": 0, "note": note,
            }, degraded=True, served_by="analytical")

        if not use_model:
            return _analytical_plan(False, "circuit breaker open")

        specs = [(k, n_micro, schedule, True) for k in candidates]
        remaining = req.remaining()
        if remaining <= 0:
            self.counters.inc("deadline_exceeded")
            return error_response(req.id, "deadline_exceeded",
                                  "deadline expired before the search ran")
        # candidates fan out under the supervisor: a hung or crashed
        # candidate is killed at its share of the deadline, retried, and
        # at worst dropped from the plan (partial answer, not a hang)
        per_cell = max(0.2, remaining * 0.8 / len(specs))
        with self._search_lock:
            outcome = supervised_map(
                self._search_task, specs,
                jobs=min(2, len(specs)),
                timeout=per_cell,
                retries=self.config.search_retries,
                backoff=0.01,
                labels=[f"serve/search/k{k}" for k in candidates],
                manifest_root=self.journal_root,
                run_id=f"serve-{os.getpid()}")
        completed = [r for r in outcome.results if r is not None]
        failed = len(outcome.failures)
        breaker.record(
            failed == 0,
            "; ".join(f"{f.label}: {f.failure_class}"
                      for f in outcome.failures[:3]))
        if not completed:
            return _analytical_plan(True,
                                    "every candidate failed under the "
                                    "deadline; analytical fallback")
        best = min(completed, key=lambda d: d["iteration_latency_s"])
        degraded = any(r["served_by"] != "model" for r in completed)
        result = {
            "best": best, "candidates": completed, "schedule": schedule,
            "n_microbatches": n_micro, "partial": failed > 0,
            "failed_candidates": failed,
        }
        served_by = "model" if not degraded else "analytical"
        if failed == 0 and not degraded:
            # only complete, undegraded answers are worth replaying; a
            # reload bumps the runtime generation and thus the key
            with self._search_cache_lock:
                self._search_cache[key] = {"result": result,
                                           "degraded": degraded,
                                           "served_by": served_by}
                while len(self._search_cache) > SEARCH_CACHE_SIZE:
                    self._search_cache.popitem(last=False)
        return ok_response(req, result, degraded=degraded,
                           served_by=served_by)

    # ---------------------------------------------------------------- health
    def _queue_depths(self) -> dict[str, dict[str, int]]:
        return {"executor": self._exec_queue.depths(),
                "batcher": self.batcher.depths()}

    def _health(self) -> dict:
        status = ("draining" if self.draining
                  else "ready" if self._started.is_set() else "starting")
        return {
            "status": status,
            "ready": status == "ready",
            "live": True,
            "pid": os.getpid(),
            "protocol_version": PROTOCOL_VERSION,
            "replica_ordinal": self.config.replica_ordinal,
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "queue": {
                "executor_depth": self._exec_queue.qsize(),
                "executor_capacity": self.config.max_queue,
                "batch_depth": self.batcher.depth,
                "batch_capacity": self.config.max_batch_queue,
            },
            "tenancy": {
                "limited": self.admission.limited,
                "tenants": self.admission.snapshot(),
                "queues": self._queue_depths(),
            },
            "batcher": {"batches": self.batcher.batches,
                        "coalesced": self.batcher.coalesced},
            "breakers": {route: b.snapshot()
                         for route, b in self.breakers.items()},
            "counters": self.counters.snapshot(),
            "runtime": self.runtime.describe(),
        }

    def _on_batch(self, size: int, served_by: str) -> None:
        self.counters.inc("batches")
        if size > 1:
            self.counters.inc("coalesced_requests", size)

    # --------------------------------------------------------------- reload
    def _checkpoint_stamp(self) -> tuple:
        stamps = []
        for path in self.runtime.config.checkpoints:
            try:
                st = os.stat(path)
                stamps.append((path, st.st_mtime_ns, st.st_size))
            except OSError:
                stamps.append((path, None, None))
        return tuple(stamps)

    def _reload_loop(self) -> None:
        last = self._checkpoint_stamp()
        while not self._stopping.is_set():
            time.sleep(self.config.reload_poll_s)
            current = self._checkpoint_stamp()
            if current == last:
                continue
            try:
                self.runtime.reload(self.runtime.config.checkpoints)
            except Exception as exc:  # noqa: BLE001 - keep the old model
                self.counters.inc("reload_failed")
                append_event(self.journal_root, "reload_failed",
                             detail=f"{type(exc).__name__}: {exc}")
            else:
                self.counters.inc("reloads")
                append_event(self.journal_root, "reload",
                             checkpoints=list(
                                 self.runtime.config.checkpoints))
            last = current
