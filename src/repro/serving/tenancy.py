"""Multi-tenant admission control and fair queueing (protocol v2).

One daemon serves many callers, and callers are not equal: an Alpa-style
``search`` sweep is orders of magnitude heavier than a single
``predict``, so one tenant's search storm can starve every other
caller's cheap traffic.  This module gives the daemon the three tools it
needs to stop that:

* **tenant policies** (:class:`TenantPolicy`) — per-tenant token-bucket
  rate limits (with per-op token costs, so a ``search`` can drain a
  bucket a ``predict`` barely dents), concurrent-work budgets, queue
  caps, and a fair-queueing weight; loaded from a ``tenants.json``
  (``repro serve --tenants``) with ``REPRO_TENANT_*`` env defaults for
  everything unspecified;
* **admission control** (:class:`AdmissionController`) — over-budget
  requests are answered ``rate_limited`` with a jittered
  ``retry_after_ms`` hint *before* they touch any queue, so a flooding
  tenant costs one inline bucket check, not queue slots or model time;
* **fair queueing** (:class:`FairQueue`) — deficit-weighted round-robin
  across tenants replaces the global FIFO in front of the micro-batcher
  and the whatif/search executor: a tenant with a deep backlog is served
  its fair share per round, and a one-request tenant is served within
  one round instead of behind the whole backlog.

Requests that carry no ``tenant`` field (protocol v1 clients) land in
the :data:`DEFAULT_TENANT` class, and with no configured policies every
budget is unlimited and the fair queue degenerates to the old global
FIFO — so a daemon booted without ``--tenants`` behaves exactly like the
single-tenant daemon it replaces.

Retry hints are *deterministically jittered* (:func:`jittered_retry_ms`:
a pure hash of the responding site and request identity spreads hints
across [0.75, 1.25)x the base), so a fleet of shed clients does not
retry in lockstep and re-saturate the queue it was just shed from.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

#: tenant class of requests that carry no ``tenant`` field (v1 clients)
DEFAULT_TENANT = "default"

#: hard cap on a tenant name (hostile input must get a typed error)
TENANT_NAME_MAX = 64

#: default per-op token costs (a search is ~an order heavier than a
#: predict; whatif fans one prediction batch per stage partition)
DEFAULT_OP_COSTS = {"predict": 1, "predict_many": 2, "whatif": 2,
                    "search": 8, "health": 0}

_POLICY_KEYS = ("rate", "burst", "max_inflight", "max_queued", "weight",
                "op_costs")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's budgets.  Zero means *unlimited* everywhere, so the
    all-defaults policy admits everything (the v1 daemon's behavior)."""

    #: token-bucket refill in tokens/second (0 = unlimited)
    rate: float = 0.0
    #: bucket capacity in tokens (0 = max(1, ceil(rate)))
    burst: float = 0.0
    #: admitted-but-unanswered requests allowed at once (0 = unlimited)
    max_inflight: int = 0
    #: requests one tenant may hold in any single queue (0 = unlimited)
    max_queued: int = 0
    #: deficit-round-robin weight (items served per fair-queue round)
    weight: int = 1
    #: per-op token costs overriding :data:`DEFAULT_OP_COSTS`
    op_costs: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rate < 0 or self.burst < 0:
            raise ValueError("rate/burst must be >= 0")
        if self.max_inflight < 0 or self.max_queued < 0:
            raise ValueError("max_inflight/max_queued must be >= 0")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")

    def op_cost(self, op: str) -> int:
        cost = self.op_costs.get(op)
        if cost is None:
            cost = DEFAULT_OP_COSTS.get(op, 1)
        return max(0, int(cost))

    @property
    def capacity(self) -> float:
        return self.burst if self.burst > 0 else max(1.0, math.ceil(self.rate))

    @classmethod
    def from_env(cls) -> "TenantPolicy":
        """Fleet-wide defaults from ``REPRO_TENANT_*`` (all unlimited
        when unset, so the env-free daemon is behaviorally unchanged)."""
        op_costs = {}
        search_cost = _env_int("REPRO_TENANT_SEARCH_COST", 0)
        if search_cost > 0:
            op_costs["search"] = search_cost
        return cls(rate=_env_float("REPRO_TENANT_RATE", 0.0),
                   burst=_env_float("REPRO_TENANT_BURST", 0.0),
                   max_inflight=_env_int("REPRO_TENANT_INFLIGHT", 0),
                   max_queued=_env_int("REPRO_TENANT_QUEUE", 0),
                   weight=max(1, _env_int("REPRO_TENANT_WEIGHT", 1)),
                   op_costs=op_costs)


def _parse_policy(name: str, data: Mapping[str, Any],
                  base: TenantPolicy) -> TenantPolicy:
    if not isinstance(data, Mapping):
        raise ValueError(f"tenant {name!r}: policy must be an object")
    unknown = sorted(set(data) - set(_POLICY_KEYS))
    if unknown:
        raise ValueError(f"tenant {name!r}: unknown policy key(s) "
                         f"{', '.join(unknown)}; known: "
                         f"{', '.join(_POLICY_KEYS)}")
    op_costs = data.get("op_costs", base.op_costs)
    if not isinstance(op_costs, Mapping):
        raise ValueError(f"tenant {name!r}: op_costs must be an object")
    try:
        return TenantPolicy(
            rate=float(data.get("rate", base.rate)),
            burst=float(data.get("burst", base.burst)),
            max_inflight=int(data.get("max_inflight", base.max_inflight)),
            max_queued=int(data.get("max_queued", base.max_queued)),
            weight=int(data.get("weight", base.weight)),
            op_costs=dict(op_costs))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"tenant {name!r}: {exc}") from None


@dataclass(frozen=True)
class TenancyConfig:
    """The daemon's tenant table: named policies plus the default class
    (which also covers *unknown* tenants — an unrecognized name is a
    budget decision, not a protocol error)."""

    policies: Mapping[str, TenantPolicy] = field(default_factory=dict)
    default: TenantPolicy = field(default_factory=TenantPolicy)

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default)

    def weight_of(self, tenant: str) -> int:
        return self.policy(tenant).weight

    def max_queued_of(self, tenant: str) -> int:
        return self.policy(tenant).max_queued

    @classmethod
    def from_env(cls) -> "TenancyConfig":
        return cls(default=TenantPolicy.from_env())

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TenancyConfig":
        """Parse a ``tenants.json``: ``{"<tenant>": {"rate": ...,
        "burst": ..., "max_inflight": ..., "max_queued": ...,
        "weight": ..., "op_costs": {"search": 8}}, ...}``.  A
        ``"default"`` entry re-bases the class unknown tenants fall
        into; every omitted field inherits the ``REPRO_TENANT_*`` env
        default."""
        text = Path(path).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(f"{path}: top level must be an object mapping "
                             f"tenant names to policies")
        base = TenantPolicy.from_env()
        default = base
        if DEFAULT_TENANT in data:
            default = _parse_policy(DEFAULT_TENANT, data[DEFAULT_TENANT],
                                    base)
        policies = {}
        for name, policy in data.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"{path}: tenant names must be non-empty "
                                 f"strings")
            if len(name) > TENANT_NAME_MAX:
                raise ValueError(f"{path}: tenant name {name[:16]!r}... "
                                 f"exceeds {TENANT_NAME_MAX} chars")
            policies[name] = _parse_policy(name, policy, default)
        return cls(policies=policies, default=default)


# ------------------------------------------------------------------ jitter
def _unit_hash(token: str) -> float:
    """Stable hash of ``token`` into [0, 1)."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def jittered_retry_ms(base_ms: float, *key: Any) -> float:
    """``base_ms`` spread deterministically across [0.75, 1.25)x.

    The jitter is a pure function of ``key`` (site + tenant + request
    identity), so a rerun reproduces it exactly while distinct shed
    requests land at distinct instants instead of stampeding back in
    lockstep at exactly ``retry_after_ms``.
    """
    frac = _unit_hash("/".join(str(part) for part in key))
    return round(max(1.0, float(base_ms)) * (0.75 + 0.5 * frac), 1)


# ------------------------------------------------------------ token bucket
class TokenBucket:
    """Thread-safe token bucket on a monotonic clock.

    ``take(cost)`` returns ``0.0`` on success or the seconds until
    enough tokens will have refilled (the caller turns that into a
    ``retry_after_ms`` hint).  ``rate == 0`` means unlimited.
    """

    def __init__(self, rate: float, burst: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.capacity = (float(burst) if burst > 0
                         else max(1.0, math.ceil(self.rate)))
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def take(self, cost: float = 1.0) -> float:
        if self.rate <= 0 or cost <= 0:
            return 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            # a cost above capacity charges a full bucket (it could
            # never accumulate more, so it must not pass for free)
            eff = min(cost, self.capacity)
            if self._tokens >= eff:
                self._tokens -= eff
                return 0.0
            return (eff - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


# --------------------------------------------------------------- admission
class TenantState:
    """One tenant's live accounting (bucket, in-flight gauge, counters)."""

    __slots__ = ("name", "policy", "bucket", "inflight", "counters", "lock")

    def __init__(self, name: str, policy: TenantPolicy,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self.policy = policy
        self.bucket = TokenBucket(policy.rate, policy.burst, clock)
        self.inflight = 0
        self.counters = {"admitted": 0, "answered": 0, "rate_limited": 0,
                         "over_concurrency": 0, "shed": 0}
        self.lock = threading.Lock()


class AdmissionController:
    """Per-tenant budgets enforced *before* any queue is touched.

    ``admit`` answers with a jittered ``retry_after_ms`` for an
    over-budget request (token bucket empty or concurrent-work budget
    full) and ``None`` for an admitted one; every admitted request must
    be paired with exactly one ``release``.  The first rate-limit per
    tenant is journaled (event ``rate_limited``); full per-tenant
    counters travel in the ``tenancy`` snapshot the server journals at
    drain time and serves under ``health``.
    """

    def __init__(self, config: TenancyConfig | None = None,
                 journal_root=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or TenancyConfig()
        self.journal_root = journal_root
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantState] = {}

    def state(self, tenant: str) -> TenantState:
        with self._lock:
            st = self._tenants.get(tenant)
            if st is None:
                st = self._tenants[tenant] = TenantState(
                    tenant, self.config.policy(tenant), self._clock)
            return st

    def admit(self, tenant: str, op: str,
              req_id: Any = None) -> float | None:
        """``None`` = admitted (in-flight incremented); else the
        ``retry_after_ms`` the rejection must carry."""
        from ..experiments.manifest import append_event

        st = self.state(tenant)
        policy = st.policy
        with st.lock:
            if (policy.max_inflight > 0
                    and st.inflight >= policy.max_inflight):
                st.counters["over_concurrency"] += 1
                first = st.counters["over_concurrency"] == 1
                retry = jittered_retry_ms(50.0, "concurrency", tenant,
                                          req_id, st.counters["over_concurrency"])
                if first:
                    append_event(self.journal_root, "rate_limited",
                                 tenant=tenant, cause="concurrency", op=op)
                return retry
            wait_s = st.bucket.take(policy.op_cost(op))
            if wait_s > 0.0:
                st.counters["rate_limited"] += 1
                first = st.counters["rate_limited"] == 1
                retry = jittered_retry_ms(max(1.0, wait_s * 1e3), "rate",
                                          tenant, req_id,
                                          st.counters["rate_limited"])
                if first:
                    append_event(self.journal_root, "rate_limited",
                                 tenant=tenant, cause="rate", op=op)
                return retry
            st.inflight += 1
            st.counters["admitted"] += 1
            return None

    def release(self, tenant: str) -> None:
        st = self.state(tenant)
        with st.lock:
            st.inflight = max(0, st.inflight - 1)
            st.counters["answered"] += 1

    def record_shed(self, tenant: str) -> None:
        st = self.state(tenant)
        with st.lock:
            st.counters["shed"] += 1

    @property
    def limited(self) -> bool:
        """Does any known tenant carry a finite budget?"""
        pols = [self.config.default, *self.config.policies.values()]
        return any(p.rate > 0 or p.max_inflight > 0 or p.max_queued > 0
                   for p in pols)

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant gauges + counters (health endpoint / journal)."""
        with self._lock:
            tenants = list(self._tenants.values())
        out = {}
        for st in sorted(tenants, key=lambda s: s.name):
            with st.lock:
                out[st.name] = {"inflight": st.inflight, **st.counters}
        return out

    def journal_snapshot(self, queues: Mapping[str, Mapping[str, int]]
                         | None = None) -> None:
        """One ``tenancy`` journal line: counters + live queue depths."""
        from ..experiments.manifest import append_event

        snap = self.snapshot()
        if not snap and not queues:
            return
        append_event(self.journal_root, "tenancy", tenants=snap,
                     queues={k: dict(v) for k, v in (queues or {}).items()})


# ------------------------------------------------------------- fair queue
class FairQueue:
    """Bounded deficit-weighted round-robin queue across tenants.

    Each tenant owns a FIFO lane; ``get`` serves lanes round-robin,
    ``weight_of(tenant)`` items per visit (deficit round robin with unit
    cost), so a tenant with 500 queued requests cannot delay another
    tenant's single request past one round.  With a single active tenant
    the queue degenerates to the plain bounded FIFO it replaced —
    byte-identical service order for v1 traffic.

    ``put_nowait`` refuses (returns ``False``) when the *global*
    capacity is reached or the tenant's own ``max_queued_of`` cap is —
    the caller sheds exactly as it did with ``queue.Queue.Full``.
    ``close()`` stops admissions; pending items drain, then ``get``
    returns ``None``.
    """

    def __init__(self, maxsize: int,
                 weight_of: Callable[[str], int] | None = None,
                 max_queued_of: Callable[[str], int] | None = None) -> None:
        self.maxsize = max(1, maxsize)
        self._weight_of = weight_of or (lambda tenant: 1)
        self._max_queued_of = max_queued_of or (lambda tenant: 0)
        self._lanes: dict[str, deque] = {}
        #: tenants with queued items, in service rotation order
        self._active: deque[str] = deque()
        self._deficit: dict[str, int] = {}
        self._size = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------- admission
    def put_nowait(self, tenant: str, item: Any) -> bool:
        with self._cond:
            if self._closed or self._size >= self.maxsize:
                return False
            lane = self._lanes.get(tenant)
            cap = self._max_queued_of(tenant)
            if cap > 0 and lane is not None and len(lane) >= cap:
                return False
            if lane is None:
                lane = self._lanes[tenant] = deque()
            if not lane:
                self._active.append(tenant)
                self._deficit[tenant] = 0
            lane.append(item)
            self._size += 1
            self._cond.notify()
            return True

    # --------------------------------------------------------------- service
    def _pop_next(self) -> Any:
        """DWRR: serve the head-of-rotation tenant until its per-round
        deficit is spent, then rotate.  Caller holds the lock and has
        checked ``self._size > 0``."""
        while True:
            tenant = self._active[0]
            lane = self._lanes[tenant]
            if not lane:  # pragma: no cover - drained lanes leave _active
                self._active.popleft()
                self._deficit[tenant] = 0
                continue
            if self._deficit[tenant] <= 0:
                self._deficit[tenant] = max(1, self._weight_of(tenant))
            item = lane.popleft()
            self._size -= 1
            self._deficit[tenant] -= 1
            if not lane:
                self._active.popleft()
                self._deficit[tenant] = 0
            elif self._deficit[tenant] <= 0:
                self._active.rotate(-1)
            return item

    def get(self, timeout: float | None = None) -> Any:
        """Next item under DWRR; ``None`` on timeout or closed-and-empty."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while self._size == 0:
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self._size == 0:
                            return None
            return self._pop_next()

    def get_nowait(self) -> Any:
        with self._cond:
            if self._size == 0:
                return None
            return self._pop_next()

    def close(self) -> None:
        """Refuse new items; queued ones drain, then ``get`` → ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ----------------------------------------------------------- inspection
    def qsize(self) -> int:
        with self._cond:
            return self._size

    def empty(self) -> bool:
        return self.qsize() == 0

    def depths(self) -> dict[str, int]:
        """Live per-tenant queue depths (health / journal)."""
        with self._cond:
            return {tenant: len(lane)
                    for tenant, lane in sorted(self._lanes.items()) if lane}
