"""Shared fixtures: tiny models, meshes, and profiled corpora."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import PLATFORM1, PLATFORM2
from repro.ir import GraphBuilder
from repro.models import benchmark_config, build_model, cluster_layers
from repro.runtime import StageProfiler


@pytest.fixture(scope="session")
def tiny_gpt():
    """A 2-block GPT with Table-IV widths (cheap but structurally real)."""
    return build_model(benchmark_config("gpt", n_layers=2))


@pytest.fixture(scope="session")
def tiny_moe():
    return build_model(benchmark_config("moe", n_layers=2))


@pytest.fixture(scope="session")
def tiny_gpt_profiler(tiny_gpt):
    return StageProfiler(tiny_gpt, aggressive_fusion=True)


@pytest.fixture(scope="session")
def tiny_gpt_clustering(tiny_gpt):
    return cluster_layers(tiny_gpt, 4)


@pytest.fixture(scope="session")
def mesh1():
    return PLATFORM2.mesh(1)


@pytest.fixture(scope="session")
def mesh2():
    return PLATFORM2.mesh(2)


@pytest.fixture(scope="session")
def mesh3():
    return PLATFORM2.mesh(3)


@pytest.fixture(scope="session")
def serving_runtime():
    """One loaded serving runtime shared by the daemon tests (a real
    startup build: profiled corpus, fitted 1-member ensemble, calibrated
    analytical estimator)."""
    from repro.serving import PredictorRuntime, RuntimeConfig

    return PredictorRuntime.build(RuntimeConfig(
        layers=2, units=3, sample_fraction=0.6, epochs=2, seed=0))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def toy_graph():
    """matmul -> relu -> layernorm -> softmax chain with params."""
    b = GraphBuilder("toy")
    x = b.input("x", (4, 8))
    w = b.param("w", (8, 16))
    h = b.relu(b.matmul(x, w))
    s, bias = b.param("s", (16,)), b.param("b", (16,))
    y = b.layer_norm(h, s, bias)
    b.output(b.softmax(y), "out")
    return b.build()


@pytest.fixture(scope="session")
def tiny_corpus(tiny_gpt, tiny_gpt_profiler, tiny_gpt_clustering, mesh2):
    """Profiled stage samples over all slices of the tiny GPT on mesh 2."""
    from repro.predictors import StageSample

    samples = []
    for (s, e) in tiny_gpt_clustering.all_slices():
        p = tiny_gpt_profiler.profile_stage(s, e, mesh2, 2, 1)
        samples.append(StageSample(p.graph, p.latency, p.stage_id))
    return samples
