"""Pins the physical-bounds envelope factor of the trust layer.

The trust layer's bounds guard trusts a learned prediction only inside
``[analytical/alpha, analytical*alpha]`` around the per-submesh
calibrated roofline estimate.  That is only sound if the *ground truth*
itself stays inside the envelope — otherwise the guard would clamp
correct predictions.  This property test sweeps the fast-profile stage
corpora (both benchmark families, every platform-2 runtime
configuration) and asserts the worst true/estimate ratio stays below
``DEFAULT_ALPHA``, pinning the constant against simulator drift.
"""

import numpy as np
import pytest

from repro.experiments.corpus import stage_corpus
from repro.experiments.profiles import PROFILES
from repro.experiments.scenarios import scenario_grid
from repro.predictors.analytical import AnalyticalPredictor
from repro.predictors.trust import DEFAULT_ALPHA


@pytest.mark.parametrize("family", ["gpt", "moe"])
def test_calibrated_analytical_within_alpha(family):
    profile = PROFILES["fast"]
    worst = 0.0
    for scenario in scenario_grid("platform2"):
        samples = stage_corpus(family, scenario, profile)
        ana = AnalyticalPredictor(scenario.mesh().gpu)
        # same calibration the search's escalation path uses: least
        # squares on the profiled samples of this configuration
        ana.fit(samples, [])
        pred = ana.predict_samples(samples)
        true = np.array([s.latency for s in samples])
        assert np.all(pred > 0)
        ratios = np.maximum(true / pred, pred / true)
        worst = max(worst, float(ratios.max()))
    # ground truth stays inside the envelope the guard enforces...
    assert worst < DEFAULT_ALPHA, (
        f"{family}: worst true/analytical factor {worst:.2f} exceeds "
        f"DEFAULT_ALPHA={DEFAULT_ALPHA}; the bounds guard would clamp "
        f"correct predictions — re-derive the constant")
    # ...and the analytical model genuinely deviates from the simulator
    # (the envelope is a guard band, not an equality)
    assert worst > 1.0
