"""Sharded results cache under concurrent writers (regression for the
legacy single-file store, which rewrote the whole JSON on every ``set``
and silently lost concurrent writes)."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.experiments.cache import N_SHARDS, ResultsCache, _shard_of

N_PROCS = 8
KEYS_PER_PROC = 40

#: one deliberately contended key every process also writes
HOT_KEY = "stress/hot"


def _writer(args):
    """One worker: write this process's private keys plus the hot key."""
    root, proc = args
    cache = ResultsCache(root)
    for i in range(KEYS_PER_PROC):
        cache.set(f"stress/p{proc}/k{i}", {"proc": proc, "i": i,
                                           "payload": "x" * 64})
    cache.set(HOT_KEY, {"winner": proc})
    return proc


class TestConcurrentWriters:
    def test_eight_processes_no_lost_or_torn_writes(self, tmp_path):
        """Hammer one cache root from 8 processes; every private write must
        survive, every shard file must stay valid JSON, and the contended
        key must hold exactly one of the written values (not a blend)."""
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(N_PROCS) as pool:
            done = pool.map(_writer, [(str(root), p) for p in range(N_PROCS)])
        assert sorted(done) == list(range(N_PROCS))

        # no shard file may be torn: raw-parse every one (the cache's own
        # reader masks decode errors, which would hide corruption)
        shard_files = list((root / "shards").glob("*.json"))
        assert shard_files, "no shards were written"
        for f in shard_files:
            json.loads(f.read_text())  # raises on a torn write

        fresh = ResultsCache(root)
        for proc in range(N_PROCS):
            for i in range(KEYS_PER_PROC):
                value = fresh.get(f"stress/p{proc}/k{i}")
                assert value == {"proc": proc, "i": i, "payload": "x" * 64}, \
                    f"lost or corrupted write p{proc}/k{i}: {value!r}"
        hot = fresh.get(HOT_KEY)
        assert hot in [{"winner": p} for p in range(N_PROCS)]

        # no leftover tmp files from interrupted atomic publishes
        assert not list((root / "shards").glob("*.tmp*"))

    def test_writers_to_one_shard_serialize(self, tmp_path):
        """Keys engineered to collide on one shard still all survive."""
        root = tmp_path / "cache"
        probe = ResultsCache(root)
        # find many keys landing in the same shard
        target = _shard_of("collide/0")
        keys = [k for k in (f"collide/{i}" for i in range(4096))
                if _shard_of(k) == target][:32]
        assert len(keys) >= 8  # 4096 draws over 256 shards

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            pool.map(_one_key_writer, [(str(root), k) for k in keys])
        for k in keys:
            assert probe.get(k) == {"key": k}
        # all collided keys share one shard file
        shard_files = list((root / "shards").glob("*.json"))
        assert len(shard_files) == 1


def _one_key_writer(args):
    root, key = args
    ResultsCache(root).set(key, {"key": key})


class TestSharding:
    def test_shard_of_is_stable_and_bounded(self):
        assert _shard_of("a/b/c") == _shard_of("a/b/c")
        assert all(0 <= int(_shard_of(f"k{i}"), 16) < N_SHARDS
                   for i in range(64))

    def test_keys_spread_across_shards(self, tmp_path):
        cache = ResultsCache(tmp_path)
        for i in range(128):
            cache.set(f"spread/{i}", i)
        shards = list((tmp_path / "shards").glob("*.json"))
        assert len(shards) > 16  # 128 keys over 256 shards

    def test_set_rewrites_only_one_shard(self, tmp_path):
        """The O(n²) full-store-rewrite regression: updating one key must
        leave every other shard file untouched."""
        cache = ResultsCache(tmp_path)
        for i in range(64):
            cache.set(f"iso/{i}", i)
        before = {f.name: f.stat().st_mtime_ns
                  for f in (tmp_path / "shards").glob("*.json")}
        cache.set("iso/0", -1)
        after = {f.name: f.stat().st_mtime_ns
                 for f in (tmp_path / "shards").glob("*.json")}
        touched = [n for n in before if before[n] != after[n]]
        assert touched == [f"{_shard_of('iso/0')}.json"]


class TestLegacyMigration:
    def _legacy_store(self, tmp_path):
        legacy = tmp_path / "results.json"
        legacy.write_text(json.dumps(
            {f"old/{i}": {"mre": float(i)} for i in range(8)}))
        return legacy

    def test_legacy_entries_read_through(self, tmp_path):
        self._legacy_store(tmp_path)
        cache = ResultsCache(tmp_path)
        assert cache.get("old/3") == {"mre": 3.0}
        assert "old/3" in cache.keys()

    def test_legacy_json_path_selects_compat_mode(self, tmp_path):
        legacy = self._legacy_store(tmp_path)
        cache = ResultsCache(legacy)  # point at the *.json file itself
        assert cache.root == tmp_path
        assert cache.get("old/5") == {"mre": 5.0}
        cache.set("new/0", 1)
        assert (tmp_path / "shards").is_dir()

    def test_new_writes_shadow_legacy(self, tmp_path):
        self._legacy_store(tmp_path)
        cache = ResultsCache(tmp_path)
        cache.set("old/2", {"mre": 99.0})
        assert ResultsCache(tmp_path).get("old/2") == {"mre": 99.0}

    def test_migrate_legacy_copies_all_and_keeps_file(self, tmp_path):
        legacy = self._legacy_store(tmp_path)
        cache = ResultsCache(tmp_path)
        assert cache.migrate_legacy() == 8
        assert cache.migrate_legacy() == 0  # idempotent
        # legacy file untouched, entries now also in shards
        assert json.loads(legacy.read_text())["old/0"] == {"mre": 0.0}
        legacy.unlink()
        assert ResultsCache(tmp_path).get("old/7") == {"mre": 7.0}
