"""Crash-safety of the sharded results cache: checksums, quarantine,
stale-debris reaping, and transient-IO retry."""

from __future__ import annotations

import json
import os

import pytest

from repro import faults
from repro.experiments import manifest
from repro.experiments.cache import (
    ResultsCache,
    SHARD_VERSION,
    _read_shard,
    _shard_index,
    _shard_of,
    _write_atomic,
)


class TestChecksummedShards:
    def test_shards_carry_valid_checksums(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cache.set("a", {"mre": 1.0})
        doc = json.loads((tmp_path / "shards" / f"{_shard_of('a')}.json")
                         .read_text())
        assert doc["__shard_version__"] == SHARD_VERSION
        assert set(doc) == {"__shard_version__", "checksum", "entries"}
        assert doc["entries"] == {"a": {"mre": 1.0}}

    def test_v1_plain_dict_shards_stay_readable(self, tmp_path):
        (tmp_path / "shards").mkdir(parents=True)
        shard = tmp_path / "shards" / f"{_shard_of('old')}.json"
        shard.write_text(json.dumps({"old": {"mre": 7.0}}))  # pre-checksum
        assert ResultsCache(tmp_path).get("old") == {"mre": 7.0}
        assert shard.exists()  # not quarantined

    def test_corrupt_shard_quarantined_and_recovered(self, tmp_path):
        """The regression this PR exists for: a corrupted shard used to
        silently read as ``{}``; now it is quarantined with a warning
        and the entry is simply recomputed and rewritten."""
        cache = ResultsCache(tmp_path)
        cache.set("cell", {"mre": 3.5})
        shard = tmp_path / "shards" / f"{_shard_of('cell')}.json"
        faults.corrupt_file(shard)

        fresh = ResultsCache(tmp_path)
        with pytest.warns(UserWarning, match="quarantined"):
            assert fresh.get("cell") is None
        assert not shard.exists()
        assert [p.name for p in fresh.quarantined()] == [f"{shard.name}.corrupt"]
        events = manifest.read_events(tmp_path)
        assert [e["event"] for e in events] == ["shard_quarantined"]
        # the rebuild-from-retry path: re-set publishes a clean shard
        fresh.set("cell", {"mre": 3.5})
        assert ResultsCache(tmp_path).get("cell") == {"mre": 3.5}

    def test_checksum_mismatch_detected(self, tmp_path):
        """Valid JSON with doctored entries must still quarantine."""
        cache = ResultsCache(tmp_path)
        cache.set("k", 1)
        shard = tmp_path / "shards" / f"{_shard_of('k')}.json"
        doc = json.loads(shard.read_text())
        doc["entries"]["k"] = 2  # bit-flip the value, keep old checksum
        shard.write_text(json.dumps(doc))
        with pytest.warns(UserWarning, match="checksum mismatch"):
            assert ResultsCache(tmp_path).get("k") is None

    def test_keys_skips_quarantined(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cache.set("good", 1)
        cache.set("bad", 2)
        bad_shard = tmp_path / "shards" / f"{_shard_of('bad')}.json"
        faults.corrupt_file(bad_shard)
        with pytest.warns(UserWarning):
            assert ResultsCache(tmp_path).keys() == ["good"]


class TestWriteDurability:
    def test_write_atomic_fsyncs_before_rename(self, tmp_path, monkeypatch):
        """fsync must hit the tmp file before os.replace publishes it."""
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append("fsync"),
                                                     real_fsync(fd))[1])
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b))[1])
        _write_atomic(tmp_path / "00.json", {"k": 1})
        assert calls[0] == "fsync"
        assert "replace" in calls
        assert calls.index("fsync") < calls.index("replace")
        assert _read_shard(tmp_path / "00.json") == {"k": 1}

    def test_no_tmp_debris_after_set(self, tmp_path):
        cache = ResultsCache(tmp_path)
        for i in range(16):
            cache.set(f"k{i}", i)
        assert not list((tmp_path / "shards").glob("*.tmp*"))


class TestReaping:
    def test_dead_writer_tmp_reaped_live_writer_kept(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cache.set("k", 1)
        shards = tmp_path / "shards"
        dead = shards / "aa.tmp999999999"  # pid far beyond pid_max
        dead.write_text("partial")
        live = shards / f"bb.tmp{os.getpid()}"  # "our" in-flight write
        live.write_text("partial")
        assert cache.reap_stale(max_age=3600) == 1
        assert not dead.exists() and live.exists()

    def test_old_tmp_reaped_even_with_live_pid(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cache.set("k", 1)
        old = tmp_path / "shards" / f"cc.tmp{os.getpid()}"
        old.write_text("partial")
        os.utime(old, (1, 1))  # epoch 1970
        assert cache.reap_stale() == 1

    def test_stale_lock_reaped_fresh_lock_kept(self, tmp_path):
        cache = ResultsCache(tmp_path)
        cache.set("k", 1)  # leaves a fresh .lock
        shards = tmp_path / "shards"
        fresh_locks = list(shards.glob("*.lock"))
        assert fresh_locks
        stale = shards / "zz.lock"
        stale.touch()
        os.utime(stale, (1, 1))
        assert cache.reap_stale() == 1
        assert not stale.exists()
        assert all(p.exists() for p in fresh_locks)

    def test_disabled_cache_reaps_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert ResultsCache().reap_stale() == 0


class TestTransientIO:
    def test_injected_io_error_retried_write_lands(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "io_error")  # attempt 0 only
        cache = ResultsCache(tmp_path)
        cache.set("k", {"v": 42})
        assert ResultsCache(tmp_path).get("k") == {"v": 42}
        events = manifest.read_events(tmp_path)
        assert any(e["event"] == "write_retried" for e in events)

    def test_persistent_io_error_finally_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "io_error:attempts=*")
        cache = ResultsCache(tmp_path)
        with pytest.raises(OSError):
            cache.set("k", 1)

    def test_injected_shard_corruption_on_write(self, tmp_path, monkeypatch):
        cache = ResultsCache(tmp_path)
        shard_no = _shard_index("victim")
        monkeypatch.setenv(faults.ENV_VAR, f"shard_corrupt:at={shard_no}")
        cache.set("victim", 1)
        # in-memory tier still serves this process...
        assert cache.get("victim") == 1
        # ...but a fresh reader sees the corruption and quarantines
        with pytest.warns(UserWarning, match="quarantined"):
            assert ResultsCache(tmp_path).get("victim") is None
