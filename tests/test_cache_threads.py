"""Thread-safety stress: the encoding cache and plan cache under the
serving daemon's concurrency (batcher + executor threads hitting the
process-wide memos simultaneously)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.ir import GraphBuilder
from repro.parallel.plan_cache import PlanCache
from repro.predictors.encoding_cache import EncodingCache

N_THREADS = 8
ROUNDS = 30


def _mlp(width: int, prefix: str = ""):
    b = GraphBuilder(f"mlp{width}-{prefix}")
    x = b.input(f"{prefix}x", (4, width))
    w = b.param(f"{prefix}w", (width, 16))
    b.output(b.relu(b.matmul(x, w)), f"{prefix}out")
    return b.build()


def _hammer(fn):
    """Run ``fn(tid, i)`` from N_THREADS×ROUNDS, re-raising any error."""
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(tid):
        try:
            barrier.wait()
            for i in range(ROUNDS):
                fn(tid, i)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors


class TestEncodingCacheThreads:
    def test_concurrent_mixed_keys(self):
        cache = EncodingCache()
        # 4 distinct structures; name prefixes differ per thread, so
        # structural hashing must still collapse them to 4 entries
        widths = (8, 12, 16, 24)
        reference = {w: cache.get(_mlp(w)) for w in widths}

        def step(tid, i):
            w = widths[(tid + i) % len(widths)]
            enc = cache.get(_mlp(w, prefix=f"t{tid}_"))
            ref = reference[w]
            assert enc is ref, "hits must share the cached bundle"
            assert not enc.features.flags.writeable

        _hammer(step)
        assert len(cache) == len(widths)
        assert cache.stats.hits == N_THREADS * ROUNDS
        assert cache.stats.misses == len(widths)

    def test_cold_key_race_is_single_entry(self):
        """All threads race one cold key: duplicate computes are allowed,
        but exactly one bundle may be published and served."""
        cache = EncodingCache()
        seen = []
        lock = threading.Lock()

        def step(tid, i):
            enc = cache.get(_mlp(64, prefix=f"t{tid}r{i}_"))
            with lock:
                seen.append(id(enc))

        _hammer(step)
        assert len(cache) == 1
        assert len(set(seen)) == 1

    def test_concurrent_clear_does_not_corrupt(self):
        cache = EncodingCache()

        def step(tid, i):
            if tid == 0 and i % 10 == 0:
                cache.clear()
            enc = cache.get(_mlp(8 + 4 * (i % 3), prefix=f"t{tid}_"))
            assert enc.depths.dtype == np.int64

        _hammer(step)
        assert len(cache) <= 3


class TestPlanCacheThreads:
    @pytest.fixture
    def mesh(self):
        return DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)

    def test_concurrent_solves_agree_with_serial(self, mesh):
        cache = PlanCache()
        widths = (8, 16, 24)
        expected = {w: cache.optimize(_mlp(w), mesh).estimated_time
                    for w in widths}
        results = []
        lock = threading.Lock()

        def step(tid, i):
            w = widths[(tid + i) % len(widths)]
            plan = cache.optimize(_mlp(w, prefix=f"t{tid}_"), mesh)
            with lock:
                results.append((w, plan.estimated_time))

        _hammer(step)
        assert len(cache) == len(widths)
        for w, estimated in results:
            assert estimated == expected[w]

    def test_hit_rebinds_to_the_callers_graph(self, mesh):
        cache = PlanCache()
        plans = []
        lock = threading.Lock()

        def step(tid, i):
            g = _mlp(32, prefix=f"t{tid}_")
            plan = cache.optimize(g, mesh)
            assert plan.graph is g
            with lock:
                plans.append(plan.estimated_time)

        _hammer(step)
        assert len(set(plans)) == 1
        assert len(cache) == 1
