"""CLI surface: parser wiring and the cheap commands."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_commands_exist(self):
        parser = make_parser()
        for argv in (["info"],
                     ["profile", "--dp", "2"],
                     ["predict", "--epochs", "3"],
                     ["search", "--approach", "full"],
                     ["search", "--schedule", "interleaved"],
                     ["bench", "table5", "--jobs", "2"],
                     ["bench", "schedules", "--family", "vit",
                      "--schedule", "2bp"],
                     ["bench", "serve", "--quick", "--clients", "4",
                      "--port", "7713"],
                     ["serve", "--port", "0", "--checkpoint", "a.npz",
                      "--checkpoint", "b.npz", "--reload-poll", "5"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_serve_defaults(self):
        args = make_parser().parse_args(["serve"])
        assert args.port == 7713 and args.checkpoint == []
        assert args.workers == 2 and args.reload_poll == 0.0

    def test_exit_code_constants(self):
        from repro.cli import (EXIT_DEGRADED, EXIT_ERROR, EXIT_OK,
                               EXIT_PARTIAL)

        assert (EXIT_OK, EXIT_ERROR, EXIT_PARTIAL, EXIT_DEGRADED) == \
            (0, 1, 2, 3)

    def test_bench_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bench", "table7"])

    def test_rejects_unknown_schedule(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["search", "--schedule", "dualpipe"])
        with pytest.raises(SystemExit):
            make_parser().parse_args(["bench", "schedules",
                                      "--schedule", "dualpipe"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["profile", "--platform", "platform9"])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "platform1" in out
        assert "gpt3-1.3b" in out

    def test_info_lists_serving_endpoints_and_fault_sites(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "serving endpoints" in out
        for op in ("predict_many", "whatif", "search", "health"):
            assert f"\n  {op}: " in out
        assert "fault-injection sites" in out
        for site in ("conn_drop", "slow_client", "request_garbage",
                     "worker_crash"):
            assert f"\n  {site}: " in out
        assert "exit codes:" in out

    def test_profile_runs(self, capsys):
        rc = main(["profile", "--family", "gpt", "--layers", "2",
                   "--mesh", "2", "--dp", "2", "--mp", "1",
                   "--unit-start", "0", "--unit-end", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "ms" in out

    def test_predict_runs_and_saves(self, capsys, tmp_path):
        rc = main(["predict", "--family", "gpt", "--layers", "2",
                   "--units", "3", "--mesh", "2", "--dp", "2", "--mp", "1",
                   "--epochs", "3", "--sample-fraction", "0.9",
                   "--predictor", "gcn",
                   "--save", str(tmp_path / "p.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MRE" in out
        assert (tmp_path / "p.npz").exists()

    def test_search_single_approach(self, capsys):
        rc = main(["search", "--family", "gpt", "--layers", "2",
                   "--units", "3", "--approach", "full",
                   "--microbatches", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimization cost" in out

    def test_search_json_output(self, capsys):
        import json

        rc = main(["search", "--family", "gpt", "--layers", "2",
                   "--units", "3", "--approach", "full",
                   "--microbatches", "4", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        r = data["full"]
        assert r["latency_ms"] > 0 and r["stages"] >= 1
        assert r["degradations"] == []
        assert r["trust"] is None  # full profiling has nothing to guard

    def test_bench_table5_writes_artifacts(self, capsys, tmp_path,
                                           monkeypatch):
        import repro.experiments.cache as cache_mod
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        rc = main(["bench", "table5", "--family", "gpt", "--jobs", "1",
                   "--profile", "smoke", "--output", str(tmp_path / "out")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MRE" in out and "jobs=1" in out
        csv_path = tmp_path / "out" / "smoke" / "table5_gpt.csv"
        txt_path = tmp_path / "out" / "smoke" / "table5_gpt.txt"
        assert csv_path.is_file() and txt_path.is_file()
        assert "scenario,fraction,predictor,mre_pct" in csv_path.read_text()

    def test_bench_schedules_writes_artifacts(self, capsys, tmp_path,
                                              monkeypatch):
        import repro.experiments.cache as cache_mod
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        rc = main(["bench", "schedules", "--family", "vit", "--jobs", "1",
                   "--profile", "smoke", "--output", str(tmp_path / "out")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validated simulator == closed form" in out
        csv_path = tmp_path / "out" / "smoke" / "schedule_grid_vit.csv"
        assert csv_path.is_file()
        text = csv_path.read_text()
        assert text.startswith("schedule,n_stages,n_microbatches,")
        for name in ("1f1b", "gpipe", "interleaved", "2bp"):
            assert f"\n{name}," in text

    def test_bench_schedules_quick_limits_families(self, capsys, tmp_path,
                                                   monkeypatch):
        import repro.experiments.cache as cache_mod
        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        rc = main(["bench", "schedules", "--quick", "--family", "all",
                   "--schedule", "interleaved", "--jobs", "1",
                   "--profile", "smoke", "--output", str(tmp_path / "out")])
        assert rc == 0
        written = {p.name for p in (tmp_path / "out" / "smoke").iterdir()}
        assert written == {"schedule_grid_gpt.csv", "schedule_grid_gpt.txt"}
