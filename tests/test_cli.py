"""CLI surface: parser wiring and the cheap commands."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_commands_exist(self):
        parser = make_parser()
        for argv in (["info"],
                     ["profile", "--dp", "2"],
                     ["predict", "--epochs", "3"],
                     ["search", "--approach", "full"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["profile", "--platform", "platform9"])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "platform1" in out
        assert "gpt3-1.3b" in out

    def test_profile_runs(self, capsys):
        rc = main(["profile", "--family", "gpt", "--layers", "2",
                   "--mesh", "2", "--dp", "2", "--mp", "1",
                   "--unit-start", "0", "--unit-end", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "ms" in out

    def test_predict_runs_and_saves(self, capsys, tmp_path):
        rc = main(["predict", "--family", "gpt", "--layers", "2",
                   "--units", "3", "--mesh", "2", "--dp", "2", "--mp", "1",
                   "--epochs", "3", "--sample-fraction", "0.9",
                   "--predictor", "gcn",
                   "--save", str(tmp_path / "p.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MRE" in out
        assert (tmp_path / "p.npz").exists()

    def test_search_single_approach(self, capsys):
        rc = main(["search", "--family", "gpt", "--layers", "2",
                   "--units", "3", "--approach", "full",
                   "--microbatches", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimization cost" in out
