"""Cluster substrate: GPUs, links, meshes, collectives, platforms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    A40,
    MESH_CONFIGS,
    NVLINK,
    PARALLEL_CONFIGS,
    PLATFORM1,
    PLATFORM2,
    RTX_A5500,
    TEN_GBE,
    DeviceMesh,
    allgather_time,
    allreduce_time,
    alltoall_time,
    broadcast_time,
    enumerate_submeshes,
    get_platform,
    logical_views,
    p2p_time,
)


class TestGPU:
    def test_a40_spec(self):
        assert A40.mem_capacity == 48 * 1024**3
        assert A40.peak_flops > 3e13

    def test_matmul_efficiency_bounded(self):
        for m, n, k in [(1, 1, 1), (128, 128, 128), (4096, 4096, 4096),
                        (1, 4096, 4096), (1024, 1024, 64)]:
            e = A40.matmul_efficiency(m, n, k)
            assert 0.0 < e <= 1.0

    def test_big_gemm_more_efficient_than_small(self):
        assert (A40.matmul_efficiency(4096, 4096, 4096)
                > A40.matmul_efficiency(64, 64, 64))

    def test_tile_quantization_penalty(self):
        aligned = A40.matmul_efficiency(2048, 2048, 2048)
        ragged = A40.matmul_efficiency(2048 + 1, 2048, 2048)
        assert ragged < aligned

    def test_elementwise_bandwidth_saturates(self):
        small = A40.elementwise_bandwidth(1e3)
        large = A40.elementwise_bandwidth(1e9)
        assert small < large <= A40.mem_bandwidth


class TestLinks:
    def test_transfer_time_affine(self):
        t1 = NVLINK.transfer_time(1e6)
        t2 = NVLINK.transfer_time(2e6)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(1e6 / NVLINK.beta)

    def test_zero_bytes_free(self):
        assert NVLINK.transfer_time(0) == 0.0

    def test_nvlink_much_faster_than_ethernet(self):
        assert NVLINK.transfer_time(1e8) < TEN_GBE.transfer_time(1e8) / 10


class TestCollectives:
    def test_allreduce_single_rank_free(self):
        assert allreduce_time(NVLINK, 1e6, 1) == 0.0

    def test_allreduce_is_2x_allgather_bandwidth(self):
        n, p = 1e8, 4
        ar = allreduce_time(NVLINK, n, p)
        ag = allgather_time(NVLINK, n, p)
        assert ar == pytest.approx(2 * ag, rel=1e-9)

    def test_bandwidth_term_scales_with_bytes(self):
        t1 = allreduce_time(NVLINK, 1e8, 4)
        t2 = allreduce_time(NVLINK, 2e8, 4)
        assert t2 > t1

    @given(p=st.integers(2, 64), nbytes=st.floats(1e3, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_monotone_in_bytes_and_positive(self, p, nbytes):
        t = allreduce_time(NVLINK, nbytes, p)
        assert t > 0
        assert allreduce_time(NVLINK, nbytes * 2, p) > t

    def test_ring_bandwidth_asymptote(self):
        """For large n the ring all-reduce approaches 2n/β regardless of p."""
        n = 1e10
        t8 = allreduce_time(NVLINK, n, 8)
        t64 = allreduce_time(NVLINK, n, 64)
        assert abs(t8 - t64) / t8 < 0.2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            allreduce_time(NVLINK, -1, 2)
        with pytest.raises(ValueError):
            allgather_time(NVLINK, 1e6, 0)

    def test_alltoall_and_broadcast_positive(self):
        assert alltoall_time(TEN_GBE, 1e6, 4) > 0
        assert broadcast_time(TEN_GBE, 1e6, 4) > 0
        assert p2p_time(TEN_GBE, 1e6) > 0


class TestMesh:
    def test_num_devices(self):
        m = DeviceMesh(2, 2, A40, NVLINK, TEN_GBE)
        assert m.num_devices == 4

    def test_logical_shape_must_factorize(self, mesh3):
        with pytest.raises(ValueError):
            mesh3.logical(3, 1)

    def test_mp_within_node_uses_nvlink(self, mesh3):
        lv = mesh3.logical(2, 2)
        assert lv.mp_link is mesh3.intra_link
        assert lv.dp_link is mesh3.inter_link

    def test_mp_across_nodes_uses_ethernet(self, mesh3):
        lv = mesh3.logical(1, 4)
        assert lv.mp_link is mesh3.inter_link

    def test_single_node_all_nvlink(self, mesh2):
        for lv in logical_views(mesh2):
            assert lv.mp_link is mesh2.intra_link
            assert lv.dp_link is mesh2.intra_link

    def test_logical_views_cover_power_of_two(self, mesh3):
        shapes = {(lv.dp, lv.mp) for lv in logical_views(mesh3)}
        assert shapes == {(4, 1), (2, 2), (1, 4)}

    def test_submesh_enumeration(self):
        cluster = PLATFORM2.cluster()
        subs = enumerate_submeshes(cluster)
        sizes = [m.num_devices for m in subs]
        assert sizes == [1, 2, 4]

    def test_empty_mesh_rejected(self):
        with pytest.raises(ValueError):
            DeviceMesh(0, 2, A40, NVLINK, TEN_GBE)

    def test_key_stable_and_distinct(self, mesh2, mesh3):
        assert mesh2.key() != mesh3.key()
        assert mesh2.key() == mesh2.key()


class TestPlatforms:
    def test_table_ii_meshes(self):
        assert MESH_CONFIGS == {1: (1, 1), 2: (1, 2), 3: (2, 2)}

    def test_table_iii_configs(self):
        assert PARALLEL_CONFIGS[2] == {1: (2, 1), 2: (1, 2)}
        assert PARALLEL_CONFIGS[3] == {1: (4, 1), 2: (2, 2), 3: (1, 4)}

    def test_platform1_supports_meshes_1_2(self):
        assert PLATFORM1.mesh_indices() == [1, 2]
        with pytest.raises(ValueError):
            PLATFORM1.mesh(3)

    def test_platform2_supports_all_meshes(self):
        assert PLATFORM2.mesh_indices() == [1, 2, 3]

    def test_platform_gpus(self):
        assert PLATFORM1.gpu is A40
        assert PLATFORM2.gpu is RTX_A5500

    def test_get_platform(self):
        assert get_platform("platform1") is PLATFORM1
        with pytest.raises(ValueError):
            get_platform("platform9")
