"""PredTOP core: sampling, the three phases, plan search."""

import numpy as np
import pytest

from repro.cluster import PLATFORM2
from repro.core import (
    PlanSearcher,
    PredTOP,
    PredTOPConfig,
    stratified_sample,
)
from repro.models import cluster_layers
from repro.predictors import TrainConfig
from repro.runtime import StageProfiler, whitebox_latency


class TestStratifiedSampling:
    def _slices(self, n_units=6):
        return [(i, j) for i in range(n_units)
                for j in range(i + 1, n_units + 1)]

    def test_fraction_respected(self):
        slices = self._slices()
        out = stratified_sample(slices, 0.5, seed=0)
        assert abs(len(out) - round(0.5 * len(slices))) <= 2

    def test_all_lengths_represented(self):
        """§VI-1: include stages of different sizes."""
        slices = self._slices()
        out = stratified_sample(slices, 0.3, seed=0)
        lengths = {e - s for (s, e) in out}
        assert lengths == {e - s for (s, e) in slices}

    def test_subset_and_unique(self):
        slices = self._slices()
        out = stratified_sample(slices, 0.4, seed=1)
        assert len(set(out)) == len(out)
        assert set(out) <= set(slices)

    def test_full_fraction_returns_everything(self):
        slices = self._slices()
        assert set(stratified_sample(slices, 1.0)) == set(slices)

    def test_deterministic(self):
        slices = self._slices()
        assert (stratified_sample(slices, 0.4, seed=5)
                == stratified_sample(slices, 0.4, seed=5))

    def test_minimum_two(self):
        out = stratified_sample([(0, 1), (1, 2), (0, 2)], 0.01)
        assert len(out) >= 2

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_sample([(0, 1)], 0.0)

    def test_empty_input(self):
        assert stratified_sample([], 0.5) == []


@pytest.fixture(scope="module")
def predtop(tiny_gpt, tiny_gpt_clustering, mesh2, tiny_gpt_profiler):
    cfg = PredTOPConfig(
        sample_fraction=0.6,
        train=TrainConfig(epochs=10, patience=10, batch_size=8),
        seed=0,
    )
    return PredTOP(tiny_gpt, tiny_gpt_clustering, mesh2, cfg,
                   profiler=tiny_gpt_profiler)


class TestPredTOPPhases:
    def test_phases_in_order(self, predtop, tiny_gpt_clustering):
        with pytest.raises(RuntimeError):
            PredTOP(predtop.model, tiny_gpt_clustering, predtop.mesh,
                    predtop.config).training_phase()

        profiled = predtop.profiling_phase(dp=2, mp=1)
        assert 0 < len(profiled) < len(tiny_gpt_clustering.all_slices()) + 1
        assert predtop.costs.profiling_seconds > 0

        predictor = predtop.training_phase()
        assert predictor.model is not None
        assert predtop.costs.training_seconds > 0

        preds = predtop.prediction_phase()
        assert len(preds) == len(tiny_gpt_clustering.all_slices())
        assert all(v > 0 for v in preds.values())
        assert predtop.costs.inference_seconds > 0

    def test_whitebox_composition(self):
        assert PredTOP.predict_iteration_latency([0.1, 0.2], 4) == \
            pytest.approx(whitebox_latency([0.1, 0.2], 4))

    def test_prediction_before_training_raises(self, tiny_gpt,
                                               tiny_gpt_clustering, mesh2):
        p = PredTOP(tiny_gpt, tiny_gpt_clustering, mesh2)
        with pytest.raises(RuntimeError):
            p.prediction_phase()


@pytest.fixture(scope="module")
def searcher(tiny_gpt, tiny_gpt_clustering, tiny_gpt_profiler):
    return PlanSearcher(
        tiny_gpt, tiny_gpt_clustering, PLATFORM2.cluster(),
        n_microbatches=4,
        profiler=tiny_gpt_profiler,
        sample_fraction=0.5,
        train_config=TrainConfig(epochs=6, patience=6, batch_size=8),
        seed=0,
    )


class TestPlanSearch:
    def test_full_profiling_plan_feasible(self, searcher):
        r = searcher.search_full()
        assert r.plan.feasible
        assert r.optimization_cost > 0
        assert r.true_iteration_latency > 0
        assert r.plan.total_devices() == 4

    def test_partial_cheaper_than_full(self, searcher):
        full = searcher.search_full()
        partial = searcher.search_partial()
        assert partial.optimization_cost < full.optimization_cost
        assert partial.n_table_entries < full.n_table_entries

    def test_predtop_cheaper_profiling_than_full(self, searcher):
        full = searcher.search_full()
        pt = searcher.search_predtop("gcn")
        assert pt.cost_breakdown["profiling"] < full.optimization_cost
        assert pt.plan.feasible
        # the table is complete: sampled measurements + predictions
        assert pt.n_table_entries == full.n_table_entries

    def test_predtop_plan_quality_not_catastrophic(self, searcher):
        full = searcher.search_full()
        pt = searcher.search_predtop("gcn")
        assert pt.true_iteration_latency <= 3 * full.true_iteration_latency

    def test_full_plan_latency_is_optimal_among_approaches(self, searcher):
        """Ground-truth profiling can never pick a worse plan than
        prediction-based search (when both are scored by ground truth)."""
        full = searcher.search_full()
        pt = searcher.search_predtop("gcn")
        assert full.true_iteration_latency <= pt.true_iteration_latency + 1e-9

    def test_unknown_approach(self, searcher):
        with pytest.raises(ValueError):
            searcher.run("oracle")
