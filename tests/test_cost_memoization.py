"""Memoized cost kernels agree exactly with their direct counterparts."""

from __future__ import annotations

import numpy as np

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.ir import GraphBuilder
from repro.parallel.resharding import (ReshardCache, clear_reshard_caches,
                                       reshard_cache, reshard_time)
from repro.parallel.sharding import ShardingSpec, candidate_specs, spec_id
from repro.runtime.opcost import (clear_op_time_cache, node_cost_key, op_time,
                                  op_time_cached)


def mesh22():
    return DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 2)


def small_graph():
    b = GraphBuilder("memo")
    x = b.input("x", (8, 16))
    w = b.param("w", (16, 32))
    h = b.relu(b.matmul(x, w))
    b.output(h, "out")
    return b.build()


class TestOpTimeCache:
    def test_matches_direct_all_factors(self):
        g = small_graph()
        gpu = RTX_A5500
        clear_op_time_cache()
        for node in g.nodes:
            ins = [g.nodes[i].out for i in node.inputs]
            for factor in (1.0, 2.0, 4.0):
                assert op_time_cached(node, ins, gpu, factor) == \
                    op_time(node, ins, gpu, factor)
                # second call is the cached value — still identical
                assert op_time_cached(node, ins, gpu, factor) == \
                    op_time(node, ins, gpu, factor)

    def test_structural_twins_share_entries(self):
        """Two nodes with equal structure produce one cache key."""
        g1, g2 = small_graph(), small_graph()
        m1 = next(n for n in g1.nodes if n.op == "dot_general")
        m2 = next(n for n in g2.nodes if n.op == "dot_general")
        ins1 = [g1.nodes[i].out for i in m1.inputs]
        ins2 = [g2.nodes[i].out for i in m2.inputs]
        assert node_cost_key(m1, ins1) == node_cost_key(m2, ins2)

    def test_non_operator_is_free(self):
        g = small_graph()
        leaf = g.nodes[0]
        assert leaf.node_type == "input"
        assert op_time_cached(leaf, [], RTX_A5500) == 0.0


class TestReshardCache:
    def test_time_matches_reshard_time(self):
        mesh = mesh22()
        g = small_graph()
        t = g.nodes[-2].out  # the relu output tensor
        cache = reshard_cache(mesh)
        specs = candidate_specs(t, mesh)
        for src in specs:
            for dst in specs:
                expect = reshard_time(src, dst, t, mesh)
                got = cache.time(spec_id(src), spec_id(dst), t.nbytes)
                assert got == expect
                assert cache.time(spec_id(src), spec_id(dst), t.nbytes) == \
                    expect  # cached hit identical

    def test_column_and_matrix_agree_with_cells(self):
        mesh = mesh22()
        g = small_graph()
        t = g.nodes[-2].out
        cache = reshard_cache(mesh)
        ids = tuple(spec_id(s) for s in candidate_specs(t, mesh))
        mat = cache.matrix(ids, ids, t.nbytes)
        assert mat.shape == (len(ids), len(ids))
        assert not mat.flags.writeable  # shared tables are read-only
        for i, src in enumerate(ids):
            col = cache.column(ids, src, t.nbytes)
            assert np.array_equal(mat[:, i], col)
            for j, dst in enumerate(ids):
                assert mat[i, j] == cache.time(src, dst, t.nbytes)

    def test_per_mesh_instances(self):
        clear_reshard_caches()
        m1 = mesh22()
        m2 = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        assert reshard_cache(m1) is reshard_cache(m1)
        assert reshard_cache(m1) is not reshard_cache(m2)
        assert isinstance(reshard_cache(m1), ReshardCache)

    def test_identity_and_replicated_are_free(self):
        mesh = mesh22()
        g = small_graph()
        t = g.nodes[-2].out
        cache = reshard_cache(mesh)
        rep = spec_id(ShardingSpec.replicated())
        sh = spec_id(ShardingSpec.shard(0, "dp"))
        assert cache.time(sh, sh, t.nbytes) == 0.0
        assert cache.time(rep, sh, t.nbytes) == 0.0  # replicated src slices
        assert cache.time(sh, rep, t.nbytes) > 0.0  # all-gather back
