"""Differential tests: CFP-collapsed intra-op DP ≡ uncollapsed solver.

The collapse memo (``REPRO_DP_COLLAPSE``, on by default) must be
**lossless**: identical committed strategies, identical float costs (no
tolerance), identical executor profiles — on every family's training
graphs, every mesh, and regardless of what was solved before (memo
entries created by *other* graphs must reproduce exactly what a fresh
solve would compute).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.cluster.mesh import logical_views
from repro.ir.autodiff import build_training_graph
from repro.models import benchmark_config, build_model
from repro.parallel.intra_op import (clear_table_caches, collapse_stats,
                                     optimize_stage)
from repro.runtime.executor import execute_plan
from repro.runtime.profiler import StageProfiler

from .test_intra_op_properties import MESHES, random_graph
from .test_intraop_vectorized import strategy_key

FAMILIES = ("gpt", "moe", "bert", "vit")


@contextmanager
def collapse(enabled: bool):
    prior = os.environ.get("REPRO_DP_COLLAPSE")
    os.environ["REPRO_DP_COLLAPSE"] = "" if enabled else "off"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_DP_COLLAPSE", None)
        else:
            os.environ["REPRO_DP_COLLAPSE"] = prior


def assert_collapse_identical(graph, mesh):
    with collapse(True):
        fast = optimize_stage(graph, mesh)
    with collapse(False):
        base = optimize_stage(graph, mesh)
    assert fast.estimated_time == base.estimated_time  # bitwise
    for nid in range(len(graph)):
        assert strategy_key(fast.assignments[nid]) == \
            strategy_key(base.assignments[nid]), f"node {nid} diverged"
    assert execute_plan(fast) == execute_plan(base)
    return fast


class TestDifferential:
    @given(seed=st.integers(0, 10**9),
           mesh_idx=st.integers(0, len(MESHES) - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed, mesh_idx):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, f"collapse{seed}")
        for logical in logical_views(MESHES[mesh_idx]):
            assert_collapse_identical(graph, logical)

    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_random_training_graphs(self, seed):
        rng = np.random.default_rng(seed)
        graph = build_training_graph(random_graph(rng, f"coltrain{seed}"))
        mesh = MESHES[int(rng.integers(0, len(MESHES)))]
        for logical in logical_views(mesh):
            assert_collapse_identical(graph, logical)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_benchmark_families(self, family):
        """Every family's real training graphs, across slice twins and
        both mesh shapes — the population the search actually solves."""
        profiler = StageProfiler(build_model(benchmark_config(family, 2)))
        meshes = (DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE),
                  DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE))
        for start, end in ((0, 1), (0, 2), (1, 2)):
            tg = profiler.training_graph(start, end)
            for mesh in meshes:
                for logical in logical_views(mesh):
                    assert_collapse_identical(tg, logical)

    def test_cross_graph_memo_entries_are_lossless(self, tiny_gpt_profiler):
        """Solving slice [0, 2) first seeds the memo with every prefix
        signature; the subsequent [0, 1) solve — nearly all memo hits —
        must equal a fresh solve on cleared caches."""
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(1, 2)
        big = tiny_gpt_profiler.training_graph(0, 2)
        small = tiny_gpt_profiler.training_graph(0, 1)
        with collapse(True):
            clear_table_caches()
            optimize_stage(big, mesh)  # seed the memo
            before = collapse_stats().hits
            warm = optimize_stage(small, mesh)
            assert collapse_stats().hits > before  # prefixes shared
            clear_table_caches()
            cold = optimize_stage(small, mesh)
        assert warm.estimated_time == cold.estimated_time
        for a, b in zip(warm.assignments, cold.assignments):
            assert strategy_key(a) == strategy_key(b)


class TestGateAndStats:
    def test_off_gate_skips_the_memo(self, tiny_gpt_profiler):
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        tg = tiny_gpt_profiler.training_graph(0, 1)
        clear_table_caches()
        with collapse(False):
            optimize_stage(tg, mesh)
        stats = collapse_stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_repeat_solve_is_all_hits(self, tiny_gpt_profiler):
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        tg = tiny_gpt_profiler.training_graph(0, 2)
        with collapse(True):
            clear_table_caches()
            optimize_stage(tg, mesh)
            misses = collapse_stats().misses
            assert misses > 0
            optimize_stage(tg, mesh)
            assert collapse_stats().misses == misses  # no new work
            assert collapse_stats().hits >= len(tg)

    def test_twin_branches_hit_within_one_graph(self, tiny_gpt_profiler):
        """Q/K/V twins make the very first solve of a transformer block
        produce memo hits — the intra-graph CSE the detector promises."""
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(1, 2)
        tg = tiny_gpt_profiler.training_graph(1, 2)  # one transformer block
        with collapse(True):
            clear_table_caches()
            optimize_stage(tg, mesh)
            assert collapse_stats().hits > 0

    def test_memoized_vectors_are_immutable(self, tiny_gpt_profiler):
        """Memo entries are shared across solves — they must be frozen."""
        from repro.parallel import intra_op

        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(1, 2)
        tg = tiny_gpt_profiler.training_graph(0, 1)
        with collapse(True):
            clear_table_caches()
            optimize_stage(tg, mesh)
            memo = intra_op._COLLAPSE_MEMO[mesh]
            assert memo
            for costs, grouped in memo.values():
                assert not costs.flags.writeable
                assert not grouped.flags.writeable
