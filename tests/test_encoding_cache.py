"""Shared graph-encoding cache: hits, transparency, immutability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.ir.serialize import canonical_hash
from repro.predictors.encoding_cache import (
    EncodingCache,
    cached_encoding,
    compute_encoding,
    global_encoding_cache,
)


def _chain(name: str, suffix: str = ""):
    """A small matmul->relu->softmax graph; names vary, structure doesn't."""
    b = GraphBuilder(name)
    x = b.input(f"x{suffix}", (4, 8))
    w = b.param(f"w{suffix}", (8, 8))
    h = b.relu(b.matmul(x, w, name=f"h{suffix}"))
    b.output(b.softmax(h), f"out{suffix}")
    return b.build()


class TestEncodingCache:
    def test_hit_and_miss_accounting(self):
        cache = EncodingCache()
        g = _chain("a")
        e1 = cache.get(g)
        e2 = cache.get(g)
        assert e1 is e2
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_structurally_identical_graphs_share_one_entry(self):
        """The key is the name-free canonical hash: two graphs that differ
        only in graph/node names share one frozen encoding bundle."""
        cache = EncodingCache()
        e1 = cache.get(_chain("a", "1"))
        e2 = cache.get(_chain("b", "2"))
        assert e1 is e2
        assert len(cache) == 1

    def test_cached_equals_fresh(self):
        g = _chain("a")
        cached = EncodingCache().get(g)
        fresh = compute_encoding(g)
        assert np.array_equal(cached.raw_features, fresh.raw_features)
        assert np.array_equal(cached.features, fresh.features)
        assert np.array_equal(cached.reach, fresh.reach)
        assert np.array_equal(cached.depths, fresh.depths)
        assert np.array_equal(cached.adj, fresh.adj)
        assert np.array_equal(cached.adj_csr.toarray(), fresh.adj_csr.toarray())

    def test_cached_arrays_are_frozen(self):
        enc = EncodingCache().get(_chain("a"))
        for a in (enc.raw_features, enc.features, enc.reach, enc.depths,
                  enc.adj, enc.adj_csr.data):
            with pytest.raises(ValueError):
                a[...] = 0

    def test_env_gate_bypasses_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODING_CACHE", "off")
        cache = global_encoding_cache()
        cache.clear()
        g = _chain("a")
        e1 = cached_encoding(g)
        e2 = cached_encoding(g)
        assert e1 is not e2  # fresh bundle per call, nothing memoized
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)

    def test_clear_resets_entries_and_stats(self):
        cache = EncodingCache()
        cache.get(_chain("a"))
        cache.get(_chain("a"))
        cache.clear()
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)


class TestCanonicalHashMemo:
    def test_memo_stable_across_calls(self):
        g = _chain("a")
        assert canonical_hash(g) == canonical_hash(g)
        assert g._canonical_hash is not None

    def test_add_node_invalidates_memo(self):
        g = _chain("a")
        before = canonical_hash(g)
        last = g.nodes[-1]
        g.add_node("relu", [last.id], last.out)
        assert g._canonical_hash is None
        assert canonical_hash(g) != before
