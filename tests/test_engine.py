"""Parallel experiment engine: worker plumbing and serial/parallel parity."""

from __future__ import annotations

import pytest

import repro.experiments.cache as cache_mod
import repro.experiments.engine as engine
from repro.experiments import SMOKE
from repro.experiments.engine import grid_cells, n_jobs, parallel_map, run_grid
from repro.experiments.scenarios import scenario_grid


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """Point the global results cache at a throwaway directory."""
    def point_at(name):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / name))
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
    return point_at


class TestNJobs:
    def test_env_controls_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert n_jobs() == 3

    def test_env_one_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert n_jobs() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert n_jobs() == (os.cpu_count() or 1)

    def test_explicit_default_wins_over_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert n_jobs(default=2) == 2

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            n_jobs()

    def test_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert n_jobs() == 1


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, jobs=4) == \
            [x * x for x in items]

    def test_serial_path_runs_in_process(self):
        """jobs=1 must not fork: side effects stay visible."""
        seen = []
        out = parallel_map(lambda x: seen.append(x) or x, [1, 2, 3], jobs=1)
        assert out == [1, 2, 3] and seen == [1, 2, 3]

    def test_single_item_skips_pool(self):
        seen = []
        parallel_map(lambda x: seen.append(x), ["only"], jobs=8)
        assert seen == ["only"]

    def test_closures_cross_the_fork(self):
        """fn is inherited through fork, so closures over live state work."""
        offset = 1000
        assert parallel_map(lambda x: x + offset, list(range(8)), jobs=2) == \
            [x + 1000 for x in range(8)]

    def test_nested_parallelism_suppressed(self):
        """Inside a worker, n_jobs() must report 1 (no second-tier pools)."""
        inner = parallel_map(lambda _: n_jobs(), list(range(4)), jobs=2)
        assert inner == [1, 1, 1, 1]
        assert engine._IN_WORKER is False  # parent state untouched

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []


class TestGridCells:
    def test_canonical_table_order(self):
        cells = grid_cells("platform1", ("gcn", "gat"), (0.5, 0.8))
        scenarios = scenario_grid("platform1")
        assert len(cells) == len(scenarios) * 2 * 2
        assert cells[0] == (scenarios[0], 0.5, "gcn")
        assert cells[1] == (scenarios[0], 0.5, "gat")
        assert cells[2] == (scenarios[0], 0.8, "gcn")


class TestDeterminism:
    def test_table5_cell_serial_vs_four_workers(self, fresh_cache):
        """One Table V cell through the serial path and through a 4-worker
        pool must produce bit-identical MREs."""
        fresh_cache("serial")
        serial = run_grid("platform1", "gpt", SMOKE, ("gcn",), (0.5,), jobs=1)
        fresh_cache("par4")
        par = run_grid("platform1", "gpt", SMOKE, ("gcn",), (0.5,), jobs=4)
        assert serial == par
        assert len(serial) == len(scenario_grid("platform1"))
        assert all(v > 0 for v in serial.values())

    def test_parallel_results_land_in_shared_cache(self, fresh_cache,
                                                   tmp_path):
        """Workers write through the sharded cache, so a later serial pass
        re-reads their cells instead of retraining."""
        from repro.experiments.tables import cell_key, run_cell

        fresh_cache("shared")
        grid = run_grid("platform1", "gpt", SMOKE, ("gcn",), (0.5,), jobs=2)
        cache = cache_mod.global_cache()
        sc = scenario_grid("platform1")[0]
        key = cell_key(SMOKE, "gpt", sc, 0.5, "gcn", SMOKE.seed)
        assert cache.get(key) is not None
        cell = run_cell("gpt", sc, 0.5, "gcn", SMOKE)  # cache hit
        assert cell.mre == grid[(sc.key, 0.5, "gcn")]
