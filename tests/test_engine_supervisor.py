"""Fault-tolerant engine supervisor: retries, timeouts, dead-worker
resubmission, partial-failure accounting, and chaos-run determinism."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

import repro.experiments.cache as cache_mod
import repro.experiments.engine as engine
from repro import faults
from repro.experiments import SMOKE, manifest
from repro.experiments.cache import ResultsCache
from repro.experiments.engine import (
    CellFailure,
    parallel_map,
    run_grid,
    run_grid_report,
    supervised_map,
)
from repro.experiments.scenarios import scenario_grid


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """Point the global results cache at a throwaway directory."""
    def point_at(name):
        root = tmp_path / name
        monkeypatch.setenv("REPRO_CACHE", str(root))
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        return root
    return point_at


def _double(x):
    return x * 2


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestSupervisedMapMechanics:
    def test_plain_map_parallel(self):
        out = supervised_map(_double, list(range(9)), jobs=4, retries=0)
        assert out.results == [2 * x for x in range(9)]
        assert out.failures == [] and out.mode == "parallel"
        assert out.attempts == 9

    def test_plain_map_serial(self):
        out = supervised_map(_double, list(range(5)), jobs=1)
        assert out.results == [2 * x for x in range(5)]
        assert out.mode == "serial"

    def test_injected_crash_resubmitted(self, monkeypatch):
        """A worker that dies abruptly costs one retry, not the run."""
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=1")
        out = supervised_map(_double, [0, 1, 2], jobs=3, retries=2,
                             backoff=0.01)
        assert out.results == [0, 2, 4]
        assert out.failures == []
        assert out.attempts == 4  # 3 cells + 1 resubmission

    def test_hang_killed_and_retried(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cell_hang:at=0,secs=60")
        t0 = time.monotonic()
        out = supervised_map(_double, [0, 1], jobs=2, timeout=1.0,
                             retries=1, backoff=0.01)
        assert out.results == [0, 2]
        assert time.monotonic() - t0 < 30  # killed, not slept through

    def test_exception_retries_then_structured_failure(self):
        out = supervised_map(_fail_on_three, [1, 2, 3], jobs=2, retries=1,
                             backoff=0.0)
        assert out.results == [1, 2, None]
        (failure,) = out.failures
        assert isinstance(failure, CellFailure)
        assert failure.index == 2 and failure.failure_class == "exception"
        assert failure.attempts == 2
        assert "three is right out" in failure.detail

    def test_exhausted_crash_reports_exit_code(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=0,attempts=*")
        out = supervised_map(_double, [0, 1], jobs=2, retries=1,
                             backoff=0.01)
        assert out.results == [None, 2]
        (failure,) = out.failures
        assert failure.failure_class == "crash"
        assert str(faults.CRASH_EXIT_CODE) in failure.detail

    def test_serial_path_retries_injected_crash(self, monkeypatch):
        """In-process, worker_crash degrades to an exception + retry."""
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=0")
        out = supervised_map(_double, [0, 1], jobs=1, retries=1, backoff=0.0)
        assert out.results == [0, 2] and out.failures == []
        assert out.attempts == 3

    def test_manifest_journal_records_attempts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=1")
        supervised_map(_double, [0, 1, 2], jobs=2, retries=2, backoff=0.01,
                       manifest_root=tmp_path, run_id="t")
        events = manifest.read_events(tmp_path)
        kinds = [e["event"] for e in events]
        assert kinds.count("cell_attempt") == 4
        assert kinds.count("cell_done") == 3
        retry = next(e for e in events if e["event"] == "cell_retry")
        assert retry["class"] == "crash" and retry["index"] == 1
        assert "no events" not in manifest.summarize(events)

    def test_unhealthy_pool_degrades_to_serial(self, monkeypatch):
        class BrokenContext:
            def Pipe(self, duplex=False):
                raise OSError("fork bomb protection engaged")

            def Process(self, *a, **k):  # pragma: no cover
                raise OSError("no")

        monkeypatch.setattr(engine.multiprocessing, "get_context",
                            lambda kind: BrokenContext())
        with pytest.warns(UserWarning, match="unhealthy"):
            out = supervised_map(_double, [0, 1, 2], jobs=2, retries=0)
        assert out.results == [0, 2, 4]
        assert out.mode == "degraded"


class TestParallelMapDegradation:
    def test_pool_creation_failure_falls_back_serially(self, monkeypatch):
        class BrokenContext:
            def Pool(self, *a, **k):
                raise OSError("Resource temporarily unavailable")

        monkeypatch.setattr(engine.multiprocessing, "get_context",
                            lambda kind: BrokenContext())
        with pytest.warns(UserWarning, match="serially"):
            assert parallel_map(_double, [1, 2, 3], jobs=4) == [2, 4, 6]


class TestChaosGridDeterminism:
    def test_faulted_grid_bit_identical_to_clean_serial_run(
            self, fresh_cache, monkeypatch):
        """The acceptance scenario: a grid run surviving a worker crash,
        a hung cell, and a corrupted shard must complete and produce
        results bit-identical to a fault-free serial run (cell seeds
        derive from the profile, never from the attempt count)."""
        from repro.experiments.tables import cell_key

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        fresh_cache("clean")
        clean = run_grid("platform1", "gpt", SMOKE, ("gcn",), (0.5,), jobs=1)
        assert len(clean) == len(scenario_grid("platform1"))

        # cell 0's result shard gets corrupted right after its write
        scenario0 = scenario_grid("platform1")[0]
        key0 = cell_key(SMOKE, "gpt", scenario0, 0.5, "gcn", SMOKE.seed)
        shard0 = cache_mod._shard_index(key0)
        chaos_root = fresh_cache("chaos")
        monkeypatch.setenv(
            faults.ENV_VAR,
            f"worker_crash:at=1;cell_hang:at=2,secs=300;"
            f"shard_corrupt:at={shard0}")
        chaos = run_grid_report("platform1", "gpt", SMOKE, ("gcn",), (0.5,),
                                jobs=2, timeout=90, retries=2)
        assert chaos.failures == []
        assert chaos.results == clean
        assert chaos.attempts > chaos.cells  # the crash cost a retry

        # the manifest journaled the whole story
        events = manifest.read_events(chaos_root)
        kinds = {e["event"] for e in events}
        assert {"grid_start", "cell_attempt", "cell_retry", "cell_done",
                "grid_done"} <= kinds

        # the corrupted shard quarantines on read, and recomputing the
        # cell restores the identical value
        monkeypatch.delenv(faults.ENV_VAR)
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        fresh = cache_mod.global_cache()
        with pytest.warns(UserWarning, match="quarantined"):
            assert fresh.get(key0) is None
        from repro.experiments.tables import run_cell

        recomputed = run_cell("gpt", scenario0, 0.5, "gcn", SMOKE)
        assert recomputed.mre == clean[(scenario0.key, 0.5, "gcn")]
        assert fresh.get(key0) is not None  # cache rebuilt

    def test_exhausted_cell_reported_not_raised(self, fresh_cache,
                                                monkeypatch):
        """A cell that fails every attempt yields a failure record and a
        manifest entry; the other cells still complete."""
        root = fresh_cache("partial")
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=0,attempts=*")
        report = run_grid_report("platform1", "gpt", SMOKE, ("gcn",), (0.5,),
                                 jobs=2, retries=1)
        assert len(report.failures) == 1
        assert report.failures[0].failure_class == "crash"
        assert report.completed == report.cells - 1
        assert len(report.results) == report.cells - 1
        failed = [e for e in manifest.read_events(root)
                  if e["event"] == "cell_failed"]
        assert len(failed) == 1 and failed[0]["class"] == "crash"
        # the back-compat wrapper warns instead of raising
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        with pytest.warns(UserWarning, match="cells failed"):
            grid = run_grid("platform1", "gpt", SMOKE, ("gcn",), (0.5,),
                            jobs=2)
        assert len(grid) == report.cells - 1
