"""Experiment harness: profiles, scenarios, corpus, cells, reporting, cache."""

import numpy as np
import pytest

from repro.experiments import (
    PROFILES,
    SMOKE,
    ResultsCache,
    Scenario,
    active_profile,
    all_scenarios,
    best_kind_share,
    corpus_summary,
    grid_statistics,
    random_plan_latencies,
    render_mre_table,
    render_stats,
    run_cell,
    scenario_grid,
    stage_corpus,
)


class TestProfiles:
    def test_three_profiles(self):
        assert set(PROFILES) == {"smoke", "fast", "paper"}

    def test_paper_matches_protocol(self):
        p = PROFILES["paper"]
        assert p.epochs == 500
        assert p.patience == 200
        assert p.batch_size == 32
        assert p.fractions == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
        assert p.gpt_layers is None  # full Table-IV depth

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert active_profile().name == "smoke"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            active_profile()

    def test_train_config_propagates(self):
        cfg = SMOKE.train_config(seed=3)
        assert cfg.epochs == SMOKE.epochs
        assert cfg.seed == 3


class TestScenarios:
    def test_platform1_has_three(self):
        grid = scenario_grid("platform1")
        assert [(s.mesh_index, s.config_index) for s in grid] == [
            (1, 1), (2, 1), (2, 2)]

    def test_platform2_has_six(self):
        assert len(scenario_grid("platform2")) == 6

    def test_total_nine(self):
        assert len(all_scenarios()) == 9

    def test_scenario_shapes_match_table_iii(self):
        sc = scenario_grid("platform2")
        shapes = {(s.mesh_index, s.config_index): (s.dp, s.mp) for s in sc}
        assert shapes[(3, 1)] == (4, 1)
        assert shapes[(3, 2)] == (2, 2)
        assert shapes[(3, 3)] == (1, 4)

    def test_keys_unique(self):
        keys = [s.key for s in all_scenarios()]
        assert len(set(keys)) == len(keys)

    def test_mesh_resolution(self):
        sc = scenario_grid("platform2")[3]
        assert sc.mesh().num_devices == 4


class TestCorpus:
    def test_corpus_size(self):
        sc = scenario_grid("platform2")[1]
        samples = stage_corpus("gpt", sc, SMOKE)
        expected = (len(SMOKE.corpus_microbatches)
                    * SMOKE.gpt_units * (SMOKE.gpt_units + 1) // 2)
        assert len(samples) == expected

    def test_corpus_memoized(self):
        sc = scenario_grid("platform2")[1]
        a = stage_corpus("gpt", sc, SMOKE)
        b = stage_corpus("gpt", sc, SMOKE)
        assert a is b

    def test_summary(self):
        sc = scenario_grid("platform2")[1]
        s = corpus_summary(stage_corpus("gpt", sc, SMOKE))
        assert s["n_stages"] > 0
        assert s["latency_ms_max"] > s["latency_ms_min"] > 0


class TestCells:
    def test_run_cell_smoke(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c.json"))
        import repro.experiments.cache as cache_mod
        monkeypatch.setattr(cache_mod, "_GLOBAL", None)
        sc = scenario_grid("platform2")[0]
        cell = run_cell("gpt", sc, 0.5, "gcn", SMOKE)
        assert cell.mre > 0
        # second call must hit the cache (no retraining)
        again = run_cell("gpt", sc, 0.5, "gcn", SMOKE)
        assert again.mre == cell.mre


class TestAggregations:
    def _grid(self):
        return {
            ("s1", 0.5, "gcn"): 10.0, ("s1", 0.5, "gat"): 20.0,
            ("s1", 0.5, "dag_transformer"): 5.0,
            ("s2", 0.5, "gcn"): 30.0, ("s2", 0.5, "gat"): 6.0,
            ("s2", 0.5, "dag_transformer"): 7.0,
        }

    def test_grid_statistics(self):
        stats = grid_statistics(self._grid())
        assert stats["gcn"]["mean"] == pytest.approx(20.0)
        assert stats["dag_transformer"]["mean"] == pytest.approx(6.0)
        assert stats["dag_transformer"]["std"] == pytest.approx(1.0)

    def test_best_kind_share(self):
        share = best_kind_share(self._grid())
        assert share["dag_transformer"] == pytest.approx(0.5)
        assert share["gat"] == pytest.approx(0.5)
        assert share["gcn"] == 0.0


class TestReporting:
    def test_render_mre_table_marks_winner(self):
        grid = {}
        for sc in scenario_grid("platform1"):
            for k, v in (("gcn", 10.0), ("gat", 20.0),
                         ("dag_transformer", 5.0)):
                grid[(sc.key, 0.5, k)] = v
        text = render_mre_table(grid, "platform1", "gpt", (0.5,))
        assert "5.00*" in text
        assert "MRE" in text

    def test_render_stats(self):
        text = render_stats({"gcn": {"mean": 1.0, "std": 0.5, "n": 4}}, "T")
        assert "GCN" in text and "1.00" in text


class TestCache:
    def test_roundtrip(self, tmp_path):
        c = ResultsCache(tmp_path / "r.json")
        c.set("a/b", {"x": 1})
        c2 = ResultsCache(tmp_path / "r.json")
        assert c2.get("a/b") == {"x": 1}
        assert "a/b" in c2

    def test_off_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        c = ResultsCache()
        c.set("k", 1)
        assert c.path is None
        assert c.get("k") == 1  # in-memory only

    def test_corrupt_file_ignored(self, tmp_path):
        p = tmp_path / "r.json"
        p.write_text("{not json")
        c = ResultsCache(p)
        assert c.get("x") is None


class TestFig2:
    def test_random_plans_positive_and_spread(self):
        lats = random_plan_latencies("gpt", SMOKE, n_plans=8, seed=0)
        assert (lats > 0).all()
        assert lats.max() > lats.min()

    def test_deterministic_per_seed(self):
        a = random_plan_latencies("gpt", SMOKE, n_plans=5, seed=2)
        b = random_plan_latencies("gpt", SMOKE, n_plans=5, seed=2)
        assert np.allclose(a, b)
