"""CSV exporters."""

import csv

from repro.experiments.export import (
    export_mre_grid,
    export_series,
    export_use_case,
    write_csv,
)


def _read(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestExport:
    def test_write_csv(self, tmp_path):
        p = write_csv(tmp_path / "x.csv", ("a", "b"), [(1, 2), (3, 4)])
        rows = _read(p)
        assert rows[0] == ["a", "b"]
        assert rows[1:] == [["1", "2"], ["3", "4"]]

    def test_export_mre_grid(self, tmp_path):
        grid = {("s1", 0.5, "gcn"): 10.0, ("s1", 0.5, "gat"): 12.5}
        p = export_mre_grid(grid, tmp_path / "grid.csv")
        rows = _read(p)
        assert rows[0] == ["scenario", "fraction", "predictor", "mre_pct"]
        assert len(rows) == 3
        assert rows[1][3] == "12.5000"  # gat sorts first

    def test_export_series(self, tmp_path):
        p = export_series([0.1, 0.2], tmp_path / "s.csv", name="latency")
        rows = _read(p)
        assert rows[0] == ["index", "latency"]
        assert rows[2] == ["1", "0.2"]

    def test_export_use_case(self, tmp_path):
        data = {"full": {"cost": 100.0, "latency": 0.5, "stages": 2},
                "partial": {"cost": 50.0, "latency": 0.6, "stages": 3}}
        p = export_use_case(data, tmp_path / "u.csv")
        rows = _read(p)
        assert rows[0][0] == "approach"
        assert rows[1][0] == "full"
        assert rows[1][3] == "2"

    def test_creates_parent_dirs(self, tmp_path):
        p = write_csv(tmp_path / "deep" / "dir" / "x.csv", ("a",), [(1,)])
        assert p.exists()
