"""Differential suite: the accelerated predictor path is bit-identical.

Every optimization this layer stacks — the fast autograd engine
(gradient-buffer stealing, acyclic tape), precomputed attention masks,
the shared encoding cache, batched ensemble inference, and the parallel
ensemble fan-out — claims *bit-identity* with the seed configuration,
not tolerance-level agreement.  These tests pin that claim with ``==``
comparisons on losses, weights, and predictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import fastpath
from repro.predictors import (
    EnsemblePredictor,
    LatencyPredictor,
    StageSample,
    TrainConfig,
)

CFG = TrainConfig(epochs=5, patience=5, batch_size=4, lr=2e-3, seed=0)


@pytest.fixture
def reference_mode():
    """Run the test body under the seed engine + per-forward masks."""
    prev = fastpath.set_fast(False)
    yield
    fastpath.set_fast(prev)


def _fresh(corpus):
    return [StageSample(s.graph, s.latency, s.stage_id) for s in corpus]


def _fit(corpus, cfg=CFG, **kwargs):
    samples = _fresh(corpus)
    pred = LatencyPredictor(seed=0)
    result = pred.fit(samples[3:], samples[:3], cfg, **kwargs)
    return pred, result


def _assert_state_equal(a: dict, b: dict):
    assert set(a) == set(b)
    for k in a:
        assert np.array_equal(a[k], b[k]), k


class TestEngineDifferential:
    def test_fit_bit_identical(self, tiny_corpus):
        """Losses, weights, and predictions of a fast-mode fit equal the
        reference-mode fit exactly."""
        graphs = [s.graph for s in tiny_corpus]
        fast_p, fast_r = _fit(tiny_corpus)
        fast_preds = fast_p.predict_graphs(graphs)
        prev = fastpath.set_fast(False)
        try:
            ref_p, ref_r = _fit(tiny_corpus)
            ref_preds = ref_p.predict_graphs(graphs)
        finally:
            fastpath.set_fast(prev)
        assert fast_r.train_loss == ref_r.train_loss
        assert fast_r.val_loss == ref_r.val_loss
        assert fast_r.best_epoch == ref_r.best_epoch
        _assert_state_equal(fast_p.model.state_dict(), ref_p.model.state_dict())
        assert np.array_equal(fast_preds, ref_preds)

    def test_encoding_cache_bit_transparent(self, tiny_corpus, monkeypatch):
        fast_p, fast_r = _fit(tiny_corpus)
        monkeypatch.setenv("REPRO_ENCODING_CACHE", "off")
        off_p, off_r = _fit(tiny_corpus)
        assert fast_r.train_loss == off_r.train_loss
        _assert_state_equal(fast_p.model.state_dict(), off_p.model.state_dict())

    def test_resumed_checkpoint_fast_equals_uninterrupted_reference(
            self, tiny_corpus, tmp_path, reference_mode):
        """An interrupted-and-resumed fast-mode fit reproduces the
        uninterrupted reference-mode fit bit-for-bit (the checkpoint
        format and the replayed RNG/Adam state are mode-agnostic)."""
        ref_p, ref_r = _fit(tiny_corpus)  # reference engine (fixture)
        fastpath.set_fast(True)

        import repro.predictors.trainer as trainer_mod

        ckpt = tmp_path / "diff.npz"
        real = trainer_mod._save_checkpoint
        count = {"n": 0}

        class _Stop(Exception):
            pass

        def interrupt(*args, **kwargs):
            real(*args, **kwargs)
            if not kwargs.get("done"):
                count["n"] += 1
                if count["n"] >= 2:
                    raise _Stop()

        trainer_mod._save_checkpoint = interrupt
        try:
            with pytest.raises(_Stop):
                _fit(tiny_corpus, checkpoint_path=ckpt)
        finally:
            trainer_mod._save_checkpoint = real
        res_p, res_r = _fit(tiny_corpus, checkpoint_path=ckpt, resume=True)
        assert res_r.train_loss == ref_r.train_loss
        assert res_r.val_loss == ref_r.val_loss
        _assert_state_equal(res_p.model.state_dict(), ref_p.model.state_dict())


class TestEnsembleDifferential:
    def _ens_fit(self, corpus, jobs):
        samples = _fresh(corpus)
        ens = EnsemblePredictor(seed=0, size=3)
        ens.fit(samples[3:], samples[:3], CFG, jobs=jobs)
        return ens

    def test_parallel_fit_equals_serial(self, tiny_corpus):
        serial = self._ens_fit(tiny_corpus, jobs=1)
        parallel = self._ens_fit(tiny_corpus, jobs=2)
        assert len(serial.members) == len(parallel.members) == 3
        for a, b in zip(serial.members, parallel.members):
            assert a.seed == b.seed
            _assert_state_equal(a.model.state_dict(), b.model.state_dict())

    def test_predict_many_equals_stacked_members(self, tiny_corpus):
        ens = self._ens_fit(tiny_corpus, jobs=1)
        graphs = [s.graph for s in tiny_corpus]
        mean, std, ood = ens.predict_many(graphs)
        stacked = np.stack([m.predict_graphs(graphs) for m in ens.members])
        assert np.array_equal(mean, stacked.mean(axis=0))
        assert np.array_equal(std, stacked.std(axis=0))
        expect_ood = np.array([ens.feature_stats.ood_score(g)
                               for g in graphs], np.float64)
        assert np.array_equal(ood, expect_ood)

    def test_predict_many_empty(self, tiny_corpus):
        ens = self._ens_fit(tiny_corpus, jobs=1)
        mean, std, ood = ens.predict_many([])
        assert mean.shape == std.shape == ood.shape == (0,)
