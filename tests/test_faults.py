"""Deterministic fault-injection harness: grammar and firing semantics."""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultRule, FaultSpecError, InjectedFault, parse_faults


class TestParse:
    def test_empty_spec_is_no_plan(self):
        assert parse_faults("") == ()
        assert parse_faults(" ; ; ") == ()

    def test_full_grammar(self):
        rules = parse_faults(
            "worker_crash:at=1|3;cell_hang:at=2,secs=7.5;"
            "io_error:p=0.25,seed=9,attempts=*;train_diverge")
        assert [r.site for r in rules] == [
            "worker_crash", "cell_hang", "io_error", "train_diverge"]
        assert rules[0].at == frozenset({1, 3})
        assert rules[1].secs == 7.5
        assert rules[2].p == 0.25 and rules[2].seed == 9
        assert rules[2].attempts is None  # '*' = every attempt
        assert rules[3].at is None  # every index

    def test_default_attempts_is_first_try_only(self):
        (rule,) = parse_faults("worker_crash")
        assert rule.fires(0, attempt=0)
        assert not rule.fires(0, attempt=1)  # retries succeed by default

    def test_bad_specs_raise(self):
        for spec in ("sigsegv", "worker_crash:at=x", "cell_hang:secs=lots",
                     "io_error:p=2.0", "worker_crash:at", "io_error:seed=q",
                     "worker_crash:color=red"):
            with pytest.raises(FaultSpecError):
                parse_faults(spec)

    def test_probability_is_deterministic_and_roughly_calibrated(self):
        (rule,) = parse_faults("io_error:p=0.3,seed=5,attempts=*")
        draws = [rule.fires(i, 0) for i in range(2000)]
        assert draws == [rule.fires(i, 0) for i in range(2000)]  # pure
        assert 0.2 < sum(draws) / len(draws) < 0.4
        (reseeded,) = parse_faults("io_error:p=0.3,seed=6,attempts=*")
        assert draws != [reseeded.fires(i, 0) for i in range(2000)]


class TestInjection:
    def test_no_env_means_no_faults(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert not faults.faults_active()
        assert faults.check("worker_crash", 0) is None
        faults.fire("worker_crash", 0)  # no-op

    def test_check_respects_site_index_attempt(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "train_diverge:at=4")
        assert faults.check("train_diverge", 4) is not None
        assert faults.check("train_diverge", 3) is None
        assert faults.check("train_diverge", 4, attempt=1) is None
        assert faults.check("worker_crash", 4) is None

    def test_crash_raises_in_process(self, monkeypatch):
        """Outside an engine worker, worker_crash surfaces as an
        exception (a hard os._exit would kill the test runner)."""
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash")
        with pytest.raises(InjectedFault):
            faults.fire("worker_crash", 0)

    def test_io_error_fires_oserror(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "io_error:at=7")
        with pytest.raises(OSError):
            faults.fire("io_error", 7)
        faults.fire("io_error", 8)  # other indices untouched

    def test_decision_only_sites_refuse_fire(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "shard_corrupt")
        with pytest.raises(InjectedFault):
            faults.fire("shard_corrupt", 0)

    def test_plan_cache_follows_env_value(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=1")
        assert faults.check("worker_crash", 1) is not None
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:at=2")
        assert faults.check("worker_crash", 1) is None
        assert faults.check("worker_crash", 2) is not None


class TestCorruptFile:
    def test_corruption_breaks_json_but_keeps_file(self, tmp_path):
        import json

        path = tmp_path / "shard.json"
        path.write_text(json.dumps({"k": list(range(200))}))
        faults.corrupt_file(path)
        assert path.is_file() and path.stat().st_size > 0
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text(errors="replace"))
