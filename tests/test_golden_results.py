"""Golden regression tests pinning ``results/fast/*.csv``.

The checked-in fast-profile artifacts are the reproduction's reference
numbers; engine or cache refactors must not silently change them.  Two
tiers:

* always-on — structural validation of every pinned CSV against the
  current scenario grid / approach list, plus a full value-exact recompute
  of Fig 2 (cheap: profiling only, no predictor training);
* ``REPRO_GOLDEN=1`` — value-exact recompute of Table 5 and Fig 10 with
  the results cache disabled (minutes of predictor training; run in CI's
  golden job or before cutting a release).

All recomputes run with ``REPRO_CACHE=off`` so they cannot be satisfied
by — or polluted with — cached cells.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

import pytest

import repro.experiments.cache as cache_mod
from repro.core.search import APPROACHES
from repro.experiments import FAST
from repro.experiments.scenarios import scenario_grid
from repro.predictors.base import PREDICTOR_KINDS

RESULTS = Path(__file__).resolve().parents[1] / "results" / "fast"

run_golden = pytest.mark.skipif(
    os.environ.get("REPRO_GOLDEN") != "1",
    reason="full golden recompute is minutes of training; set REPRO_GOLDEN=1")


def _read(name: str) -> list[dict[str, str]]:
    path = RESULTS / name
    assert path.is_file(), f"pinned artifact {name} missing"
    with path.open() as fh:
        return list(csv.DictReader(fh))


@pytest.fixture
def cache_off(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setattr(cache_mod, "_GLOBAL", None)


class TestPinnedStructure:
    def test_table5_covers_the_full_grid(self):
        for family in ("gpt", "moe"):
            rows = _read(f"table5_{family}.csv")
            keys = {(r["scenario"], r["fraction"], r["predictor"])
                    for r in rows}
            expected = {(sc.key, f"{f:.2f}", k)
                        for sc in scenario_grid("platform1")
                        for f in FAST.fractions for k in PREDICTOR_KINDS}
            assert keys == expected
            assert all(float(r["mre_pct"]) > 0 for r in rows)

    def test_fig10_covers_all_approaches(self):
        for family in ("gpt", "moe"):
            rows = _read(f"fig10_{family}.csv")
            assert {r["approach"] for r in rows} == set(APPROACHES)
            assert all(float(r["opt_cost_s"]) > 0 for r in rows)
            assert all(float(r["plan_latency_s"]) > 0 for r in rows)

    def test_fig2_has_the_profiles_plan_count(self):
        for family in ("gpt", "moe"):
            rows = _read(f"fig2_{family}.csv")
            assert len(rows) == FAST.fig2_plans
            lats = [float(r["iteration_latency_s"]) for r in rows]
            assert min(lats) > 0 and max(lats) > min(lats)


class TestFig2Golden:
    def test_fig2_values_exact(self, cache_off):
        """Fig 2 recomputes in ~1 s; keep it value-exact in every run."""
        from repro.experiments import random_plan_latencies

        for family in ("gpt", "moe"):
            golden = [r["iteration_latency_s"]
                      for r in _read(f"fig2_{family}.csv")]
            lats = random_plan_latencies(family, FAST,
                                         n_plans=FAST.fig2_plans,
                                         seed=FAST.seed)
            assert [f"{v:.6g}" for v in lats] == golden, family


class TestScheduleGridGolden:
    def test_schedule_grid_values_exact(self, cache_off):
        """Schedule cells recompute in seconds (profiling + closed forms,
        no predictor training); keep all four families value-exact in
        every run.  Each recompute re-runs ``ScheduleSpec.validate``, so
        this also re-asserts simulator == closed form on the pinned
        stage vectors."""
        from repro.experiments.schedule_grid import run_schedule_cell
        from repro.runtime.schedules import schedule_names

        for family in ("gpt", "moe", "bert", "vit"):
            rows = {r["schedule"]: r
                    for r in _read(f"schedule_grid_{family}.csv")}
            assert set(rows) == set(schedule_names()), family
            for name, r in rows.items():
                cell = run_schedule_cell(family, name, FAST)
                assert f"{cell.closed_form:.9g}" == r["closed_form_s"], \
                    (family, name)
                assert f"{cell.simulated:.9g}" == r["simulated_s"], \
                    (family, name)
                assert f"{cell.lower_bound:.9g}" == r["lower_bound_s"], \
                    (family, name)
                assert str(cell.n_events) == r["n_events"], (family, name)
                assert str(cell.n_stages) == r["n_stages"], (family, name)
                assert str(cell.n_microbatches) == r["n_microbatches"], \
                    (family, name)
                assert " ".join(f"{t:.9g}" for t in cell.stage_times) == \
                    r["stage_times_s"], (family, name)


@run_golden
class TestTable5Golden:
    def test_table5_values_exact(self, cache_off):
        from repro.experiments.tables import mre_grid

        for family in ("gpt", "moe"):
            golden = {(r["scenario"], r["fraction"], r["predictor"]):
                      r["mre_pct"] for r in _read(f"table5_{family}.csv")}
            grid = mre_grid("platform1", family, FAST, jobs=1)
            got = {(sc, f"{frac:.2f}", kind): f"{v:.4f}"
                   for (sc, frac, kind), v in grid.items()}
            assert got == golden, family


@run_golden
class TestFig10Golden:
    def test_fig10_plans_exact_costs_close(self, cache_off):
        """Plan choice and ground-truth latency are deterministic and pin
        exactly; optimization cost includes *real* predictor-training wall
        seconds, so it only pins within a factor."""
        from repro.experiments import run_use_case

        for family in ("gpt", "moe"):
            golden = {r["approach"]: r for r in _read(f"fig10_{family}.csv")}
            result = run_use_case(family, FAST, jobs=1)
            assert set(result.results) == set(golden)
            for a, r in result.results.items():
                assert f"{r.true_iteration_latency:.6f}" == \
                    golden[a]["plan_latency_s"], (family, a)
                assert str(r.plan.n_stages) == golden[a]["n_stages"], \
                    (family, a)
                pinned = float(golden[a]["opt_cost_s"])
                assert pinned / 2 <= r.optimization_cost <= pinned * 2, \
                    (family, a)
