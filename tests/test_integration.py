"""End-to-end integration: the full gray-box pipeline on a tiny setup."""

import numpy as np
import pytest

from repro import (
    PLATFORM1,
    PLATFORM2,
    PredTOP,
    PredTOPConfig,
    TrainConfig,
    benchmark_config,
    build_model,
    cluster_layers,
)
from repro.runtime import StageProfiler, whitebox_latency


@pytest.mark.parametrize("family", ["gpt", "moe"])
def test_full_gray_box_pipeline(family):
    """Profile → train → predict → compose, with sane outputs end to end."""
    model = build_model(benchmark_config(family, n_layers=2))
    clustering = cluster_layers(model, 3)
    mesh = PLATFORM2.mesh(2)
    predtop = PredTOP(
        model, clustering, mesh,
        PredTOPConfig(sample_fraction=0.9,
                      train=TrainConfig(epochs=25, patience=25, batch_size=4),
                      seed=0),
        profiler=StageProfiler(model, aggressive_fusion=True),
    )
    preds = predtop.run_all_phases(dp=2, mp=1)
    assert len(preds) == len(clustering.all_slices())
    # predictions positive and same order of magnitude as ground truth
    for (s, e), pred in preds.items():
        true = predtop.profiler.profile_stage(s, e, mesh, 2, 1).latency
        assert 0 < pred < 50 * true
    # longest slice should be predicted slower than the shortest one
    shortest = min(preds, key=lambda se: se[1] - se[0])
    longest = max(preds, key=lambda se: se[1] - se[0])
    assert preds[longest] > preds[shortest]


def test_gray_box_end_to_end_latency_composition():
    """Eqn 4 over predicted stage times approximates the simulated plan."""
    model = build_model(benchmark_config("gpt", n_layers=2))
    clustering = cluster_layers(model, 2)
    mesh = PLATFORM2.mesh(2)
    profiler = StageProfiler(model, aggressive_fusion=True)
    t = [profiler.profile_stage(*clustering.slice_range(u, u + 1),
                                mesh, 2, 1).latency
         for u in range(2)]
    from repro.runtime import simulated_latency

    B = 8
    assert whitebox_latency(t, B) == pytest.approx(simulated_latency(t, B))


def test_platform1_and_platform2_differ():
    """Same stage, same logical config, different GPUs -> different truth."""
    model = build_model(benchmark_config("gpt", n_layers=2))
    profiler = StageProfiler(model, aggressive_fusion=True)
    p1 = profiler.profile_stage(1, 3, PLATFORM1.mesh(2), 2, 1)
    p2 = profiler.profile_stage(1, 3, PLATFORM2.mesh(2), 2, 1)
    assert p1.latency != p2.latency


def test_moe_stages_slower_than_gpt_at_same_depth():
    """MoE blocks carry expert FFNs: more work per block than dense GPT
    blocks of the same width scale."""
    gpt = build_model(benchmark_config("gpt", n_layers=2))
    moe = build_model(benchmark_config("moe", n_layers=2))
    pg = StageProfiler(gpt, aggressive_fusion=True)
    pm = StageProfiler(moe, aggressive_fusion=True)
    mesh = PLATFORM2.mesh(1)
    g = pg.profile_stage(1, 3, mesh, 1, 1)
    m = pm.profile_stage(1, 3, mesh, 1, 1)
    # per-param compute is comparable; MoE has ~4.7x params in 2 blocks
    assert m.profile.compute_time != g.profile.compute_time


def test_predictor_transfers_to_unseen_slices():
    """Train on a subset of slices, predict disjoint slices sensibly."""
    model = build_model(benchmark_config("gpt", n_layers=4))
    clustering = cluster_layers(model, 6)
    mesh = PLATFORM2.mesh(2)
    profiler = StageProfiler(model, aggressive_fusion=True)
    from repro.predictors import LatencyPredictor, StageSample

    slices = clustering.all_slices()
    train_slices = [s for i, s in enumerate(slices) if i % 2 == 0]
    test_slices = [s for i, s in enumerate(slices) if i % 2 == 1]
    train = [StageSample(profiler.predictor_graph(*sl),
                         profiler.profile_stage(*sl, mesh, 2, 1).latency)
             for sl in train_slices]
    lp = LatencyPredictor("gcn", seed=0)
    lp.fit(train[:-2], train[-2:],
           TrainConfig(epochs=120, patience=120, batch_size=8, lr=2e-3))
    true = np.array([profiler.profile_stage(*sl, mesh, 2, 1).latency
                     for sl in test_slices])
    pred = lp.predict_graphs([profiler.predictor_graph(*sl)
                              for sl in test_slices])
    # rank correlation: bigger stages predicted bigger
    order_true = np.argsort(true)
    order_pred = np.argsort(pred)
    from scipy.stats import spearmanr

    rho, _ = spearmanr(true, pred)
    assert rho > 0.8
