"""Alpa inter-op DP: stage slicing + submesh assignment."""

import pytest

from repro.cluster import PLATFORM2, enumerate_submeshes
from repro.models import cluster_layers
from repro.parallel import LatencyTable, ParallelPlan, slice_stages
from repro.parallel.inter_op import INFEASIBLE
from repro.runtime import whitebox_latency


def _uniform_table(n_units, submeshes, unit_time=1.0, scaling=None):
    """Stage latency = covered units' work / devices (perfect scaling)."""
    t = LatencyTable()
    for i in range(n_units):
        for j in range(i + 1, n_units + 1):
            for mi, m in enumerate(submeshes):
                s = (scaling or (lambda d: d))(m.num_devices)
                t.set(i, j, mi, (j - i) * unit_time / s)
    return t


@pytest.fixture(scope="module")
def cluster():
    return PLATFORM2.cluster()


@pytest.fixture(scope="module")
def submeshes(cluster):
    return enumerate_submeshes(cluster)


@pytest.fixture(scope="module")
def clustering(tiny_gpt):
    return cluster_layers(tiny_gpt, 4)


class TestDP:
    def test_covers_all_units_and_devices(self, clustering, submeshes, cluster):
        table = _uniform_table(clustering.n_units, submeshes)
        plan = slice_stages(clustering, submeshes, table, 8,
                            total_devices=cluster.num_devices)
        assert plan.feasible
        assert plan.total_devices() == cluster.num_devices
        covered = []
        for st in plan.stages:
            covered.extend(range(*st.unit_range))
        assert covered == list(range(clustering.n_units))

    def test_stages_contiguous_and_ordered(self, clustering, submeshes, cluster):
        table = _uniform_table(clustering.n_units, submeshes)
        plan = slice_stages(clustering, submeshes, table, 8,
                            total_devices=cluster.num_devices)
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert a.unit_range[1] == b.unit_range[0]

    def test_iteration_latency_matches_eqn4(self, clustering, submeshes, cluster):
        table = _uniform_table(clustering.n_units, submeshes)
        plan = slice_stages(clustering, submeshes, table, 8,
                            total_devices=cluster.num_devices)
        assert plan.iteration_latency == pytest.approx(
            whitebox_latency(plan.stage_latencies(), 8))

    def test_optimal_vs_exhaustive_small(self, clustering, submeshes, cluster):
        """DP result equals brute force over all partitions/assignments."""
        import itertools

        table = _uniform_table(clustering.n_units, submeshes,
                               scaling=lambda d: d ** 0.7)
        B = 4
        U = clustering.n_units
        D = cluster.num_devices
        best = INFEASIBLE
        sizes = [m.num_devices for m in submeshes]
        for k in range(1, U + 1):
            for cuts in itertools.combinations(range(1, U), k - 1):
                bounds = [0, *cuts, U]
                for assign in itertools.product(range(len(submeshes)), repeat=k):
                    if sum(sizes[a] for a in assign) != D:
                        continue
                    times = [table.latency(bounds[i], bounds[i + 1], assign[i])
                             for i in range(k)]
                    best = min(best, whitebox_latency(times, B))
        plan = slice_stages(clustering, submeshes, table, B, total_devices=D)
        assert plan.iteration_latency == pytest.approx(best)

    def test_large_B_prefers_more_stages(self, clustering, submeshes, cluster):
        """With many microbatches, deep pipelines amortize better when
        scaling is sublinear."""
        table = _uniform_table(clustering.n_units, submeshes,
                               scaling=lambda d: d ** 0.3)
        shallow = slice_stages(clustering, submeshes, table, 1,
                               total_devices=cluster.num_devices)
        deep = slice_stages(clustering, submeshes, table, 64,
                            total_devices=cluster.num_devices)
        assert deep.n_stages >= shallow.n_stages

    def test_infeasible_when_table_empty(self, clustering, submeshes, cluster):
        plan = slice_stages(clustering, submeshes, LatencyTable(), 8,
                            total_devices=cluster.num_devices)
        assert not plan.feasible

    def test_partial_table_respected(self, clustering, submeshes, cluster):
        """Entries missing from the table are infeasible for the DP."""
        table = _uniform_table(clustering.n_units, submeshes)
        # forbid the whole-model single stage on the 4-GPU submesh
        full_idx = max(range(len(submeshes)),
                       key=lambda i: submeshes[i].num_devices)
        table.values.pop((0, clustering.n_units, full_idx))
        plan = slice_stages(clustering, submeshes, table, 8,
                            total_devices=cluster.num_devices)
        assert plan.feasible
        assert not (plan.n_stages == 1
                    and plan.stages[0].submesh_index == full_idx)

    def test_max_stages_cap(self, clustering, submeshes, cluster):
        table = _uniform_table(clustering.n_units, submeshes,
                               scaling=lambda d: d ** 0.1)
        plan = slice_stages(clustering, submeshes, table, 64,
                            total_devices=cluster.num_devices, max_stages=2)
        assert plan.n_stages <= 2 or not plan.feasible


class TestPlanContainer:
    def test_describe_includes_stages(self, clustering, submeshes, cluster):
        table = _uniform_table(clustering.n_units, submeshes)
        plan = slice_stages(clustering, submeshes, table, 8,
                            total_devices=cluster.num_devices)
        text = plan.describe()
        assert "stage 0" in text

    def test_infeasible_describe(self):
        assert "infeasible" in ParallelPlan([], float("inf"), 4).describe()


class TestParallelCandidateSweep:
    """slice_stages(jobs>1) fans the candidate-t_max DPs across the
    engine pool; the in-order reduction must pick the identical plan."""

    def _random_table(self, n_units, submeshes, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        t = LatencyTable()
        for i in range(n_units):
            for j in range(i + 1, n_units + 1):
                for mi, m in enumerate(submeshes):
                    if rng.random() < 0.1:
                        continue  # leave holes: infeasible entries
                    t.set(i, j, mi, float(
                        (j - i) * rng.uniform(0.5, 2.0) / m.num_devices))
        return t

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_serial(self, clustering, submeshes, cluster,
                                     seed):
        table = self._random_table(clustering.n_units, submeshes, seed)
        serial = slice_stages(clustering, submeshes, table, 8,
                              total_devices=cluster.num_devices, jobs=1)
        par = slice_stages(clustering, submeshes, table, 8,
                           total_devices=cluster.num_devices, jobs=4)
        assert par.iteration_latency == serial.iteration_latency
        assert [(st.unit_range, st.submesh_index, st.latency)
                for st in par.stages] == \
            [(st.unit_range, st.submesh_index, st.latency)
             for st in serial.stages]

    def test_bit_identical_under_schedule(self, clustering, submeshes,
                                          cluster):
        from repro.runtime.schedules import get_schedule
        table = self._random_table(clustering.n_units, submeshes, 7)
        sched = get_schedule("gpipe")
        serial = slice_stages(clustering, submeshes, table, 8,
                              total_devices=cluster.num_devices,
                              schedule=sched, jobs=1)
        par = slice_stages(clustering, submeshes, table, 8,
                           total_devices=cluster.num_devices,
                           schedule=sched, jobs=4)
        assert par.iteration_latency == serial.iteration_latency
