"""Property tests for the intra-op DP on randomized graphs and meshes.

Three invariants the optimizer must hold for *any* stage graph:

* **consistency** — every committed producer/consumer sharding pair is
  resolvable by :func:`reshard_time` (finite, non-negative), so the
  executor can always cost the plan;
* **fallback dominance** — the DP estimate never exceeds the cost of the
  always-feasible fully-replicated execution, i.e. an infeasible strategy
  table can only fall back to replication, never "win" with a bogus cost;
* **estimate fidelity** — ``estimated_time`` stays within a fixed factor
  of the executor's authoritative (noise-free) cost.

Graphs are generated from a seeded rng (odd, non-dividing dims included,
to force per-node fallbacks on larger meshes); meshes cover both
platforms' link classes and 1/2/4-device shapes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import A40, NVLINK, PCIE4, RTX_A5500, TEN_GBE, DeviceMesh
from repro.cluster.mesh import logical_views
from repro.ir import GraphBuilder
from repro.ir.autodiff import build_training_graph
from repro.parallel.intra_op import optimize_stage
from repro.parallel.resharding import reshard_time
from repro.runtime.executor import execute_plan
from repro.runtime.opcost import op_time

#: estimate vs authoritative-cost envelope (measured ~[0.93, 1.0] on the
#: GPT/MoE stage corpus; 2x leaves headroom without losing the property)
ESTIMATE_FACTOR = 2.0

MESHES = [
    DeviceMesh(1, 1, A40, PCIE4, TEN_GBE),
    DeviceMesh(1, 2, A40, PCIE4, TEN_GBE),
    DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE),
    DeviceMesh(1, 4, RTX_A5500, NVLINK, TEN_GBE),
    DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE),
]


def random_graph(rng: np.random.Generator, name: str):
    """A small random stage DAG mixing matmuls, norms, and elementwise ops.

    Dims are drawn from {3, 4, 5, 8, 16} so sharding candidates on 2- and
    4-way axes are frequently infeasible (non-dividing), exercising the
    replicated-fallback path of the DP.
    """
    dims = (3, 4, 5, 8, 16)
    b = GraphBuilder(name)
    batch = int(rng.choice(dims))
    width = int(rng.choice(dims))
    h = b.input("x", (batch, width))
    skip = h
    for i in range(int(rng.integers(1, 6))):
        kind = int(rng.integers(0, 5))
        if kind == 0:
            w = b.param(f"w{i}", (h.shape[-1], int(rng.choice(dims))))
            h = b.matmul(h, w)
        elif kind == 1:
            h = b.relu(h)
        elif kind == 2:
            s = b.param(f"s{i}", (h.shape[-1],))
            bias = b.param(f"b{i}", (h.shape[-1],))
            h = b.layer_norm(h, s, bias)
        elif kind == 3:
            h = b.softmax(h)
        else:
            if skip.shape == h.shape:  # residual: a node with two consumers
                h = b.add(h, skip)
            else:
                h = b.gelu(h)
        if int(rng.integers(0, 3)) == 0:
            skip = h
    b.output(h, "out")
    return b.build()


def replicated_total(graph, mesh) -> float:
    """Cost of executing every operator replicated (factor 1, no comm)."""
    return sum(
        op_time(n, [graph.nodes[i].out for i in n.inputs], mesh.gpu, 1.0)
        for n in graph.nodes if n.node_type == "operator")


def check_invariants(graph, mesh):
    plan = optimize_stage(graph, mesh)

    # consistency: every committed edge is resolvable by reshard_time
    for node in graph.nodes:
        assign = plan.assignments[node.id]
        if node.node_type == "operator":
            assert len(assign.in_specs) == len(node.inputs)
        for slot, pid in enumerate(node.inputs):
            if slot >= len(assign.in_specs):
                continue
            rs = reshard_time(plan.spec_of(pid), assign.in_specs[slot],
                              graph.nodes[pid].out, mesh)
            assert math.isfinite(rs) and rs >= 0.0

    # fallback dominance: replication is always available, so no table —
    # feasible or degenerate — may commit to a costlier plan estimate
    est = plan.estimated_time
    assert math.isfinite(est) and est >= 0.0
    rep = replicated_total(graph, mesh)
    assert est <= rep * (1 + 1e-6) + 1e-12

    # estimate fidelity vs the executor's authoritative cost
    auth = execute_plan(plan, noise=False).latency
    assert math.isfinite(auth)
    if auth > 0:
        assert auth / ESTIMATE_FACTOR <= est <= auth * ESTIMATE_FACTOR
    return plan


class TestIntraOpProperties:
    @given(seed=st.integers(0, 10**9), mesh_idx=st.integers(0, len(MESHES) - 1))
    @settings(max_examples=25, deadline=None)
    def test_forward_graph_invariants(self, seed, mesh_idx):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, f"prop{seed}")
        for logical in logical_views(MESHES[mesh_idx]):
            check_invariants(graph, logical)

    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_training_graph_invariants(self, seed):
        """The autodiff-expanded graph (grad + Adam nodes, heavy fan-out)
        must satisfy the same invariants."""
        rng = np.random.default_rng(seed)
        graph = build_training_graph(random_graph(rng, f"train{seed}"))
        mesh = MESHES[int(rng.integers(0, len(MESHES)))]
        for logical in logical_views(mesh):
            check_invariants(graph, logical)

    def test_odd_dims_force_fallback_yet_stay_consistent(self):
        """Dims coprime with every axis size leave only replication."""
        b = GraphBuilder("odd")
        x = b.input("x", (3, 5))
        w = b.param("w", (5, 7))
        b.output(b.relu(b.matmul(x, w)), "out")
        graph = b.build()
        mesh = DeviceMesh(1, 4, RTX_A5500, NVLINK, TEN_GBE).logical(1, 4)
        plan = check_invariants(graph, mesh)
        for node in graph.nodes:
            if node.node_type == "operator":
                spec = plan.spec_of(node.id)
                assert spec.normalized(mesh).is_replicated

    def test_beneficial_sharding_beats_replication(self, tiny_gpt_profiler):
        """On a real stage graph with divisible dims the DP must find a
        plan strictly cheaper than all-replicated execution."""
        tg = tiny_gpt_profiler.training_graph(0, 2)
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        plan = check_invariants(tg, mesh)
        assert plan.estimated_time < replicated_total(tg, mesh)
