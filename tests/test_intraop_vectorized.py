"""Differential tests: vectorized intra-op DP ≡ pure-Python reference.

The vectorized :func:`optimize_stage` must be **bit-identical** to
:func:`optimize_stage_reference` — same DP estimate, same committed
strategy (output/input shardings, factor, comm time) at every node, and
the executor must produce equal :class:`StageProfile`s from both plans.
Equality, not closeness: the vectorized path replays every float
operation of the reference in the same order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVLINK, RTX_A5500, TEN_GBE, DeviceMesh
from repro.cluster.mesh import logical_views
from repro.ir import GraphBuilder
from repro.ir.autodiff import build_training_graph
from repro.parallel.intra_op import (clear_table_caches, optimize_stage,
                                     optimize_stage_reference)
from repro.runtime.executor import execute_plan

from .test_intra_op_properties import MESHES, random_graph


def strategy_key(assignment):
    s = assignment.strategy
    return (s.out.assignments, tuple(i.assignments for i in s.ins),
            s.factor, s.comm_time)


def assert_identical(graph, mesh):
    vec = optimize_stage(graph, mesh)
    ref = optimize_stage_reference(graph, mesh)
    assert vec.estimated_time == ref.estimated_time  # bitwise, no tolerance
    for nid in range(len(graph)):
        assert strategy_key(vec.assignments[nid]) == \
            strategy_key(ref.assignments[nid]), f"node {nid} diverged"
    assert execute_plan(vec) == execute_plan(ref)
    return vec


class TestDifferential:
    @given(seed=st.integers(0, 10**9),
           mesh_idx=st.integers(0, len(MESHES) - 1))
    @settings(max_examples=25, deadline=None)
    def test_forward_graphs(self, seed, mesh_idx):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, f"vecdiff{seed}")
        for logical in logical_views(MESHES[mesh_idx]):
            assert_identical(graph, logical)

    @given(seed=st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_training_graphs(self, seed):
        rng = np.random.default_rng(seed)
        graph = build_training_graph(random_graph(rng, f"vectrain{seed}"))
        mesh = MESHES[int(rng.integers(0, len(MESHES)))]
        for logical in logical_views(mesh):
            assert_identical(graph, logical)

    def test_fallback_path(self):
        """Dims coprime with every axis force the replicated fallback in
        both implementations — including its no-edge-charge cost rule."""
        b = GraphBuilder("oddvec")
        x = b.input("x", (3, 5))
        w = b.param("w", (5, 7))
        b.output(b.relu(b.matmul(x, w)), "out")
        graph = b.build()
        mesh = DeviceMesh(1, 4, RTX_A5500, NVLINK, TEN_GBE).logical(1, 4)
        assert_identical(graph, mesh)

    def test_gpt_stage_all_views(self, tiny_gpt_profiler):
        tg = tiny_gpt_profiler.training_graph(0, 2)
        for mesh in (DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE),
                     DeviceMesh(2, 2, RTX_A5500, NVLINK, TEN_GBE)):
            for logical in logical_views(mesh):
                assert_identical(tg, logical)

    def test_solve_plan_reuse_is_stable(self, tiny_gpt_profiler):
        """Repeat solves (prepared-plan cache hits) return identical
        results, and clearing the caches does not change them."""
        tg = tiny_gpt_profiler.training_graph(1, 2)
        mesh = DeviceMesh(1, 2, RTX_A5500, NVLINK, TEN_GBE).logical(2, 1)
        first = optimize_stage(tg, mesh)
        second = optimize_stage(tg, mesh)
        clear_table_caches()
        third = optimize_stage(tg, mesh)
        for other in (second, third):
            assert other.estimated_time == first.estimated_time
            for a, b in zip(first.assignments, other.assignments):
                assert strategy_key(a) == strategy_key(b)


class TestReferenceGate:
    def test_env_routes_to_reference(self, tiny_gpt_profiler, monkeypatch):
        from repro.parallel import plan_cache

        monkeypatch.setenv("REPRO_INTRAOP", "reference")
        assert plan_cache._optimize_impl() is optimize_stage_reference
        monkeypatch.delenv("REPRO_INTRAOP")
        assert plan_cache._optimize_impl() is optimize_stage
