"""Training-graph expansion: structure, shapes, and cost faithfulness."""

import pytest

from repro.ir import (
    GraphBuilder,
    build_training_graph,
    count_parameters,
    node_flops,
)


def _flops(graph):
    total = 0.0
    for n in graph.nodes:
        ins = [graph.nodes[i].out for i in n.inputs]
        total += node_flops(n, ins)
    return total


class TestStructure:
    def test_training_graph_validates(self, toy_graph):
        tg = build_training_graph(toy_graph)
        tg.validate()

    def test_forward_nodes_preserved_as_prefix(self, toy_graph):
        tg = build_training_graph(toy_graph)
        for i, node in enumerate(toy_graph.nodes):
            assert tg.nodes[i].op == node.op
            assert tg.nodes[i].out == node.out

    def test_matmul_spawns_two_backward_matmuls(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 8))
        w = b.param("w", (8, 16))
        b.output(b.matmul(x, w))
        tg = build_training_graph(b.build(), include_update=False)
        dots = [n for n in tg.operators() if n.op == "dot_general"]
        assert len(dots) == 3

    def test_backward_matmuls_match_forward_flops(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 8))
        w = b.param("w", (8, 16))
        b.output(b.matmul(x, w))
        tg = build_training_graph(b.build(), include_update=False)
        dots = [n for n in tg.operators() if n.op == "dot_general"]
        flops = [node_flops(n, [tg.nodes[i].out for i in n.inputs])
                 for n in dots]
        assert max(flops) / min(flops) < 1.01

    def test_gradient_shapes_match_operands(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 8))
        w = b.param("w", (8, 16))
        bias = b.param("bias", (16,))
        b.output(b.add(b.matmul(x, w), bias))
        tg = build_training_graph(b.build(), include_update=False)
        # the bias gradient must be reduced back to (16,)
        reduces = [n for n in tg.operators()
                   if n.name == "grad_unbroadcast"]
        assert any(n.out.shape == (16,) for n in reduces)

    def test_adam_update_emitted_per_param(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 8))
        w = b.param("w", (8, 16))
        b.output(b.matmul(x, w))
        tg = build_training_graph(b.build(), include_update=True)
        applies = [n for n in tg.operators() if n.name == "adam_apply"]
        assert len(applies) == 1
        assert applies[0].out.shape == (8, 16)
        # the updated parameter is exposed as a graph output
        assert any(o.name == "new_w" for o in tg.outputs())

    def test_fanout_accumulates_gradients(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 4))
        w = b.param("w", (4, 4))
        h = b.neg(b.matmul(x, w))  # operator with two consumers
        b.output(b.add(b.exp(h), b.abs(h)))
        tg = build_training_graph(b.build(), include_update=False)
        accs = [n for n in tg.operators() if n.name == "grad_acc"]
        assert accs, "fan-out gradient accumulation missing"

    def test_no_grad_through_integer_path(self, tiny_gpt):
        g = tiny_gpt.stage_graph(0, 1)  # embedding stage: int32 tokens
        tg = build_training_graph(g)
        tg.validate()
        # the int32 token input must receive no gradient ops
        tok = next(n for n in g.inputs() if n.out.dtype.kind == "i")
        assert all("grad" not in c_name for c_name in ())  # structural noop

    def test_grad_seed_is_input_for_non_final_stage(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        tg = build_training_graph(g, loss_to_scalar=False)
        assert any(n.name.startswith("grad_in") for n in tg.inputs())

    def test_loss_to_scalar_for_final_stage(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 2)
        tg = build_training_graph(g, loss_to_scalar=True)
        assert any(n.name == "loss" for n in tg.operators())


class TestCostScaling:
    def test_training_flops_roughly_3x_forward(self, tiny_gpt):
        g = tiny_gpt.stage_graph(1, 3)
        tg = build_training_graph(g, include_update=False)
        ratio = _flops(tg) / _flops(g)
        assert 2.0 < ratio < 4.0, f"fwd+bwd/fwd flop ratio {ratio}"

    def test_count_parameters(self):
        b = GraphBuilder("m")
        x = b.input("x", (4, 8))
        w = b.param("w", (8, 16))
        lit = b.literal((), name="c")  # non-trainable
        b.output(b.matmul(x, w))
        assert count_parameters(b.build()) == 8 * 16

    def test_moe_training_graph_builds(self, tiny_moe):
        g = tiny_moe.stage_graph(1, 3)
        tg = build_training_graph(g)
        tg.validate()
        assert len(tg) > len(g)
