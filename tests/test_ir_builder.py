"""GraphBuilder shape/dtype inference."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, broadcast_shapes
from repro.ir.ops import node_flops


def _b():
    return GraphBuilder("t")


class TestBroadcastShapes:
    def test_equal(self):
        assert broadcast_shapes((2, 3), (2, 3)) == (2, 3)

    def test_scalar(self):
        assert broadcast_shapes((2, 3), ()) == (2, 3)

    def test_ones_expand(self):
        assert broadcast_shapes((2, 1, 4), (3, 1)) == (2, 3, 4)

    def test_incompatible(self):
        with pytest.raises(ValueError):
            broadcast_shapes((2, 3), (4,))

    @given(st.lists(st.integers(1, 5), max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_self_broadcast_identity(self, shape):
        assert broadcast_shapes(tuple(shape), tuple(shape)) == tuple(shape)


class TestElementwise:
    def test_add_promotes_dtype(self):
        b = _b()
        x = b.input("x", (2, 3), "float16")
        y = b.input("y", (2, 3), "float32")
        z = b.add(x, y)
        assert z.dtype.name == "float32"

    def test_compare_returns_bool(self):
        b = _b()
        x = b.input("x", (4,))
        y = b.input("y", (4,))
        assert b.compare(x, y).dtype.name == "bool"

    def test_select_broadcast(self):
        b = _b()
        p = b.input("p", (2, 1), "bool")
        x = b.input("x", (2, 3))
        y = b.input("y", (3,))
        assert b.select(p, x, y).shape == (2, 3)


class TestMatmul:
    def test_weight_matmul(self):
        b = _b()
        x = b.input("x", (8, 16))
        w = b.param("w", (16, 32))
        y = b.matmul(x, w)
        assert y.shape == (8, 32)
        node = b.graph.nodes[y.id]
        assert node.params["contract"] == 16
        assert node_flops(node, [x.spec, w.spec]) == 2 * 8 * 32 * 16

    def test_batched(self):
        b = _b()
        x = b.input("x", (4, 2, 8, 16))
        y = b.input("y", (4, 2, 16, 8))
        assert b.matmul(x, y).shape == (4, 2, 8, 8)

    def test_mismatch_raises(self):
        b = _b()
        x = b.input("x", (8, 16))
        w = b.param("w", (8, 32))
        with pytest.raises(ValueError):
            b.matmul(x, w)


class TestReductions:
    def test_reduce_sum_drops_axis(self):
        b = _b()
        x = b.input("x", (2, 3, 4))
        assert b.reduce_sum(x, (1,)).shape == (2, 4)

    def test_reduce_sum_keepdims(self):
        b = _b()
        x = b.input("x", (2, 3, 4))
        assert b.reduce_sum(x, (-1,), keepdims=True).shape == (2, 3, 1)

    def test_reduce_mean_emits_two_ops(self):
        b = _b()
        x = b.input("x", (2, 4))
        before = len(b.graph)
        b.reduce_mean(x, (1,))
        # reduce_sum + scale literal + mul
        assert len(b.graph) == before + 3

    def test_argmax_is_int(self):
        b = _b()
        x = b.input("x", (2, 5))
        v = b.argmax(x, 1)
        assert v.shape == (2,) and v.dtype.kind == "i"


class TestDataMovement:
    def test_reshape_size_checked(self):
        b = _b()
        x = b.input("x", (2, 6))
        assert b.reshape(x, (3, 4)).shape == (3, 4)
        with pytest.raises(ValueError):
            b.reshape(x, (5, 2))

    def test_transpose_perm_checked(self):
        b = _b()
        x = b.input("x", (2, 3, 4))
        assert b.transpose(x, (2, 0, 1)).shape == (4, 2, 3)
        with pytest.raises(ValueError):
            b.transpose(x, (0, 0, 1))

    def test_slice_shape(self):
        b = _b()
        x = b.input("x", (8, 8))
        assert b.slice(x, (2, 0), (6, 8)).shape == (4, 8)

    def test_concatenate(self):
        b = _b()
        x = b.input("x", (2, 3))
        y = b.input("y", (2, 5))
        assert b.concatenate([x, y], axis=1).shape == (2, 8)

    def test_convert_changes_dtype_only(self):
        b = _b()
        x = b.input("x", (2, 3), "float32")
        y = b.convert(x, "float16")
        assert y.shape == (2, 3) and y.dtype.name == "float16"


class TestGatherScatter:
    def test_gather_embedding_shape(self):
        b = _b()
        t = b.param("t", (100, 8))
        i = b.input("i", (4, 6), "int32")
        assert b.gather(t, i).shape == (4, 6, 8)

    def test_one_hot(self):
        b = _b()
        i = b.input("i", (4,), "int32")
        assert b.one_hot(i, 10).shape == (4, 10)

    def test_top_k_pair(self):
        b = _b()
        x = b.input("x", (4, 16))
        v, i = b.top_k(x, 2)
        assert v.shape == (4, 2) and i.dtype.kind == "i"


class TestMacros:
    def test_softmax_shape_preserved(self):
        b = _b()
        x = b.input("x", (2, 8))
        assert b.softmax(x).shape == (2, 8)

    def test_layer_norm_emits_primitives(self):
        b = _b()
        x = b.input("x", (2, 8))
        s, bi = b.param("s", (8,)), b.param("bi", (8,))
        y = b.layer_norm(x, s, bi)
        assert y.shape == (2, 8)
        ops = {n.op for n in b.graph.operators()}
        assert {"reduce_sum", "rsqrt", "mul", "add", "sub"} <= ops

    def test_gelu_uses_erf(self):
        b = _b()
        x = b.input("x", (2, 8))
        b.gelu(x)
        assert any(n.op == "erf" for n in b.graph.operators())

    def test_unregistered_op_rejected(self):
        b = _b()
        x = b.input("x", (2,))
        with pytest.raises(ValueError):
            b.emit("not_an_op", (x,), x.spec)
