"""Table-I node feature encoding and serialization round-trips."""

import math

import numpy as np
import pytest

from repro.ir import (
    ALL_DTYPES,
    FEATURE_DIM,
    MAX_RANK,
    NODE_TYPES,
    OP_TYPES,
    GraphBuilder,
    dtype_index,
    graph_features,
    node_features,
    op_index,
)
from repro.ir.serialize import dumps, graph_from_dict, graph_to_dict, loads


class TestFeatures:
    def test_feature_dim(self, toy_graph):
        f = graph_features(toy_graph)
        assert f.shape == (len(toy_graph), FEATURE_DIM)

    def test_one_hot_blocks_sum_to_one(self, toy_graph):
        f = graph_features(toy_graph)
        op_block = f[:, :len(OP_TYPES)]
        assert np.allclose(op_block.sum(axis=1), 1.0)
        off = len(OP_TYPES) + MAX_RANK
        dt_block = f[:, off:off + len(ALL_DTYPES)]
        assert np.allclose(dt_block.sum(axis=1), 1.0)
        off += len(ALL_DTYPES)
        nt_block = f[:, off:off + len(NODE_TYPES)]
        assert np.allclose(nt_block.sum(axis=1), 1.0)

    def test_log_scaled_dims(self):
        """§IV-B3: tensor dims are log-scaled so they cannot dominate."""
        b = GraphBuilder("f")
        x = b.input("x", (1024, 51200))
        f = node_features(b.graph.nodes[x.id])
        dims = f[len(OP_TYPES):len(OP_TYPES) + MAX_RANK]
        assert dims[0] == pytest.approx(math.log1p(1024))
        assert dims[1] == pytest.approx(math.log1p(51200))
        assert dims.max() < 12  # log scale keeps magnitudes small

    def test_node_type_encoded(self, toy_graph):
        inp = toy_graph.inputs()[0]
        f = node_features(inp)
        off = len(OP_TYPES) + MAX_RANK + len(ALL_DTYPES)
        assert f[off + NODE_TYPES.index("input")] == 1.0

    def test_op_index_consistency(self):
        for i, name in enumerate(OP_TYPES):
            assert op_index(name) == i
        with pytest.raises(ValueError):
            op_index("bogus")

    def test_dtype_index_consistency(self):
        for i, d in enumerate(ALL_DTYPES):
            assert dtype_index(d) == i

    def test_fused_node_carries_flops_feature(self, tiny_gpt):
        from repro.ir import fuse_elementwise, prune_graph

        g, _ = fuse_elementwise(prune_graph(tiny_gpt.stage_graph(1, 2)))
        fused = [n for n in g.operators() if n.op == "fused_elementwise"]
        assert fused
        f = node_features(fused[0])
        assert f[-2] > 0  # log1p(flops)
        assert f[-1] >= 2  # chain length


class TestSerialize:
    def test_roundtrip_preserves_structure(self, toy_graph):
        g2 = loads(dumps(toy_graph))
        assert len(g2) == len(toy_graph)
        for a, b in zip(toy_graph.nodes, g2.nodes):
            assert a.op == b.op
            assert a.inputs == b.inputs
            assert a.out == b.out
            assert a.node_type == b.node_type

    def test_params_tuple_roundtrip(self):
        b = GraphBuilder("s")
        x = b.input("x", (2, 3, 4))
        b.output(b.transpose(x, (2, 0, 1)))
        g2 = loads(dumps(b.build()))
        tr = next(n for n in g2.operators() if n.op == "transpose")
        assert tr.params["perm"] == (2, 0, 1)

    def test_features_invariant_under_roundtrip(self, toy_graph):
        f1 = graph_features(toy_graph)
        f2 = graph_features(loads(dumps(toy_graph)))
        assert np.allclose(f1, f2)

    def test_dict_roundtrip(self, tiny_gpt):
        g = tiny_gpt.stage_graph(0, 2)
        g2 = graph_from_dict(graph_to_dict(g))
        assert len(g2) == len(g)
        g2.validate()
