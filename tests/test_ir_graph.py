"""Graph/TensorSpec structural invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Graph, GraphBuilder, TensorSpec, dtype


class TestTensorSpec:
    def test_size_and_bytes(self):
        t = TensorSpec((4, 8, 16), dtype("float32"))
        assert t.size == 512
        assert t.nbytes == 2048
        assert t.rank == 3

    def test_scalar(self):
        t = TensorSpec((), dtype("float16"))
        assert t.size == 1
        assert t.nbytes == 2

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec((4, -1), dtype("float32"))

    def test_str(self):
        assert str(TensorSpec((2, 3), dtype("int32"))) == "int32[2,3]"

    def test_dtype_coerced_from_string(self):
        t = TensorSpec((1,), "float64")
        assert t.dtype.itemsize == 8


class TestGraph:
    def test_add_node_assigns_dense_ids(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), TensorSpec((2,), "float32"))
        assert (a.id, b.id) == (0, 1)
        assert len(g) == 2
        assert g.num_edges == 1

    def test_forward_reference_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_node("neg", (0,), TensorSpec((2,), "float32"))

    def test_consumers_tracked(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        c = g.add_node("abs", (a.id,), a.out)
        assert set(g.consumers(a.id)) == {b.id, c.id}
        assert g.consumers(c.id) == ()

    def test_validate_rejects_leaf_with_operands(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        g.add_node("neg", (a.id,), a.out)
        g.nodes[1].node_type = "literal"  # corrupt
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_rejects_multi_operand_output(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        g.nodes[1] = type(g.nodes[1])(1, "iota", (0, 0), a.out, "output")
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_rejects_duplicate_ids(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        g.add_node("neg", (a.id,), a.out)
        g.nodes[1].id = 0  # corrupt: two nodes claim id 0
        with pytest.raises(ValueError, match="duplicate"):
            g.validate()

    def test_validate_rejects_dangling_edge(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        g.nodes[1].inputs = (5,)  # corrupt: operand %5 does not exist
        with pytest.raises(ValueError, match="dangling"):
            g.validate()
        g.nodes[1].inputs = (-1,)
        with pytest.raises(ValueError, match="dangling"):
            g.validate()

    def test_validate_rejects_cycles(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        g.nodes[0].inputs = (1,)  # corrupt: 0 -> 1 -> 0
        g.nodes[0].node_type = "operator"
        with pytest.raises(ValueError, match="topological order"):
            g.validate()
        g.nodes[0].inputs = (0,)  # self-loop
        with pytest.raises(ValueError, match="self-cycle"):
            g.validate()

    def test_encode_rejects_malformed_graph(self):
        from repro.predictors.dataset import StageSample

        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        g.add_node("neg", (a.id,), a.out)
        g.nodes[1].inputs = (7,)  # corrupt after construction
        with pytest.raises(ValueError, match="dangling"):
            StageSample(g, latency=1.0).encode()

    def test_depths_chain(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        c = g.add_node("neg", (b.id,), a.out)
        assert g.depths() == [0, 1, 2]
        assert g.critical_path_length() == 3

    def test_depths_diamond(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("neg", (a.id,), a.out)
        c = g.add_node("abs", (a.id,), a.out)
        d = g.add_node("add", (b.id, c.id), a.out)
        assert g.depths() == [0, 1, 1, 2]

    def test_subgraph_without_rewires_consumers(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        r = g.add_node("reshape", (a.id,), TensorSpec((2, 1), "float32"))
        n = g.add_node("neg", (r.id,), r.out)
        out = g.subgraph_without({r.id})
        assert len(out) == 2
        assert out.nodes[1].inputs == (0,)
        out.validate()

    def test_subgraph_without_refuses_multi_input_drop(self):
        g = Graph()
        a = g.add_node("iota", (), TensorSpec((2,), "float32"), "input")
        b = g.add_node("add", (a.id, a.id), a.out)
        with pytest.raises(ValueError):
            g.subgraph_without({b.id})

    def test_node_kind_partitions(self, toy_graph):
        total = (len(toy_graph.inputs()) + len(toy_graph.literals())
                 + len(toy_graph.operators()) + len(toy_graph.outputs()))
        assert total == len(toy_graph)


@given(n_ops=st.integers(1, 30), fanout=st.integers(1, 3),
       seed=st.integers(0, 10000))
@settings(max_examples=25, deadline=None)
def test_random_graphs_topologically_valid(n_ops, fanout, seed):
    """Randomly wired graphs built through add_node always validate."""
    import numpy as np

    rng = np.random.default_rng(seed)
    g = Graph("rand")
    g.add_node("iota", (), TensorSpec((2, 2), "float32"), "input")
    for _ in range(n_ops):
        k = int(rng.integers(1, fanout + 1))
        ins = rng.integers(0, len(g), size=min(k, len(g)))
        if len(set(ins.tolist())) < len(ins):
            ins = list(set(ins.tolist()))
        g.add_node("add" if len(ins) > 1 else "neg", tuple(ins),
                   TensorSpec((2, 2), "float32"))
    g.validate()
    depths = g.depths()
    for node in g.nodes:
        for i in node.inputs:
            assert depths[i] < depths[node.id]
